//! The micro-batch coalescing query scheduler.
//!
//! Requests admitted by the server land on a **bounded queue** (full ⇒
//! a structured `overloaded` error, never an unbounded backlog). A
//! small pool of executor threads drains it with inference-server-style
//! **micro-batching**: the first job to arrive opens a collection
//! window (a few milliseconds, [`SchedulerConfig::window`]); every
//! compatible cache-miss plan that arrives inside the window joins the
//! same [`Session::run_batch_at`] call, where plans with the same
//! evaluation signature share **one** fused enumeration + evaluation
//! pass. A bursty all-miss workload therefore pays ~one pass per
//! window, not one pass per request.
//!
//! Epochs make rolling catalog updates stall-free: each job carries the
//! epoch it was **admitted** at, the batch is grouped by admission
//! epoch, and a delta published mid-window never bleeds into requests
//! admitted before it — they finish on their pinned epoch,
//! bit-identically to a cold run at that epoch. After a delta, a
//! background thread walks the session's cached plan keys and
//! [`Session::refresh`]es each (incremental delta repair), re-warming
//! the hot entries off the request path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use f1_components::{CatalogDelta, CatalogEpoch, ComponentError, EpochSnapshot};
use f1_skyline::plan::QueryPlan;
use f1_skyline::session::{ResultSet, Session};
use f1_skyline::SkylineError;

/// Tuning knobs of the [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// The micro-batch collection window: how long the first queued
    /// request waits for compatible company before the batch executes.
    /// `Duration::ZERO` disables coalescing entirely — every request
    /// runs in its own pass (the serial baseline the load generator
    /// compares against).
    pub window: Duration,
    /// Bounded admission-queue capacity; submissions past it are
    /// rejected with a structured `overloaded` error.
    pub queue_capacity: usize,
    /// Most requests one batch may coalesce.
    pub max_batch: usize,
    /// Executor threads draining the queue. Each batch runs on one
    /// executor (the fused pass is internally parallel); extra
    /// executors let independent batches overlap.
    pub executors: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(2),
            queue_capacity: 1024,
            max_batch: 64,
            executors: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(1, 4)),
        }
    }
}

/// A point-in-time snapshot of the scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Requests accepted onto the queue.
    pub admitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests answered by the connection-side cache fast path,
    /// without ever touching the queue.
    pub fast_path_hits: u64,
    /// Batches executed (one `run_batch_at` call per admission-epoch
    /// group).
    pub batches: u64,
    /// Requests executed through batches (Σ batch sizes).
    pub batched_requests: u64,
    /// Requests that shared a batch with at least one other request
    /// (`batched_requests − batches` over multi-request batches).
    pub coalesced: u64,
    /// Largest batch executed so far.
    pub max_batch: u64,
    /// Catalog deltas applied.
    pub deltas_applied: u64,
    /// Cached plans re-repaired by the background refresh thread after
    /// deltas.
    pub background_repairs: u64,
}

/// One queued request: the parsed plan, its admission epoch, and the
/// channel its result goes back on.
struct Job {
    plan: QueryPlan,
    epoch: CatalogEpoch,
    reply: SyncSender<Result<Arc<ResultSet>, SkylineError>>,
}

/// Queue state guarded by one mutex: the jobs plus the collector flag
/// that guarantees only **one** executor holds a collection window open
/// at a time (otherwise competing executors would steal jobs out of a
/// filling batch and defeat coalescing).
struct QueueState {
    jobs: VecDeque<Job>,
    collecting: bool,
}

struct Inner {
    session: Arc<Session>,
    config: SchedulerConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// Bumped per applied delta; the repair thread sweeps the cache
    /// whenever it lags the generation.
    repair_gen: Mutex<u64>,
    repair_cv: Condvar,
    shutdown: AtomicBool,
    /// One mutex (not per-counter atomics) so [`Scheduler::stats`]
    /// snapshots are **consistent**: every logical update happens in one
    /// critical section, so no snapshot can observe a torn state like
    /// `coalesced > batched_requests` or `batched_requests > admitted`.
    /// Lock order: `queue` → `stats` (admission bumps `admitted` while
    /// the job is still invisible to executors); never the reverse.
    stats: Mutex<SchedulerStats>,
}

/// The scheduler: bounded admission, micro-batch coalescing executors,
/// and background cache repair across catalog deltas. See the [module
/// docs](self).
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    Overloaded,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl Scheduler {
    /// Starts the executor pool and the background repair thread over a
    /// shared session.
    #[must_use]
    pub fn start(session: Arc<Session>, config: SchedulerConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        assert!(config.executors > 0, "executor count must be positive");
        let inner = Arc::new(Inner {
            session,
            config: config.clone(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                collecting: false,
            }),
            queue_cv: Condvar::new(),
            repair_gen: Mutex::new(0),
            repair_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: Mutex::new(SchedulerStats::default()),
        });
        let mut workers = Vec::with_capacity(config.executors + 1);
        for i in 0..config.executors {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("skyline-exec-{i}"))
                    .spawn(move || executor_loop(&inner))
                    // analyze::allow(panic, reason = "startup-time spawn, before any request is served")
                    .expect("spawning an executor thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("skyline-repair".to_owned())
                    .spawn(move || repair_loop(&inner))
                    // analyze::allow(panic, reason = "startup-time spawn, before any request is served")
                    .expect("spawning the repair thread"),
            );
        }
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The session this scheduler executes on.
    #[must_use]
    pub fn session(&self) -> &Arc<Session> {
        &self.inner.session
    }

    /// Admits a parsed plan onto the bounded queue at its admission
    /// epoch. Returns the receiver the result will arrive on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(
        &self,
        plan: QueryPlan,
        epoch: CatalogEpoch,
    ) -> Result<Receiver<Result<Arc<ResultSet>, SkylineError>>, SubmitError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply, rx) = mpsc::sync_channel(1);
        {
            let mut queue = lock(&self.inner.queue);
            if queue.jobs.len() >= self.inner.config.queue_capacity {
                lock(&self.inner.stats).rejected += 1;
                return Err(SubmitError::Overloaded);
            }
            queue.jobs.push_back(Job { plan, epoch, reply });
            // Count admission while still holding the queue lock: the
            // job is not yet visible to executors, so no snapshot can
            // observe `batched_requests > admitted` (lock order:
            // queue → stats).
            lock(&self.inner.stats).admitted += 1;
        }
        self.inner.queue_cv.notify_all();
        Ok(rx)
    }

    /// Applies a catalog delta: publishes the next epoch (in-flight
    /// queries keep their admission epochs) and wakes the background
    /// repair thread to re-warm cached plans at the new epoch.
    ///
    /// # Errors
    ///
    /// Any [`ComponentError`] the store rejects the delta with — no
    /// epoch is published then.
    pub fn apply_delta(&self, delta: &CatalogDelta) -> Result<EpochSnapshot, ComponentError> {
        let snapshot = self.inner.session.store().apply(delta)?;
        lock(&self.inner.stats).deltas_applied += 1;
        *lock(&self.inner.repair_gen) += 1;
        self.inner.repair_cv.notify_all();
        Ok(snapshot)
    }

    /// Counts a connection-side cache fast-path hit (the request never
    /// reached the queue).
    pub fn note_fast_path_hit(&self) {
        lock(&self.inner.stats).fast_path_hits += 1;
    }

    /// Current queue depth (diagnostic).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.inner.queue).jobs.len()
    }

    /// A consistent snapshot of the counters: taken under the stats
    /// mutex, so it can never show a torn state (`coalesced >
    /// batched_requests`, `batched_requests > admitted`, `max_batch >
    /// batched_requests` are all impossible).
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        *lock(&self.inner.stats)
    }

    /// Flags shutdown and joins every executor and the repair thread.
    /// Queued jobs still drain (their connections are waiting); new
    /// submissions are rejected.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
        self.inner.repair_cv.notify_all();
        let workers = std::mem::take(&mut *lock(&self.workers));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One executor: claim the collector role, hold the micro-batch window
/// open, drain up to `max_batch` jobs, execute them grouped by
/// admission epoch, answer every reply channel.
fn executor_loop(inner: &Inner) {
    loop {
        let batch = collect_batch(inner);
        let Some(batch) = batch else { return };
        execute_batch(inner, batch);
    }
}

/// Blocks until jobs are available (or shutdown drains the queue dry),
/// then coalesces one batch. Returns `None` when it is time to exit.
fn collect_batch(inner: &Inner) -> Option<Vec<Job>> {
    let config = &inner.config;
    let mut queue = lock(&inner.queue);
    // Wait for work — or for the collector role to free up while work
    // exists (only one executor holds a window open at a time).
    loop {
        if !queue.jobs.is_empty() && !queue.collecting {
            break;
        }
        if inner.shutdown.load(Ordering::Acquire) && queue.jobs.is_empty() {
            return None;
        }
        let (next, _) = inner
            .queue_cv
            .wait_timeout(queue, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
        queue = next;
    }
    // Collector role claimed: hold the window open for stragglers.
    if !config.window.is_zero() && queue.jobs.len() < config.max_batch {
        queue.collecting = true;
        let deadline = Instant::now() + config.window;
        loop {
            let now = Instant::now();
            if now >= deadline
                || queue.jobs.len() >= config.max_batch
                || inner.shutdown.load(Ordering::Acquire)
            {
                break;
            }
            let (next, _) = inner
                .queue_cv
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = next;
        }
        queue.collecting = false;
    }
    let take = if config.window.is_zero() {
        // Coalescing disabled: strictly one request per pass.
        1
    } else {
        config.max_batch.min(queue.jobs.len())
    };
    let batch: Vec<Job> = queue.jobs.drain(..take).collect();
    drop(queue);
    // More jobs may remain — hand the collector role to a waiting peer.
    inner.queue_cv.notify_all();
    Some(batch)
}

/// Groups a batch by admission epoch and runs each group through one
/// shared-pass `run_batch_at` call.
fn execute_batch(inner: &Inner, batch: Vec<Job>) {
    {
        // One critical section for the whole batch-shape update, so a
        // concurrent snapshot sees all of it or none of it.
        let mut stats = lock(&inner.stats);
        stats.batched_requests += batch.len() as u64;
        stats.max_batch = stats.max_batch.max(batch.len() as u64);
        if batch.len() > 1 {
            stats.coalesced += batch.len() as u64;
        }
    }
    // Group by admission epoch, preserving arrival order within groups.
    let mut groups: Vec<(CatalogEpoch, Vec<Job>)> = Vec::new();
    for job in batch {
        match groups.iter_mut().find(|(epoch, _)| *epoch == job.epoch) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((job.epoch, vec![job])),
        }
    }
    for (epoch, jobs) in groups {
        lock(&inner.stats).batches += 1;
        let mut plans = Vec::with_capacity(jobs.len());
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            plans.push(job.plan);
            replies.push(job.reply);
        }
        // Contain panics from the fused pass: the executor thread must
        // outlive any one bad batch. On a panic the replies are dropped,
        // so each waiting connection observes the closed channel and
        // answers a structured `err internal` instead of hanging.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inner.session.run_batch_at(&plans, epoch)
        }));
        match outcome {
            Ok(Ok(results)) => {
                for (reply, result) in replies.into_iter().zip(results) {
                    let _ = reply.send(Ok(result));
                }
            }
            Err(_panic) => drop(replies),
            Ok(Err(error)) => {
                // One bad plan fails its whole epoch group (the batch
                // executor is all-or-nothing); each member gets the
                // structured error. Plan-shape errors are caught at
                // parse/validate time on the connection, so this is the
                // rare path.
                for reply in replies {
                    let _ = reply.send(Err(error.clone()));
                }
            }
        }
    }
}

/// The background repair thread: after each delta, walk the cached plan
/// keys and bring each forward to the current epoch via incremental
/// repair, so the hot set re-warms off the request path.
fn repair_loop(inner: &Inner) {
    let mut seen = 0u64;
    loop {
        {
            let mut gen = lock(&inner.repair_gen);
            while *gen == seen && !inner.shutdown.load(Ordering::Acquire) {
                let (next, _) = inner
                    .repair_cv
                    .wait_timeout(gen, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                gen = next;
            }
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            seen = *gen;
        }
        for key in inner.session.cached_plan_keys() {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Keys in the cache are canonical by construction; a parse
            // or repair failure just leaves the entry cold.
            if let Ok(plan) = QueryPlan::from_key(&key) {
                if inner.session.refresh(&plan).is_ok() {
                    lock(&inner.stats).background_repairs += 1;
                }
            }
        }
    }
}

/// A loom-lite deterministic interleaving harness for the
/// window-collector protocol.
///
/// Instead of sampling interleavings from the OS scheduler, these tests
/// build the scheduler core **without** executor threads and drive
/// every protocol step (admission, window collection, batch execution,
/// delta publication, shutdown) explicitly. An interleaving is then a
/// plain sequence of steps, enumerated exhaustively where it matters —
/// each run reproduces its schedule exactly. The three scenarios cover
/// the protocol's racy edges: a collector exiting while the queue is
/// still nonempty, a delta published into an open window, and shutdown
/// arriving while waiters are parked on the condvar.
#[cfg(test)]
mod interleave {
    use super::*;
    use f1_components::{Catalog, CatalogStore};
    use f1_skyline::query::{Constraint, Objective};
    use f1_units::Watts;

    fn plan(cap: f64) -> QueryPlan {
        QueryPlan::builder()
            .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
            .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
            .build()
            .expect("plan builds")
    }

    type ReplyRx = Receiver<Result<Arc<ResultSet>, SkylineError>>;

    /// The scheduler core with no threads of its own.
    struct Core {
        inner: Arc<Inner>,
    }

    impl Core {
        fn new(window: Duration, max_batch: usize) -> Self {
            let store = Arc::new(CatalogStore::from_shared(Arc::new(Catalog::paper())));
            let session = Arc::new(Session::over(store));
            Self {
                inner: Arc::new(Inner {
                    session,
                    config: SchedulerConfig {
                        window,
                        queue_capacity: 64,
                        max_batch,
                        executors: 1,
                    },
                    queue: Mutex::new(QueueState {
                        jobs: VecDeque::new(),
                        collecting: false,
                    }),
                    queue_cv: Condvar::new(),
                    repair_gen: Mutex::new(0),
                    repair_cv: Condvar::new(),
                    shutdown: AtomicBool::new(false),
                    stats: Mutex::new(SchedulerStats::default()),
                }),
            }
        }

        /// Admission step: the job lands on the queue at the *current*
        /// epoch, which is returned so the test can assert the answer
        /// is pinned to it.
        fn submit(&self, cap: f64) -> (f64, CatalogEpoch, ReplyRx) {
            let epoch = self.inner.session.epoch();
            let (reply, rx) = mpsc::sync_channel(1);
            {
                let mut queue = lock(&self.inner.queue);
                queue.jobs.push_back(Job {
                    plan: plan(cap),
                    epoch,
                    reply,
                });
                lock(&self.inner.stats).admitted += 1;
            }
            self.inner.queue_cv.notify_all();
            (cap, epoch, rx)
        }

        /// Delta-publication step: a new epoch becomes current.
        fn delta(&self) {
            let delta = CatalogDelta::new().retire_compute(f1_components::names::TX2);
            self.inner
                .session
                .store()
                .apply(&delta)
                .expect("delta applies");
        }

        fn collect(&self) -> Option<Vec<Job>> {
            collect_batch(&self.inner)
        }

        fn execute(&self, batch: Vec<Job>) {
            execute_batch(&self.inner, batch);
        }

        /// Bit-identical expectation: a cold run at the given epoch.
        fn cold_run_at(&self, cap: f64, epoch: CatalogEpoch) -> Arc<ResultSet> {
            Session::over(Arc::clone(self.inner.session.store()))
                .run_at(&plan(cap), epoch)
                .expect("cold run succeeds")
        }
    }

    #[test]
    fn collector_exit_with_nonempty_queue_releases_the_role() {
        // Three jobs, max_batch 2: the collector must cap its drain,
        // leave the remainder queued, and release the collector flag so
        // a peer can claim the leftovers — a stuck `collecting` flag
        // would deadlock every later window.
        let core = Core::new(Duration::from_millis(5), 2);
        let submitted = [core.submit(20.0), core.submit(21.0), core.submit(22.0)];
        let first = core.collect().expect("work is available");
        assert_eq!(first.len(), 2, "max_batch caps the drain");
        {
            let queue = lock(&core.inner.queue);
            assert_eq!(queue.jobs.len(), 1, "the remainder stays queued");
            assert!(!queue.collecting, "the collector role is released");
        }
        core.execute(first);
        let second = core.collect().expect("the remainder is claimable");
        assert_eq!(second.len(), 1);
        core.execute(second);
        for (cap, epoch, rx) in submitted {
            let got = rx.recv().expect("answered").expect("feasible");
            assert_eq!(*got, *core.cold_run_at(cap, epoch), "epoch-pinned answer");
        }
    }

    #[test]
    fn delta_during_an_open_window_pins_jobs_to_their_admission_epochs() {
        // Every interleaving of {submit a, submit b, publish delta}:
        // whichever side of the delta a job lands on, its answer must be
        // bit-identical to a cold run at its own admission epoch, even
        // when both epochs share one collected batch.
        let schedules: [&[&str]; 3] = [
            &["a", "b", "delta"],
            &["a", "delta", "b"],
            &["delta", "a", "b"],
        ];
        for schedule in schedules {
            let core = Core::new(Duration::from_millis(5), 2);
            let mut submitted = Vec::new();
            for step in schedule {
                match *step {
                    "a" => submitted.push(core.submit(18.0)),
                    "b" => submitted.push(core.submit(19.0)),
                    "delta" => core.delta(),
                    other => unreachable!("unknown step {other}"),
                }
            }
            // Both jobs are queued, so the collector drains one full
            // batch without waiting out the window.
            let batch = core.collect().expect("two jobs queued");
            assert_eq!(batch.len(), 2, "schedule {schedule:?}");
            core.execute(batch);
            for (cap, epoch, rx) in submitted {
                let got = rx.recv().expect("answered").expect("feasible");
                assert_eq!(
                    *got,
                    *core.cold_run_at(cap, epoch),
                    "schedule {schedule:?}: job admitted at {epoch:?} must answer there"
                );
            }
        }
    }

    #[test]
    fn shutdown_with_parked_waiters_drains_the_queue_then_frees_everyone() {
        // Two waiters park on the empty queue's condvar; a job arrives
        // and shutdown follows immediately. In every interleaving the
        // job must still be drained (its connection is waiting on the
        // reply) and both waiters must exit — no lost wakeup, no
        // stranded job.
        let core = Core::new(Duration::from_millis(5), 2);
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let inner = Arc::clone(&core.inner);
                std::thread::spawn(move || collect_batch(&inner))
            })
            .collect();
        let (cap, epoch, rx) = core.submit(23.0);
        core.inner.shutdown.store(true, Ordering::Release);
        core.inner.queue_cv.notify_all();
        let mut batches = Vec::new();
        for waiter in waiters {
            if let Some(batch) = waiter.join().expect("waiter exits cleanly") {
                batches.push(batch);
            }
        }
        assert_eq!(batches.len(), 1, "exactly one waiter drains the job");
        assert_eq!(batches[0].len(), 1);
        {
            let queue = lock(&core.inner.queue);
            assert!(queue.jobs.is_empty(), "no job is stranded");
            assert!(
                !queue.collecting,
                "the collector flag is clear after shutdown"
            );
        }
        for batch in batches {
            core.execute(batch);
        }
        let got = rx.recv().expect("answered").expect("feasible");
        assert_eq!(*got, *core.cold_run_at(cap, epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::Catalog;
    use f1_skyline::query::{Constraint, Objective};
    use f1_units::Watts;

    fn plan(cap: f64) -> QueryPlan {
        QueryPlan::builder()
            .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
            .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
            .build()
            .unwrap()
    }

    fn scheduler(window: Duration, capacity: usize) -> Scheduler {
        Scheduler::start(
            Arc::new(Session::new(Arc::new(Catalog::paper()))),
            SchedulerConfig {
                window,
                queue_capacity: capacity,
                max_batch: 64,
                executors: 2,
            },
        )
    }

    #[test]
    fn coalesces_concurrent_submissions_into_shared_batches() {
        let sched = scheduler(Duration::from_millis(20), 64);
        let epoch = sched.session().epoch();
        let receivers: Vec<_> = (0..8)
            .map(|i| sched.submit(plan(20.0 - i as f64), epoch).unwrap())
            .collect();
        for rx in receivers {
            let result = rx.recv().unwrap().unwrap();
            assert!(!result.is_empty());
        }
        let stats = sched.stats();
        assert_eq!(stats.admitted, 8);
        assert_eq!(stats.batched_requests, 8);
        assert!(
            stats.batches < 8,
            "a 20 ms window must coalesce 8 back-to-back submissions, got {stats:?}"
        );
        assert!(stats.coalesced > 0);
        sched.shutdown();
    }

    #[test]
    fn window_zero_runs_serially() {
        let sched = scheduler(Duration::ZERO, 64);
        let epoch = sched.session().epoch();
        let receivers: Vec<_> = (0..4)
            .map(|i| sched.submit(plan(10.0 + i as f64), epoch).unwrap())
            .collect();
        for rx in receivers {
            rx.recv().unwrap().unwrap();
        }
        let stats = sched.stats();
        assert_eq!(stats.batches, 4, "window=0 must not coalesce: {stats:?}");
        assert_eq!(stats.max_batch, 1);
        assert_eq!(stats.coalesced, 0);
        sched.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_overload() {
        // Capacity 1 with a long window: the first job occupies the
        // window, the second fills the queue, the third is rejected.
        let sched = scheduler(Duration::from_millis(200), 1);
        let epoch = sched.session().epoch();
        let first = sched.submit(plan(30.0), epoch).unwrap();
        let mut rejected = false;
        let mut receivers = vec![first];
        for i in 0..50 {
            match sched.submit(plan(40.0 + i as f64), epoch) {
                Ok(rx) => receivers.push(rx),
                Err(SubmitError::Overloaded) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(rejected, "a capacity-1 queue must reject a burst");
        assert!(sched.stats().rejected >= 1);
        for rx in receivers {
            rx.recv().unwrap().unwrap();
        }
        sched.shutdown();
    }

    #[test]
    fn delta_wakes_background_repair() {
        let sched = scheduler(Duration::from_millis(1), 64);
        let session = Arc::clone(sched.session());
        let p = plan(25.0);
        let rx = sched.submit(p.clone(), session.epoch()).unwrap();
        rx.recv().unwrap().unwrap();
        assert_eq!(session.cache_stats().entries, 1);
        let delta = CatalogDelta::new().retire_algorithm(f1_components::names::DRONET);
        let snapshot = sched.apply_delta(&delta).unwrap();
        assert_eq!(snapshot.epoch().get(), 1);
        // The repair thread refreshes the cached plan at the new epoch.
        let deadline = Instant::now() + Duration::from_secs(10);
        while sched.stats().background_repairs == 0 {
            assert!(Instant::now() < deadline, "repair thread never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        let repaired = session.cached(p.key()).expect("repaired entry is cached");
        let expected = Session::over(Arc::clone(session.store())).run(&p).unwrap();
        assert_eq!(*repaired, *expected, "background repair is bit-identical");
        sched.shutdown();
        assert!(matches!(
            sched.submit(p, session.epoch()),
            Err(SubmitError::ShuttingDown)
        ));
    }

    /// The cross-counter invariants every [`Scheduler::stats`] snapshot
    /// must satisfy, however the reader interleaves with admission and
    /// batch execution.
    fn assert_consistent(s: &SchedulerStats) {
        assert!(
            s.batched_requests <= s.admitted,
            "executed more than admitted: {s:?}"
        );
        assert!(
            s.coalesced <= s.batched_requests,
            "coalesced without executing: {s:?}"
        );
        assert!(
            s.batches <= s.batched_requests,
            "more batches than batched requests: {s:?}"
        );
        assert!(
            s.max_batch <= s.batched_requests,
            "max batch larger than everything executed: {s:?}"
        );
        if s.deltas_applied == 0 {
            assert_eq!(s.background_repairs, 0, "repairs before any delta: {s:?}");
        }
    }

    #[test]
    fn stats_snapshots_are_never_torn() {
        let sched = Arc::new(scheduler(Duration::from_millis(2), 1024));
        let epoch = sched.session().epoch();
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let sched = Arc::clone(&sched);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut observed = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let s = sched.stats();
                    assert_consistent(&s);
                    observed += 1;
                }
                observed
            })
        };
        let receivers: Vec<_> = (0..200)
            .map(|i| sched.submit(plan(10.0 + (i % 40) as f64), epoch).unwrap())
            .collect();
        for rx in receivers {
            rx.recv().unwrap().unwrap();
        }
        stop.store(true, Ordering::Release);
        let observed = reader.join().expect("reader thread panicked");
        assert!(observed > 0, "the reader never got a snapshot in");
        let fin = sched.stats();
        assert_consistent(&fin);
        assert_eq!(fin.admitted, 200);
        assert_eq!(fin.batched_requests, 200);
        sched.shutdown();
    }

    #[test]
    fn mid_window_delta_answers_at_admission_epoch() {
        let sched = scheduler(Duration::from_millis(150), 64);
        let session = Arc::clone(sched.session());
        let p = plan(18.0);
        let admission = session.epoch();
        let rx = sched.submit(p.clone(), admission).unwrap();
        // While the window is open, retire a part the plan's candidates
        // use. The in-flight job must still answer at epoch 0.
        std::thread::sleep(Duration::from_millis(20));
        sched
            .apply_delta(&CatalogDelta::new().retire_compute(f1_components::names::TX2))
            .unwrap();
        let got = rx.recv().unwrap().unwrap();
        let expected = Session::over(Arc::clone(session.store()))
            .run_at(&p, admission)
            .unwrap();
        assert_eq!(*got, *expected, "old-epoch answer is bit-identical");
        // A fresh run at the current epoch sees the retirement.
        let now = Session::over(Arc::clone(session.store())).run(&p).unwrap();
        assert!(now.len() < got.len());
        sched.shutdown();
    }
}
