//! The micro-batch coalescing query scheduler.
//!
//! Requests admitted by the server land on a **bounded queue** (full ⇒
//! a structured `overloaded` error, never an unbounded backlog). A
//! small pool of executor threads drains it with inference-server-style
//! **micro-batching**: the first job to arrive opens a collection
//! window (a few milliseconds, [`SchedulerConfig::window`]); every
//! compatible cache-miss plan that arrives inside the window joins the
//! same [`Session::run_batch_at`] call, where plans with the same
//! evaluation signature share **one** fused enumeration + evaluation
//! pass. A bursty all-miss workload therefore pays ~one pass per
//! window, not one pass per request.
//!
//! Epochs make rolling catalog updates stall-free: each job carries the
//! epoch it was **admitted** at, the batch is grouped by admission
//! epoch, and a delta published mid-window never bleeds into requests
//! admitted before it — they finish on their pinned epoch,
//! bit-identically to a cold run at that epoch. After a delta, a
//! background thread walks the session's cached plan keys and
//! [`Session::refresh`]es each (incremental delta repair), re-warming
//! the hot entries off the request path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use f1_components::{CatalogDelta, CatalogEpoch, ComponentError, EpochSnapshot};
use f1_skyline::plan::QueryPlan;
use f1_skyline::session::{ResultSet, Session};
use f1_skyline::SkylineError;

/// Tuning knobs of the [`Scheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// The micro-batch collection window: how long the first queued
    /// request waits for compatible company before the batch executes.
    /// `Duration::ZERO` disables coalescing entirely — every request
    /// runs in its own pass (the serial baseline the load generator
    /// compares against).
    pub window: Duration,
    /// Bounded admission-queue capacity; submissions past it are
    /// rejected with a structured `overloaded` error.
    pub queue_capacity: usize,
    /// Most requests one batch may coalesce.
    pub max_batch: usize,
    /// Executor threads draining the queue. Each batch runs on one
    /// executor (the fused pass is internally parallel); extra
    /// executors let independent batches overlap.
    pub executors: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            window: Duration::from_millis(2),
            queue_capacity: 1024,
            max_batch: 64,
            executors: std::thread::available_parallelism().map_or(2, |n| n.get().clamp(1, 4)),
        }
    }
}

/// A point-in-time snapshot of the scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Requests accepted onto the queue.
    pub admitted: u64,
    /// Requests rejected because the queue was full.
    pub rejected: u64,
    /// Requests answered by the connection-side cache fast path,
    /// without ever touching the queue.
    pub fast_path_hits: u64,
    /// Batches executed (one `run_batch_at` call per admission-epoch
    /// group).
    pub batches: u64,
    /// Requests executed through batches (Σ batch sizes).
    pub batched_requests: u64,
    /// Requests that shared a batch with at least one other request
    /// (`batched_requests − batches` over multi-request batches).
    pub coalesced: u64,
    /// Largest batch executed so far.
    pub max_batch: u64,
    /// Catalog deltas applied.
    pub deltas_applied: u64,
    /// Cached plans re-repaired by the background refresh thread after
    /// deltas.
    pub background_repairs: u64,
}

/// One queued request: the parsed plan, its admission epoch, and the
/// channel its result goes back on.
struct Job {
    plan: QueryPlan,
    epoch: CatalogEpoch,
    reply: SyncSender<Result<Arc<ResultSet>, SkylineError>>,
}

/// Queue state guarded by one mutex: the jobs plus the collector flag
/// that guarantees only **one** executor holds a collection window open
/// at a time (otherwise competing executors would steal jobs out of a
/// filling batch and defeat coalescing).
struct QueueState {
    jobs: VecDeque<Job>,
    collecting: bool,
}

struct Counters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    fast_path_hits: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    coalesced: AtomicU64,
    max_batch: AtomicU64,
    deltas_applied: AtomicU64,
    background_repairs: AtomicU64,
}

struct Inner {
    session: Arc<Session>,
    config: SchedulerConfig,
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// Bumped per applied delta; the repair thread sweeps the cache
    /// whenever it lags the generation.
    repair_gen: Mutex<u64>,
    repair_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

/// The scheduler: bounded admission, micro-batch coalescing executors,
/// and background cache repair across catalog deltas. See the [module
/// docs](self).
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("config", &self.inner.config)
            .finish_non_exhaustive()
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    Overloaded,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl Scheduler {
    /// Starts the executor pool and the background repair thread over a
    /// shared session.
    #[must_use]
    pub fn start(session: Arc<Session>, config: SchedulerConfig) -> Self {
        assert!(config.queue_capacity > 0, "queue capacity must be positive");
        assert!(config.max_batch > 0, "max batch must be positive");
        assert!(config.executors > 0, "executor count must be positive");
        let inner = Arc::new(Inner {
            session,
            config: config.clone(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                collecting: false,
            }),
            queue_cv: Condvar::new(),
            repair_gen: Mutex::new(0),
            repair_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters {
                admitted: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                fast_path_hits: AtomicU64::new(0),
                batches: AtomicU64::new(0),
                batched_requests: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                max_batch: AtomicU64::new(0),
                deltas_applied: AtomicU64::new(0),
                background_repairs: AtomicU64::new(0),
            },
        });
        let mut workers = Vec::with_capacity(config.executors + 1);
        for i in 0..config.executors {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("skyline-exec-{i}"))
                    .spawn(move || executor_loop(&inner))
                    .expect("spawning an executor thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            workers.push(
                std::thread::Builder::new()
                    .name("skyline-repair".to_owned())
                    .spawn(move || repair_loop(&inner))
                    .expect("spawning the repair thread"),
            );
        }
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// The session this scheduler executes on.
    #[must_use]
    pub fn session(&self) -> &Arc<Session> {
        &self.inner.session
    }

    /// Admits a parsed plan onto the bounded queue at its admission
    /// epoch. Returns the receiver the result will arrive on.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Overloaded`] when the queue is full,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(
        &self,
        plan: QueryPlan,
        epoch: CatalogEpoch,
    ) -> Result<Receiver<Result<Arc<ResultSet>, SkylineError>>, SubmitError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(SubmitError::ShuttingDown);
        }
        let (reply, rx) = mpsc::sync_channel(1);
        {
            let mut queue = lock(&self.inner.queue);
            if queue.jobs.len() >= self.inner.config.queue_capacity {
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::Overloaded);
            }
            queue.jobs.push_back(Job { plan, epoch, reply });
        }
        self.inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        self.inner.queue_cv.notify_all();
        Ok(rx)
    }

    /// Applies a catalog delta: publishes the next epoch (in-flight
    /// queries keep their admission epochs) and wakes the background
    /// repair thread to re-warm cached plans at the new epoch.
    ///
    /// # Errors
    ///
    /// Any [`ComponentError`] the store rejects the delta with — no
    /// epoch is published then.
    pub fn apply_delta(&self, delta: &CatalogDelta) -> Result<EpochSnapshot, ComponentError> {
        let snapshot = self.inner.session.store().apply(delta)?;
        self.inner
            .counters
            .deltas_applied
            .fetch_add(1, Ordering::Relaxed);
        *lock(&self.inner.repair_gen) += 1;
        self.inner.repair_cv.notify_all();
        Ok(snapshot)
    }

    /// Counts a connection-side cache fast-path hit (the request never
    /// reached the queue).
    pub fn note_fast_path_hit(&self) {
        self.inner
            .counters
            .fast_path_hits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Current queue depth (diagnostic).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.inner.queue).jobs.len()
    }

    /// A snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> SchedulerStats {
        let c = &self.inner.counters;
        SchedulerStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            fast_path_hits: c.fast_path_hits.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            max_batch: c.max_batch.load(Ordering::Relaxed),
            deltas_applied: c.deltas_applied.load(Ordering::Relaxed),
            background_repairs: c.background_repairs.load(Ordering::Relaxed),
        }
    }

    /// Flags shutdown and joins every executor and the repair thread.
    /// Queued jobs still drain (their connections are waiting); new
    /// submissions are rejected.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
        self.inner.repair_cv.notify_all();
        let workers = std::mem::take(&mut *lock(&self.workers));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One executor: claim the collector role, hold the micro-batch window
/// open, drain up to `max_batch` jobs, execute them grouped by
/// admission epoch, answer every reply channel.
fn executor_loop(inner: &Inner) {
    loop {
        let batch = collect_batch(inner);
        let Some(batch) = batch else { return };
        execute_batch(inner, batch);
    }
}

/// Blocks until jobs are available (or shutdown drains the queue dry),
/// then coalesces one batch. Returns `None` when it is time to exit.
fn collect_batch(inner: &Inner) -> Option<Vec<Job>> {
    let config = &inner.config;
    let mut queue = lock(&inner.queue);
    // Wait for work — or for the collector role to free up while work
    // exists (only one executor holds a window open at a time).
    loop {
        if !queue.jobs.is_empty() && !queue.collecting {
            break;
        }
        if inner.shutdown.load(Ordering::Acquire) && queue.jobs.is_empty() {
            return None;
        }
        let (next, _) = inner
            .queue_cv
            .wait_timeout(queue, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
        queue = next;
    }
    // Collector role claimed: hold the window open for stragglers.
    if !config.window.is_zero() && queue.jobs.len() < config.max_batch {
        queue.collecting = true;
        let deadline = Instant::now() + config.window;
        loop {
            let now = Instant::now();
            if now >= deadline
                || queue.jobs.len() >= config.max_batch
                || inner.shutdown.load(Ordering::Acquire)
            {
                break;
            }
            let (next, _) = inner
                .queue_cv
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = next;
        }
        queue.collecting = false;
    }
    let take = if config.window.is_zero() {
        // Coalescing disabled: strictly one request per pass.
        1
    } else {
        config.max_batch.min(queue.jobs.len())
    };
    let batch: Vec<Job> = queue.jobs.drain(..take).collect();
    drop(queue);
    // More jobs may remain — hand the collector role to a waiting peer.
    inner.queue_cv.notify_all();
    Some(batch)
}

/// Groups a batch by admission epoch and runs each group through one
/// shared-pass `run_batch_at` call.
fn execute_batch(inner: &Inner, batch: Vec<Job>) {
    let counters = &inner.counters;
    counters
        .batched_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    counters
        .max_batch
        .fetch_max(batch.len() as u64, Ordering::Relaxed);
    if batch.len() > 1 {
        counters
            .coalesced
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
    }
    // Group by admission epoch, preserving arrival order within groups.
    let mut groups: Vec<(CatalogEpoch, Vec<Job>)> = Vec::new();
    for job in batch {
        match groups.iter_mut().find(|(epoch, _)| *epoch == job.epoch) {
            Some((_, jobs)) => jobs.push(job),
            None => groups.push((job.epoch, vec![job])),
        }
    }
    for (epoch, jobs) in groups {
        counters.batches.fetch_add(1, Ordering::Relaxed);
        let mut plans = Vec::with_capacity(jobs.len());
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            plans.push(job.plan);
            replies.push(job.reply);
        }
        match inner.session.run_batch_at(&plans, epoch) {
            Ok(results) => {
                for (reply, result) in replies.into_iter().zip(results) {
                    let _ = reply.send(Ok(result));
                }
            }
            Err(error) => {
                // One bad plan fails its whole epoch group (the batch
                // executor is all-or-nothing); each member gets the
                // structured error. Plan-shape errors are caught at
                // parse/validate time on the connection, so this is the
                // rare path.
                for reply in replies {
                    let _ = reply.send(Err(error.clone()));
                }
            }
        }
    }
}

/// The background repair thread: after each delta, walk the cached plan
/// keys and bring each forward to the current epoch via incremental
/// repair, so the hot set re-warms off the request path.
fn repair_loop(inner: &Inner) {
    let mut seen = 0u64;
    loop {
        {
            let mut gen = lock(&inner.repair_gen);
            while *gen == seen && !inner.shutdown.load(Ordering::Acquire) {
                let (next, _) = inner
                    .repair_cv
                    .wait_timeout(gen, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                gen = next;
            }
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            seen = *gen;
        }
        for key in inner.session.cached_plan_keys() {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            // Keys in the cache are canonical by construction; a parse
            // or repair failure just leaves the entry cold.
            if let Ok(plan) = QueryPlan::from_key(&key) {
                if inner.session.refresh(&plan).is_ok() {
                    inner
                        .counters
                        .background_repairs
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::Catalog;
    use f1_skyline::query::{Constraint, Objective};
    use f1_units::Watts;

    fn plan(cap: f64) -> QueryPlan {
        QueryPlan::builder()
            .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
            .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
            .build()
            .unwrap()
    }

    fn scheduler(window: Duration, capacity: usize) -> Scheduler {
        Scheduler::start(
            Arc::new(Session::new(Arc::new(Catalog::paper()))),
            SchedulerConfig {
                window,
                queue_capacity: capacity,
                max_batch: 64,
                executors: 2,
            },
        )
    }

    #[test]
    fn coalesces_concurrent_submissions_into_shared_batches() {
        let sched = scheduler(Duration::from_millis(20), 64);
        let epoch = sched.session().epoch();
        let receivers: Vec<_> = (0..8)
            .map(|i| sched.submit(plan(20.0 - i as f64), epoch).unwrap())
            .collect();
        for rx in receivers {
            let result = rx.recv().unwrap().unwrap();
            assert!(!result.is_empty());
        }
        let stats = sched.stats();
        assert_eq!(stats.admitted, 8);
        assert_eq!(stats.batched_requests, 8);
        assert!(
            stats.batches < 8,
            "a 20 ms window must coalesce 8 back-to-back submissions, got {stats:?}"
        );
        assert!(stats.coalesced > 0);
        sched.shutdown();
    }

    #[test]
    fn window_zero_runs_serially() {
        let sched = scheduler(Duration::ZERO, 64);
        let epoch = sched.session().epoch();
        let receivers: Vec<_> = (0..4)
            .map(|i| sched.submit(plan(10.0 + i as f64), epoch).unwrap())
            .collect();
        for rx in receivers {
            rx.recv().unwrap().unwrap();
        }
        let stats = sched.stats();
        assert_eq!(stats.batches, 4, "window=0 must not coalesce: {stats:?}");
        assert_eq!(stats.max_batch, 1);
        assert_eq!(stats.coalesced, 0);
        sched.shutdown();
    }

    #[test]
    fn bounded_queue_rejects_overload() {
        // Capacity 1 with a long window: the first job occupies the
        // window, the second fills the queue, the third is rejected.
        let sched = scheduler(Duration::from_millis(200), 1);
        let epoch = sched.session().epoch();
        let first = sched.submit(plan(30.0), epoch).unwrap();
        let mut rejected = false;
        let mut receivers = vec![first];
        for i in 0..50 {
            match sched.submit(plan(40.0 + i as f64), epoch) {
                Ok(rx) => receivers.push(rx),
                Err(SubmitError::Overloaded) => {
                    rejected = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(rejected, "a capacity-1 queue must reject a burst");
        assert!(sched.stats().rejected >= 1);
        for rx in receivers {
            rx.recv().unwrap().unwrap();
        }
        sched.shutdown();
    }

    #[test]
    fn delta_wakes_background_repair() {
        let sched = scheduler(Duration::from_millis(1), 64);
        let session = Arc::clone(sched.session());
        let p = plan(25.0);
        let rx = sched.submit(p.clone(), session.epoch()).unwrap();
        rx.recv().unwrap().unwrap();
        assert_eq!(session.cache_stats().entries, 1);
        let delta = CatalogDelta::new().retire_algorithm(f1_components::names::DRONET);
        let snapshot = sched.apply_delta(&delta).unwrap();
        assert_eq!(snapshot.epoch().get(), 1);
        // The repair thread refreshes the cached plan at the new epoch.
        let deadline = Instant::now() + Duration::from_secs(10);
        while sched.stats().background_repairs == 0 {
            assert!(Instant::now() < deadline, "repair thread never ran");
            std::thread::sleep(Duration::from_millis(5));
        }
        let repaired = session.cached(p.key()).expect("repaired entry is cached");
        let expected = Session::over(Arc::clone(session.store())).run(&p).unwrap();
        assert_eq!(*repaired, *expected, "background repair is bit-identical");
        sched.shutdown();
        assert!(matches!(
            sched.submit(p, session.epoch()),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn mid_window_delta_answers_at_admission_epoch() {
        let sched = scheduler(Duration::from_millis(150), 64);
        let session = Arc::clone(sched.session());
        let p = plan(18.0);
        let admission = session.epoch();
        let rx = sched.submit(p.clone(), admission).unwrap();
        // While the window is open, retire a part the plan's candidates
        // use. The in-flight job must still answer at epoch 0.
        std::thread::sleep(Duration::from_millis(20));
        sched
            .apply_delta(&CatalogDelta::new().retire_compute(f1_components::names::TX2))
            .unwrap();
        let got = rx.recv().unwrap().unwrap();
        let expected = Session::over(Arc::clone(session.store()))
            .run_at(&p, admission)
            .unwrap();
        assert_eq!(*got, *expected, "old-epoch answer is bit-identical");
        // A fresh run at the current epoch sees the retirement.
        let now = Session::over(Arc::clone(session.store())).run(&p).unwrap();
        assert!(now.len() < got.len());
        sched.shutdown();
    }
}
