//! Durability end-to-end: kill-and-restart recovery with byte-identical
//! spilled answers, and a read replica following the primary's epoch
//! log live.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use f1_components::{Catalog, CatalogDelta, CatalogEpoch};
use f1_serve::protocol::Client;
use f1_serve::{Durability, ServeConfig, Server};
use f1_skyline::plan::QueryPlan;
use f1_skyline::query::{Constraint, Objective};
use f1_skyline::session::Session;
use f1_store::{DurableOptions, DurableStore};
use f1_units::Watts;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("f1-serve-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn plan(cap: f64) -> QueryPlan {
    QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
        .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
        .build()
        .expect("plan builds")
}

fn delta_line(hz: f64) -> String {
    format!(
        r#"delta {{"throughput": [{{"compute": "Nvidia TX2", "algorithm": "DroNet", "hz": {hz}}}]}}"#
    )
}

/// Recovers (or creates) a durable server over `dir`, replaying the log
/// and re-warming the digest-validated spill — exactly what the
/// `skyline-serve --data-dir` boot path does.
fn boot(dir: &Path, options: DurableOptions) -> (Server, Arc<DurableStore>) {
    let durable = Arc::new(DurableStore::open(dir, Catalog::paper, options).expect("durable open"));
    let session = Arc::new(Session::over(Arc::clone(durable.store())));
    let mut warm = HashMap::new();
    for record in durable.load_spill().expect("spill loads").records {
        let Some(snapshot) = durable.store().at(CatalogEpoch::from_raw(record.epoch)) else {
            continue;
        };
        if snapshot.digest() == record.digest {
            warm.insert((record.plan_key, record.epoch), record.result_json);
        }
    }
    let server = Server::start_durable(
        session,
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServeConfig::default()
        },
        Durability {
            durable: Arc::clone(&durable),
            warm,
            replica: options.replica,
        },
    )
    .expect("server starts");
    (server, durable)
}

fn connect(server: &Server) -> Client {
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");
    client
}

fn normalize(body: &str) -> String {
    body.replace("\"cached\": true", "\"cached\": false")
}

#[test]
fn killed_and_restarted_server_recovers_and_serves_byte_identically() {
    let dir = scratch("restart");
    let key = plan(20.0).key().to_owned();

    // Life 1: compute, mutate twice, compute again — then shut down.
    let (pre_epoch, pre_digest, pre_body) = {
        let (server, durable) = boot(&dir, DurableOptions::default());
        let mut c = connect(&server);
        let (ok, _) = c.request(&format!("query {key}")).expect("cold query");
        assert!(ok);
        for hz in [30.0, 35.0] {
            let (ok, _) = c.request(&delta_line(hz)).expect("delta");
            assert!(ok);
        }
        let (ok, body) = c.request(&format!("query {key}")).expect("re-query");
        assert!(ok && body.contains("\"epoch\": 2"), "{body}");
        let current = durable.store().current();
        server.join();
        (current.epoch().get(), current.digest(), body)
    };
    assert_eq!(pre_epoch, 2);

    // Life 2: recovery lands on the exact pre-crash epoch and digest,
    // and the pre-crash plan key is answered byte-identically from the
    // spill without re-evaluating.
    let (server, durable) = boot(&dir, DurableOptions::default());
    let report = *durable.report();
    assert_eq!(report.epoch, pre_epoch);
    assert_eq!(report.digest, pre_digest);
    assert_eq!(report.snapshot_epoch, Some(0));
    assert_eq!(report.replayed_deltas, 2);

    let mut c = connect(&server);
    let (ok, warm) = c.request(&format!("query {key}")).expect("warm query");
    assert!(ok && warm.contains("\"cached\": true"), "{warm}");
    assert_eq!(normalize(&warm), normalize(&pre_body));
    let (ok, stats) = c.request("stats").expect("stats");
    assert!(
        ok && stats.contains("\"spill_hits\": 1") && stats.contains("\"admitted\": 0"),
        "spill hit must bypass evaluation: {stats}"
    );
    assert!(
        stats.contains("\"replica\": false") && stats.contains("\"replayed_deltas\": 2"),
        "{stats}"
    );
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replica_follows_live_deltas_and_answers_byte_identically() {
    let dir = scratch("replica");
    let key = plan(18.0).key().to_owned();

    let (primary, _primary_durable) = boot(&dir, DurableOptions::default());
    let (replica, replica_durable) = boot(
        &dir,
        DurableOptions {
            replica: true,
            ..DurableOptions::default()
        },
    );
    let mut pc = connect(&primary);
    let mut rc = connect(&replica);

    // The replica is read-only on the wire.
    let (ok, body) = rc.request(&delta_line(1.0)).expect("replica delta");
    assert!(!ok && body.contains("read-only replica"), "{body}");

    // Drive >= 3 live deltas through the primary; after each, tail the
    // log into the replica (what `skyline-serve --replica`'s follower
    // loop does) and require byte-identical answers on both ends.
    let mut tail = replica_durable.tail_reader();
    for (i, hz) in [25.0, 31.5, 44.0].into_iter().enumerate() {
        let (ok, body) = pc.request(&delta_line(hz)).expect("primary delta");
        assert!(ok, "{body}");
        let epoch = (i + 1) as u64;

        // Follow: apply every new log record, verifying epoch + digest.
        let deadline = Instant::now() + Duration::from_secs(10);
        while replica_durable.store().current().epoch().get() < epoch {
            assert!(Instant::now() < deadline, "replica never caught up");
            for record in tail.poll().expect("tail poll") {
                let delta = CatalogDelta::from_json(&record.delta_json).expect("delta parses");
                let snap = replica.scheduler().apply_delta(&delta).expect("applies");
                assert_eq!(snap.epoch().get(), record.epoch);
                assert_eq!(snap.digest(), record.digest, "replica diverged");
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            replica_durable.store().current().digest(),
            _primary_durable.store().current().digest(),
            "digest diverged at epoch {epoch}"
        );

        let (ok, primary_body) = pc.request(&format!("query {key}")).expect("primary query");
        assert!(ok && primary_body.contains(&format!("\"epoch\": {epoch}")));
        let (ok, replica_body) = rc.request(&format!("query {key}")).expect("replica query");
        assert!(ok, "{replica_body}");
        assert_eq!(
            normalize(&replica_body),
            normalize(&primary_body),
            "replica answer diverged at epoch {epoch}"
        );
    }

    replica.join();
    primary.join();
    let _ = std::fs::remove_dir_all(&dir);
}
