//! The CI serve-smoke script: boot a real server, run a scripted
//! client session covering the whole verb surface, then a concurrent
//! burst that must coalesce, and shut down cleanly via the protocol.

use std::sync::Arc;
use std::time::Duration;

use f1_components::{Catalog, CatalogStore};
use f1_serve::protocol::Client;
use f1_serve::{SchedulerConfig, ServeConfig, Server};
use f1_skyline::plan::QueryPlan;
use f1_skyline::query::{Constraint, Objective};
use f1_skyline::session::Session;
use f1_units::Watts;

fn plan(cap: f64) -> QueryPlan {
    QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
        .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
        .build()
        .expect("plan builds")
}

#[test]
fn scripted_session_end_to_end() {
    let store = Arc::new(CatalogStore::from_shared(Arc::new(Catalog::paper())));
    let session = Arc::new(Session::over(Arc::clone(&store)));
    let server = Server::start(
        session,
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let mut c = Client::connect(server.local_addr()).expect("connect");
    c.set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout");

    // 1. Liveness.
    let (ok, body) = c.request("ping").expect("ping");
    assert!(ok && body.contains("\"pong\": true"));

    // 2. Cold query computes, repeat is a bit-identical cache hit.
    let key = plan(20.0).key().to_owned();
    let (ok, cold) = c.request(&format!("query {key}")).expect("cold query");
    assert!(ok && cold.contains("\"cached\": false") && cold.contains("\"epoch\": 0"));
    let (ok, warm) = c.request(&format!("query {key}")).expect("warm query");
    assert!(ok && warm.contains("\"cached\": true"));
    assert_eq!(warm.replace("\"cached\": true", "\"cached\": false"), cold);

    // 3. Compact top-k shape.
    let (ok, top) = c.request(&format!("top 5 {key}")).expect("top");
    assert!(ok && top.contains("\"top\": [") && top.contains("\"values\": ["));

    // 4. Delta publishes a new epoch; re-query answers there.
    let (ok, body) = c
        .request(r#"delta {"throughput": [{"compute": "Nvidia TX2", "algorithm": "DroNet", "hz": 30.0}]}"#)
        .expect("delta");
    assert!(ok && body.contains("\"epoch\": 1"), "{body}");
    let (ok, fresh) = c.request(&format!("query {key}")).expect("re-query");
    assert!(ok && fresh.contains("\"epoch\": 1"), "{fresh}");

    // 5. Stats reflect the session: one fast-path hit, admissions, the
    //    applied delta.
    let (ok, stats) = c.request("stats").expect("stats");
    assert!(ok, "{stats}");
    assert!(stats.contains("\"epoch\": 1"), "{stats}");
    assert!(stats.contains("\"deltas_applied\": 1"), "{stats}");
    // The warm query and the top-k were fast-path hits; the post-delta
    // re-query may also have hit if background repair won the race.
    let numeric = server.scheduler().stats();
    assert!(numeric.fast_path_hits >= 2, "{numeric:?}");
    assert!(numeric.admitted >= 1, "{numeric:?}");

    // 6. Clean protocol-driven shutdown.
    let (ok, body) = c.request("shutdown").expect("shutdown");
    assert!(ok && body.contains("\"shutting_down\": true"));
    server.join();
    assert!(server.is_shutting_down());
}

#[test]
fn concurrent_cold_burst_coalesces_into_shared_batches() {
    let store = Arc::new(CatalogStore::from_shared(Arc::new(Catalog::paper())));
    let session = Arc::new(Session::over(store));
    let server = Server::start(
        session,
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            scheduler: SchedulerConfig {
                window: Duration::from_millis(50),
                queue_capacity: 256,
                max_batch: 64,
                executors: 2,
            },
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    // 8 clients fire same-signature cold plans (different TDP caps)
    // simultaneously; the window must fuse most into shared passes.
    let handles: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.set_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                let key = plan(15.0 + i as f64).key().to_owned();
                let (ok, body) = c.request(&format!("top 3 {key}")).expect("response");
                assert!(ok, "{body}");
                body
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }
    let stats = server.scheduler().stats();
    assert_eq!(stats.admitted, 8);
    assert_eq!(stats.batched_requests, 8);
    assert!(
        stats.batches < 8,
        "a 50 ms window must coalesce an 8-query burst: {stats:?}"
    );
    assert!(stats.coalesced >= 2, "{stats:?}");
    server.shutdown();
}
