//! Wire-protocol conformance: malformed frames, oversized payloads,
//! structured errors on a live connection, admission control, and
//! epoch pinning under concurrent deltas.

use std::sync::Arc;
use std::time::Duration;

use f1_components::{AirframeId, Catalog, CatalogEpoch, CatalogStore};
use f1_serve::protocol::{self, Client};
use f1_serve::{SchedulerConfig, ServeConfig, Server};
use f1_skyline::plan::QueryPlan;
use f1_skyline::query::{Constraint, Objective};
use f1_skyline::session::Session;
use f1_units::Watts;

fn store() -> Arc<CatalogStore> {
    Arc::new(CatalogStore::from_shared(Arc::new(Catalog::paper())))
}

fn start(config: ServeConfig) -> (Server, Arc<CatalogStore>) {
    let store = store();
    let session = Arc::new(Session::over(Arc::clone(&store)));
    let server = Server::start(session, config).expect("server starts");
    (server, store)
}

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServeConfig::default()
    }
}

fn client(server: &Server) -> Client {
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    client
        .set_timeout(Some(Duration::from_secs(60)))
        .expect("timeout set");
    client
}

fn plan(cap: f64) -> QueryPlan {
    QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
        .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
        .build()
        .expect("plan builds")
}

#[test]
fn malformed_frames_answer_structured_errors_and_keep_the_connection() {
    let (server, _) = start(config());
    let mut c = client(&server);
    for (request, fragment) in [
        ("frobnicate now", "unknown verb"),
        ("query", "plan key"),
        ("top five key", "five"),
        ("top 0 key", "1..="),
        ("delta", "JSON"),
        ("", "empty"),
    ] {
        let (ok, body) = c.request(request).expect("response arrives");
        assert!(!ok, "{request:?} must fail");
        assert!(
            body.contains("\"kind\": \"protocol\"") && body.contains(fragment),
            "{request:?} => {body}"
        );
    }
    // The connection survived every malformed frame.
    let (ok, body) = c.request("ping").expect("connection is still alive");
    assert!(ok && body.contains("pong"));
    server.shutdown();
}

#[test]
fn unknown_plan_key_is_a_plan_key_error_not_a_dropped_connection() {
    let (server, _) = start(config());
    let mut c = client(&server);
    let (ok, body) = c.request("query definitely.not.a.key").expect("response");
    assert!(!ok);
    assert!(body.contains("\"kind\": \"plan_key\""), "{body}");
    // A plan that parses but references ids outside this catalog is a
    // distinct, pre-admission error: it never joins a batch.
    let alien = QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
        .airframes(&[AirframeId::from_index(99)])
        .build()
        .expect("plan builds without a catalog");
    let (ok, body) = c
        .request(&format!("query {}", alien.key()))
        .expect("response");
    assert!(!ok);
    assert!(body.contains("\"kind\": \"plan_catalog\""), "{body}");
    let (ok, _) = c.request("stats").expect("connection is still alive");
    assert!(ok);
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_then_the_connection_closes() {
    let mut cfg = config();
    cfg.max_frame = 1024;
    let (server, _) = start(cfg);
    let mut c = client(&server);
    let huge = format!("query {}\n", "x".repeat(4096));
    c.send(&huge).expect("send");
    let (ok, body) = c.read_response().expect("response");
    assert!(!ok);
    assert!(
        body.contains("\"kind\": \"protocol\"") && body.contains("1024"),
        "{body}"
    );
    // There is no way to resynchronize mid-frame: the server closes.
    let err = c.request("ping").expect_err("connection must be closed");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::ConnectionAborted
        ),
        "unexpected error kind {:?}",
        err.kind()
    );
    server.shutdown();
}

#[test]
fn non_utf8_frames_are_protocol_errors() {
    let (server, _) = start(config());
    let mut c = client(&server);
    c.send_raw(b"query \xff\xfe\xfd\n").expect("send");
    let (ok, body) = c.read_response().expect("response");
    assert!(!ok);
    assert!(body.contains("not valid UTF-8"), "{body}");
    server.shutdown();
}

#[test]
fn malformed_delta_is_a_structured_delta_error() {
    let (server, _) = start(config());
    let mut c = client(&server);
    let (ok, body) = c
        .request("delta {\"add\": [this is not json]}")
        .expect("response");
    assert!(!ok);
    assert!(body.contains("\"kind\": \"delta\""), "{body}");
    // Unknown component names fail at apply time, same structured kind.
    let (ok, body) = c
        .request(r#"delta {"retire": {"compute": ["No Such Part"]}}"#)
        .expect("response");
    assert!(!ok);
    assert!(body.contains("\"kind\": \"delta\""), "{body}");
    // No epoch was published by either failure.
    let (ok, body) = c.request("stats").expect("response");
    assert!(ok && body.contains("\"epoch\": 0"), "{body}");
    server.shutdown();
}

#[test]
fn full_admission_queue_rejects_with_overloaded() {
    let mut cfg = config();
    // Capacity 1 and a long window: the first cold query occupies the
    // queue for the whole window, so a second cold query must bounce.
    cfg.scheduler = SchedulerConfig {
        window: Duration::from_millis(500),
        queue_capacity: 1,
        max_batch: 8,
        executors: 1,
    };
    let (server, _) = start(cfg);
    let mut first = client(&server);
    first
        .send(&format!("query {}", plan(20.0).key()))
        .expect("send");
    std::thread::sleep(Duration::from_millis(100));
    let mut second = client(&server);
    let (ok, body) = second
        .request(&format!("query {}", plan(21.0).key()))
        .expect("response");
    assert!(!ok, "second cold query must be rejected: {body}");
    assert!(body.contains("\"kind\": \"overloaded\""), "{body}");
    let (ok, _) = first.read_response().expect("first query completes");
    assert!(ok);
    server.shutdown();
}

#[test]
fn delta_mid_query_pins_the_admission_epoch_bit_identically() {
    let mut cfg = config();
    // A long window guarantees the delta lands while the query is
    // still collecting.
    cfg.scheduler.window = Duration::from_millis(300);
    let (server, store) = start(cfg);
    let p = plan(18.0);

    let mut querier = client(&server);
    querier.send(&format!("top 3 {}", p.key())).expect("send");
    std::thread::sleep(Duration::from_millis(60));

    let mut admin = client(&server);
    let (ok, body) = admin
        .request(r#"delta {"throughput": [{"compute": "Nvidia TX2", "algorithm": "DroNet", "hz": 31.0}]}"#)
        .expect("delta response");
    assert!(ok && body.contains("\"epoch\": 1"), "{body}");

    let (ok, got) = querier.read_response().expect("pinned query completes");
    assert!(ok, "{got}");
    assert!(
        got.contains("\"epoch\": 0"),
        "answer pinned to epoch 0: {got}"
    );

    // Byte-for-byte identical to a direct epoch-0 evaluation rendered
    // through the same serializer.
    let reference_session = Session::over(Arc::clone(&store));
    let epoch0 = CatalogEpoch::from_raw(0);
    let result = reference_session.run_at(&p, epoch0).expect("reference run");
    let snapshot = store.at(epoch0).expect("epoch 0 snapshot");
    let expected = protocol::top_body(3, &result, &snapshot, false);
    assert_eq!(got, expected, "old-epoch answer must be bit-identical");

    // A fresh query now answers at the new epoch.
    let (ok, fresh) = querier
        .request(&format!("top 3 {}", p.key()))
        .expect("response");
    assert!(ok && fresh.contains("\"epoch\": 1"), "{fresh}");
    server.shutdown();
}

#[test]
fn handler_panic_answers_err_internal_and_keeps_the_connection() {
    // Fault injection on: the literal frame `panic` panics inside the
    // connection handler. Containment must answer a structured
    // `err internal` frame and keep the connection usable.
    let (server, _) = start(ServeConfig {
        fault_injection: true,
        ..config()
    });
    let mut c = client(&server);
    let (ok, body) = c
        .request("panic")
        .expect("a structured response, not a drop");
    assert!(!ok, "a panicked handler must answer err: {body}");
    assert!(body.contains("\"kind\": \"internal\""), "{body}");
    assert!(body.contains("injected fault"), "{body}");
    // Same connection, next frame: fully alive, queries still work.
    let p = plan(26.0);
    let (ok, answer) = c.request(&format!("query {}", p.key())).expect("alive");
    assert!(ok, "{answer}");
    let (ok, pong) = c.request("ping").expect("alive");
    assert!(ok && pong.contains("pong"), "{pong}");
    server.shutdown();
}

#[test]
fn handler_panic_containment_repeats_per_frame() {
    // Every panicking frame is contained independently — no poisoned
    // state leaks from one contained panic to the next request.
    let (server, _) = start(ServeConfig {
        fault_injection: true,
        ..config()
    });
    let mut c = client(&server);
    for _ in 0..3 {
        let (ok, body) = c.request("panic").expect("structured response");
        assert!(!ok && body.contains("\"kind\": \"internal\""), "{body}");
        let (ok, pong) = c.request("ping").expect("alive between faults");
        assert!(ok && pong.contains("pong"), "{pong}");
    }
    // A second connection is unaffected by the first one's faults.
    let mut c2 = client(&server);
    let (ok, body) = c2.request("stats").expect("second connection works");
    assert!(ok, "{body}");
    server.shutdown();
}

#[test]
fn repeat_queries_hit_the_cache_fast_path() {
    let (server, _) = start(config());
    let p = plan(24.0);
    let mut c = client(&server);
    let (ok, cold) = c.request(&format!("query {}", p.key())).expect("cold");
    assert!(ok && cold.contains("\"cached\": false"), "{cold}");
    let (ok, warm) = c.request(&format!("query {}", p.key())).expect("warm");
    assert!(ok && warm.contains("\"cached\": true"), "{warm}");
    assert_eq!(
        warm.replace("\"cached\": true", "\"cached\": false"),
        cold,
        "cache hit must be bit-identical to the cold answer"
    );
    let stats = server.scheduler().stats();
    assert_eq!(stats.fast_path_hits, 1);
    assert_eq!(stats.admitted, 1);
    server.shutdown();
}
