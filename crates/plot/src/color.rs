//! A small RGB color type and the default palette.

/// An RGB color.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Builds a color from channels.
    #[must_use]
    pub const fn rgb(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }

    /// Black.
    pub const BLACK: Color = Color::rgb(0, 0, 0);
    /// Mid grey (grid lines).
    pub const GREY: Color = Color::rgb(160, 160, 160);

    /// The default qualitative palette (colorblind-safe-ish Okabe-Ito
    /// subset), cycled by series index.
    pub const PALETTE: [Color; 8] = [
        Color::rgb(0, 114, 178),   // blue
        Color::rgb(213, 94, 0),    // vermillion
        Color::rgb(0, 158, 115),   // green
        Color::rgb(204, 121, 167), // purple
        Color::rgb(230, 159, 0),   // orange
        Color::rgb(86, 180, 233),  // sky
        Color::rgb(240, 228, 66),  // yellow
        Color::rgb(0, 0, 0),       // black
    ];

    /// Palette color for a series index (wraps around).
    #[must_use]
    pub fn for_index(i: usize) -> Self {
        Self::PALETTE[i % Self::PALETTE.len()]
    }

    /// CSS hex form, `#rrggbb`.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("#{:02x}{:02x}{:02x}", self.r, self.g, self.b)
    }
}

impl core::fmt::Display for Color {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_format() {
        assert_eq!(Color::rgb(0, 114, 178).to_hex(), "#0072b2");
        assert_eq!(Color::BLACK.to_string(), "#000000");
    }

    #[test]
    fn palette_wraps() {
        assert_eq!(Color::for_index(0), Color::for_index(8));
        assert_eq!(Color::for_index(3), Color::PALETTE[3]);
    }
}
