//! # `f1-plot` — dependency-free SVG and ASCII charts
//!
//! The F-1 model is a *visual* performance model: its output is a roofline
//! chart (velocity vs. action throughput on a log axis) with ceilings, knee
//! markers and annotated operating points. This crate renders such charts
//! as standalone SVG documents and as ASCII canvases for terminal output,
//! with zero third-party dependencies (the `plotters` crate is not in this
//! workspace's offline allowlist; rooflines only need lines, points, log
//! axes and text, all implemented here).
//!
//! # Examples
//!
//! ```
//! use f1_plot::{Chart, Scale, Series};
//!
//! let curve: Vec<(f64, f64)> = (1..=100)
//!     .map(|i| (i as f64, (i as f64).sqrt()))
//!     .collect();
//! let svg = Chart::new("sqrt")
//!     .x_label("x")
//!     .y_label("√x")
//!     .x_scale(Scale::Log10)
//!     .series(Series::line("sqrt", curve))
//!     .render_svg(640, 480)?;
//! assert!(svg.starts_with("<svg"));
//! # Ok::<(), f1_plot::PlotError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod axis;
mod chart;
mod color;
mod error;
mod series;
mod svg;

pub use axis::{Axis, Scale};
pub use chart::{Annotation, Chart, HLine, VLine};
pub use color::Color;
pub use error::PlotError;
pub use series::{Series, SeriesKind};
