//! Plot rendering errors.

/// Errors produced while building or rendering a chart.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlotError {
    /// The chart has no drawable data.
    EmptyChart,
    /// A data value is incompatible with the axis scale (e.g. a
    /// non-positive value on a log axis).
    ScaleDomain {
        /// Which axis rejected the value.
        axis: &'static str,
        /// A rendering of the offending value.
        value: String,
    },
    /// The requested canvas is too small to draw into.
    CanvasTooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// The data contains non-finite coordinates.
    NonFiniteData {
        /// The series containing the bad point.
        series: String,
    },
}

impl core::fmt::Display for PlotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::EmptyChart => f.write_str("chart has no drawable data"),
            Self::ScaleDomain { axis, value } => {
                write!(f, "{axis}-axis scale cannot represent value {value}")
            }
            Self::CanvasTooSmall { width, height } => {
                write!(f, "canvas {width}×{height} too small to render")
            }
            Self::NonFiniteData { series } => {
                write!(f, "series {series:?} contains non-finite coordinates")
            }
        }
    }
}

impl std::error::Error for PlotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(PlotError::EmptyChart.to_string().contains("no drawable"));
        let s = PlotError::ScaleDomain {
            axis: "x",
            value: "-1".into(),
        }
        .to_string();
        assert!(s.contains("x-axis"));
        assert!(PlotError::CanvasTooSmall {
            width: 3,
            height: 2
        }
        .to_string()
        .contains("3×2"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<PlotError>();
    }
}
