//! Minimal SVG document builder with text escaping.

use std::fmt::Write as _;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub(crate) struct SvgDoc {
    width: usize,
    height: usize,
    body: String,
}

impl SvgDoc {
    pub(crate) fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            body: String::new(),
        }
    }

    pub(crate) fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{w:.1}" height="{h:.1}" fill="{fill}"/>"#
        );
        self.body.push('\n');
    }

    #[allow(clippy::too_many_arguments)] // a line is naturally 2 points + 3 style attrs
    pub(crate) fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
        dashed: bool,
    ) {
        let dash = if dashed {
            r#" stroke-dasharray="6 4""#
        } else {
            ""
        };
        let _ = write!(
            self.body,
            r#"<line x1="{x1:.1}" y1="{y1:.1}" x2="{x2:.1}" y2="{y2:.1}" stroke="{stroke}" stroke-width="{width:.1}"{dash}/>"#
        );
        self.body.push('\n');
    }

    pub(crate) fn polyline(&mut self, pts: &[(f64, f64)], stroke: &str, width: f64, dashed: bool) {
        if pts.len() < 2 {
            return;
        }
        let mut coords = String::with_capacity(pts.len() * 12);
        for (x, y) in pts {
            let _ = write!(coords, "{x:.1},{y:.1} ");
        }
        let dash = if dashed {
            r#" stroke-dasharray="6 4""#
        } else {
            ""
        };
        let _ = write!(
            self.body,
            r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width:.1}"{dash}/>"#,
            coords.trim_end()
        );
        self.body.push('\n');
    }

    pub(crate) fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="{r:.1}" fill="{fill}"/>"#
        );
        self.body.push('\n');
    }

    pub(crate) fn text(
        &mut self,
        x: f64,
        y: f64,
        size: f64,
        anchor: &str,
        fill: &str,
        content: &str,
    ) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size:.0}" font-family="sans-serif" text-anchor="{anchor}" fill="{fill}">{}</text>"#,
            escape(content)
        );
        self.body.push('\n');
    }

    pub(crate) fn text_rotated(&mut self, x: f64, y: f64, size: f64, content: &str) {
        let _ = write!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size:.0}" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 {x:.1} {y:.1})">{}</text>"#,
            escape(content)
        );
        self.body.push('\n');
    }

    pub(crate) fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Escapes text content for XML.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b & c>\"d\""), "a&lt;b &amp; c&gt;&quot;d&quot;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn document_structure() {
        let mut doc = SvgDoc::new(100, 50);
        doc.rect(0.0, 0.0, 100.0, 50.0, "#ffffff");
        doc.line(0.0, 0.0, 10.0, 10.0, "#000000", 1.0, false);
        doc.circle(5.0, 5.0, 2.0, "#ff0000");
        doc.text(1.0, 1.0, 10.0, "start", "#000", "hello <world>");
        let svg = doc.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("hello &lt;world&gt;"));
        assert!(svg.contains("viewBox=\"0 0 100 50\""));
    }

    #[test]
    fn polyline_skips_degenerate() {
        let mut doc = SvgDoc::new(10, 10);
        doc.polyline(&[(1.0, 1.0)], "#000", 1.0, false);
        assert!(!doc.finish().contains("polyline"));
    }

    #[test]
    fn dashed_attribute() {
        let mut doc = SvgDoc::new(10, 10);
        doc.line(0.0, 0.0, 5.0, 5.0, "#000", 1.0, true);
        assert!(doc.finish().contains("stroke-dasharray"));
    }
}
