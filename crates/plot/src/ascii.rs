//! A character-cell canvas for terminal chart rendering.

/// A fixed-size grid of characters with (0,0) at the top-left.
#[derive(Debug, Clone)]
pub(crate) struct AsciiCanvas {
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl AsciiCanvas {
    pub(crate) fn new(cols: usize, rows: usize) -> Self {
        Self {
            cols,
            rows,
            cells: vec![' '; cols * rows],
        }
    }

    #[cfg(test)]
    pub(crate) fn cols(&self) -> usize {
        self.cols
    }

    #[cfg(test)]
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    /// Sets a cell if it is inside the canvas; existing non-space content is
    /// only overwritten by "stronger" glyphs (markers beat line segments).
    pub(crate) fn set(&mut self, col: isize, row: isize, ch: char) {
        if col < 0 || row < 0 {
            return;
        }
        let (c, r) = (col as usize, row as usize);
        if c >= self.cols || r >= self.rows {
            return;
        }
        let idx = r * self.cols + c;
        let current = self.cells[idx];
        if current == ' ' || glyph_rank(ch) >= glyph_rank(current) {
            self.cells[idx] = ch;
        }
    }

    /// Writes a string starting at a cell (clipped at the right edge).
    pub(crate) fn write_str(&mut self, col: isize, row: isize, s: &str) {
        for (i, ch) in s.chars().enumerate() {
            self.set(col + i as isize, row, ch);
        }
    }

    /// Bresenham line between two cells.
    pub(crate) fn line(&mut self, c0: isize, r0: isize, c1: isize, r1: isize, ch: char) {
        let (mut x, mut y) = (c0, r0);
        let dx = (c1 - c0).abs();
        let dy = -(r1 - r0).abs();
        let sx = if c0 < c1 { 1 } else { -1 };
        let sy = if r0 < r1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.set(x, y, ch);
            if x == c1 && y == r1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    pub(crate) fn render(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            let row: String = self.cells[r * self.cols..(r + 1) * self.cols]
                .iter()
                .collect();
            out.push_str(row.trim_end());
            out.push('\n');
        }
        out
    }
}

/// Priority of glyphs when cells collide: markers > axes > line art.
fn glyph_rank(ch: char) -> u8 {
    match ch {
        '●' | '○' | '*' | 'x' | 'o' => 3,
        '|' | '-' | '+' => 2,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_render() {
        let mut c = AsciiCanvas::new(5, 2);
        c.set(0, 0, 'a');
        c.set(4, 1, 'b');
        let out = c.render();
        assert_eq!(out, "a\n    b\n");
    }

    #[test]
    fn out_of_bounds_ignored() {
        let mut c = AsciiCanvas::new(3, 3);
        c.set(-1, 0, 'x');
        c.set(0, -1, 'x');
        c.set(3, 0, 'x');
        c.set(0, 3, 'x');
        assert_eq!(c.render(), "\n\n\n");
    }

    #[test]
    fn line_connects_endpoints() {
        let mut c = AsciiCanvas::new(10, 10);
        c.line(0, 0, 9, 9, '.');
        let out = c.render();
        assert!(out.lines().next().unwrap().starts_with('.'));
        assert!(out.lines().nth(9).unwrap().ends_with('.'));
    }

    #[test]
    fn markers_beat_lines() {
        let mut c = AsciiCanvas::new(3, 1);
        c.set(1, 0, '.');
        c.set(1, 0, '*');
        assert!(c.render().contains('*'));
        // And line art does not overwrite markers.
        c.set(1, 0, '.');
        assert!(c.render().contains('*'));
    }

    #[test]
    fn write_str_clips() {
        let mut c = AsciiCanvas::new(4, 1);
        c.write_str(2, 0, "abcdef");
        assert_eq!(c.render(), "  ab\n");
    }

    #[test]
    fn dimensions() {
        let c = AsciiCanvas::new(7, 3);
        assert_eq!((c.cols(), c.rows()), (7, 3));
    }
}
