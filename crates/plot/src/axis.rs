//! Axis scales, ranges and tick generation.

use crate::PlotError;

/// An axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Linear mapping.
    #[default]
    Linear,
    /// Base-10 logarithmic mapping (rooflines use this on the x-axis).
    Log10,
}

impl Scale {
    /// Maps a data value into scale space.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::ScaleDomain`] for non-positive values on a log
    /// scale or non-finite values on any scale.
    pub fn transform(self, axis: &'static str, v: f64) -> Result<f64, PlotError> {
        if !v.is_finite() {
            return Err(PlotError::ScaleDomain {
                axis,
                value: format!("{v}"),
            });
        }
        match self {
            Scale::Linear => Ok(v),
            Scale::Log10 => {
                if v <= 0.0 {
                    Err(PlotError::ScaleDomain {
                        axis,
                        value: format!("{v}"),
                    })
                } else {
                    Ok(v.log10())
                }
            }
        }
    }
}

/// A fully-resolved axis: label, scale and data range.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Axis label text.
    pub label: String,
    /// The scale.
    pub scale: Scale,
    /// Minimum data value.
    pub min: f64,
    /// Maximum data value.
    pub max: f64,
}

impl Axis {
    /// Builds an axis over a data range, widening degenerate ranges so a
    /// single point still renders.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::ScaleDomain`] if the range is incompatible with
    /// the scale.
    pub fn over(
        label: impl Into<String>,
        scale: Scale,
        name: &'static str,
        mut min: f64,
        mut max: f64,
    ) -> Result<Self, PlotError> {
        if min > max {
            core::mem::swap(&mut min, &mut max);
        }
        // Widen degenerate ranges.
        if (max - min).abs() < f64::EPSILON {
            match scale {
                Scale::Linear => {
                    let pad = if min == 0.0 { 1.0 } else { min.abs() * 0.1 };
                    min -= pad;
                    max += pad;
                }
                Scale::Log10 => {
                    min /= 2.0;
                    max *= 2.0;
                }
            }
        }
        // Validate against the scale.
        scale.transform(name, min)?;
        scale.transform(name, max)?;
        Ok(Self {
            label: label.into(),
            scale,
            min,
            max,
        })
    }

    /// Normalized position of a value in `[0, 1]` along the axis.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::ScaleDomain`] if the value is incompatible with
    /// the scale.
    pub fn position(&self, name: &'static str, v: f64) -> Result<f64, PlotError> {
        let lo = self.scale.transform(name, self.min)?;
        let hi = self.scale.transform(name, self.max)?;
        let x = self.scale.transform(name, v)?;
        if (hi - lo).abs() < f64::EPSILON {
            return Ok(0.5);
        }
        Ok((x - lo) / (hi - lo))
    }

    /// Generates tick positions (data values) for the axis.
    ///
    /// Linear axes get ~`target` evenly-spaced "nice" ticks; log axes get
    /// one tick per decade (and every 10^k within range).
    #[must_use]
    pub fn ticks(&self, target: usize) -> Vec<f64> {
        match self.scale {
            Scale::Linear => nice_linear_ticks(self.min, self.max, target.max(2)),
            Scale::Log10 => {
                let lo = self.min.log10().floor() as i32;
                let hi = self.max.log10().ceil() as i32;
                (lo..=hi)
                    .map(|k| 10f64.powi(k))
                    .filter(|v| *v >= self.min * 0.999 && *v <= self.max * 1.001)
                    .collect()
            }
        }
    }
}

/// Chooses "nice" round-number ticks covering `[min, max]`.
fn nice_linear_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    let span = max - min;
    if span <= 0.0 || !span.is_finite() {
        return vec![min];
    }
    let raw_step = span / target as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        mag
    } else if norm < 3.0 {
        2.0 * mag
    } else if norm < 7.0 {
        5.0 * mag
    } else {
        10.0 * mag
    };
    let first = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut v = first;
    while v <= max + step * 1e-9 {
        // Snap tiny FP noise to zero.
        ticks.push(if v.abs() < step * 1e-9 { 0.0 } else { v });
        v += step;
    }
    ticks
}

/// Formats a tick value compactly (used by both renderers).
#[must_use]
pub(crate) fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(0.01..10000.0).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 || (v - v.round()).abs() < 1e-9 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_transform_is_identity() {
        assert_eq!(Scale::Linear.transform("x", 3.5).unwrap(), 3.5);
        assert!(Scale::Linear.transform("x", f64::NAN).is_err());
    }

    #[test]
    fn log_transform_rejects_non_positive() {
        assert!(Scale::Log10.transform("x", 0.0).is_err());
        assert!(Scale::Log10.transform("x", -1.0).is_err());
        assert!((Scale::Log10.transform("x", 100.0).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn axis_position_normalizes() {
        let ax = Axis::over("f", Scale::Log10, "x", 1.0, 100.0).unwrap();
        assert!((ax.position("x", 1.0).unwrap() - 0.0).abs() < 1e-12);
        assert!((ax.position("x", 10.0).unwrap() - 0.5).abs() < 1e-12);
        assert!((ax.position("x", 100.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_range_is_widened() {
        let ax = Axis::over("y", Scale::Linear, "y", 5.0, 5.0).unwrap();
        assert!(ax.min < 5.0 && ax.max > 5.0);
        let axl = Axis::over("x", Scale::Log10, "x", 8.0, 8.0).unwrap();
        assert!(axl.min < 8.0 && axl.max > 8.0);
    }

    #[test]
    fn swapped_range_is_fixed() {
        let ax = Axis::over("y", Scale::Linear, "y", 10.0, 2.0).unwrap();
        assert_eq!((ax.min, ax.max), (2.0, 10.0));
    }

    #[test]
    fn log_axis_rejects_non_positive_range() {
        assert!(Axis::over("x", Scale::Log10, "x", 0.0, 10.0).is_err());
        assert!(Axis::over("x", Scale::Log10, "x", -5.0, 10.0).is_err());
    }

    #[test]
    fn linear_ticks_are_nice() {
        let ax = Axis::over("y", Scale::Linear, "y", 0.0, 10.0).unwrap();
        let ticks = ax.ticks(5);
        assert!(ticks.len() >= 3);
        for w in ticks.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!(ticks.iter().all(|t| *t >= 0.0 && *t <= 10.0 + 1e-9));
    }

    #[test]
    fn log_ticks_are_decades() {
        let ax = Axis::over("x", Scale::Log10, "x", 1.0, 1000.0).unwrap();
        let ticks = ax.ticks(4);
        assert_eq!(ticks, vec![1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(10.0), "10");
        assert_eq!(format_tick(2.5), "2.50");
        assert_eq!(format_tick(1e5), "1e5");
        assert_eq!(format_tick(0.001), "1e-3");
    }
}
