//! The chart builder and its SVG/ASCII renderers.

use crate::ascii::AsciiCanvas;
use crate::axis::{format_tick, Axis, Scale};
use crate::color::Color;
use crate::series::{Series, SeriesKind};
use crate::svg::SvgDoc;
use crate::PlotError;

/// A text annotation anchored at a data coordinate (knee points, operating
/// points, "~75 %" arrows in the paper's figures).
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// Data x-coordinate.
    pub x: f64,
    /// Data y-coordinate.
    pub y: f64,
    /// The label text.
    pub text: String,
    /// Whether to draw a marker at the anchor.
    pub marker: bool,
}

impl Annotation {
    /// Creates a marker-less annotation.
    #[must_use]
    pub fn text(x: f64, y: f64, text: impl Into<String>) -> Self {
        Self {
            x,
            y,
            text: text.into(),
            marker: false,
        }
    }

    /// Creates an annotation with a point marker.
    #[must_use]
    pub fn marked(x: f64, y: f64, text: impl Into<String>) -> Self {
        Self {
            x,
            y,
            text: text.into(),
            marker: true,
        }
    }
}

/// A horizontal reference line (velocity ceilings).
#[derive(Debug, Clone, PartialEq)]
pub struct HLine {
    /// Data y-coordinate.
    pub y: f64,
    /// Legend/annotation label.
    pub label: String,
}

/// A vertical reference line (knee rates, stage throughputs).
#[derive(Debug, Clone, PartialEq)]
pub struct VLine {
    /// Data x-coordinate.
    pub x: f64,
    /// Legend/annotation label.
    pub label: String,
}

/// A chart under construction.
///
/// # Examples
///
/// ```
/// use f1_plot::{Annotation, Chart, Scale, Series};
///
/// let ascii = Chart::new("roofline")
///     .x_scale(Scale::Log10)
///     .x_label("Action Throughput (Hz)")
///     .y_label("Safe Velocity (m/s)")
///     .series(Series::line("uav", vec![(1.0, 2.0), (10.0, 6.0), (100.0, 6.3)]))
///     .annotation(Annotation::marked(10.0, 6.0, "knee"))
///     .render_ascii(60, 20)?;
/// assert!(ascii.contains("knee"));
/// # Ok::<(), f1_plot::PlotError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<Series>,
    annotations: Vec<Annotation>,
    hlines: Vec<HLine>,
    vlines: Vec<VLine>,
    y_min_zero: bool,
}

impl Chart {
    /// Starts a chart with a title.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            y_min_zero: true,
            ..Self::default()
        }
    }

    /// Sets the x-axis label.
    #[must_use]
    pub fn x_label(mut self, label: impl Into<String>) -> Self {
        self.x_label = label.into();
        self
    }

    /// Sets the y-axis label.
    #[must_use]
    pub fn y_label(mut self, label: impl Into<String>) -> Self {
        self.y_label = label.into();
        self
    }

    /// Sets the x-axis scale (rooflines use [`Scale::Log10`]).
    #[must_use]
    pub fn x_scale(mut self, scale: Scale) -> Self {
        self.x_scale = scale;
        self
    }

    /// Sets the y-axis scale.
    #[must_use]
    pub fn y_scale(mut self, scale: Scale) -> Self {
        self.y_scale = scale;
        self
    }

    /// When `true` (default) a linear y-axis is pinned at zero.
    #[must_use]
    pub fn y_from_zero(mut self, pin: bool) -> Self {
        self.y_min_zero = pin;
        self
    }

    /// Adds a data series.
    #[must_use]
    pub fn series(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Adds an annotation.
    #[must_use]
    pub fn annotation(mut self, a: Annotation) -> Self {
        self.annotations.push(a);
        self
    }

    /// Adds a horizontal reference line.
    #[must_use]
    pub fn hline(mut self, y: f64, label: impl Into<String>) -> Self {
        self.hlines.push(HLine {
            y,
            label: label.into(),
        });
        self
    }

    /// Adds a vertical reference line.
    #[must_use]
    pub fn vline(mut self, x: f64, label: impl Into<String>) -> Self {
        self.vlines.push(VLine {
            x,
            label: label.into(),
        });
        self
    }

    /// The chart title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The series added so far.
    #[must_use]
    pub fn series_list(&self) -> &[Series] {
        &self.series
    }

    /// Resolves the data bounds into axes.
    fn resolve_axes(&self) -> Result<(Axis, Axis), PlotError> {
        let mut bounds: Option<(f64, f64, f64, f64)> = None;
        for s in &self.series {
            if !s.is_finite() {
                return Err(PlotError::NonFiniteData {
                    series: s.name().to_owned(),
                });
            }
            if let Some(b) = s.bounds() {
                bounds = Some(match bounds {
                    None => b,
                    Some(acc) => (
                        acc.0.min(b.0),
                        acc.1.max(b.1),
                        acc.2.min(b.2),
                        acc.3.max(b.3),
                    ),
                });
            }
        }
        // Reference lines and annotations extend the bounds too.
        for a in &self.annotations {
            if let Some(b) = bounds.as_mut() {
                b.0 = b.0.min(a.x);
                b.1 = b.1.max(a.x);
                b.2 = b.2.min(a.y);
                b.3 = b.3.max(a.y);
            }
        }
        for h in &self.hlines {
            if let Some(b) = bounds.as_mut() {
                b.2 = b.2.min(h.y);
                b.3 = b.3.max(h.y);
            }
        }
        for v in &self.vlines {
            if let Some(b) = bounds.as_mut() {
                b.0 = b.0.min(v.x);
                b.1 = b.1.max(v.x);
            }
        }
        let (x0, x1, mut y0, y1) = bounds.ok_or(PlotError::EmptyChart)?;
        if self.y_min_zero && self.y_scale == Scale::Linear && y0 > 0.0 {
            y0 = 0.0;
        }
        let x_axis = Axis::over(self.x_label.clone(), self.x_scale, "x", x0, x1)?;
        // Headroom above the tallest point so roofs do not hug the frame.
        let y_pad = match self.y_scale {
            Scale::Linear => (y1 - y0) * 0.08,
            Scale::Log10 => 0.0,
        };
        let y_hi = if self.y_scale == Scale::Log10 {
            y1 * 1.3
        } else {
            y1 + y_pad.max(1e-12)
        };
        let y_axis = Axis::over(self.y_label.clone(), self.y_scale, "y", y0, y_hi)?;
        Ok((x_axis, y_axis))
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::EmptyChart`] with no data,
    /// [`PlotError::CanvasTooSmall`] under 160×120, and scale-domain errors
    /// for data incompatible with the axes.
    pub fn render_svg(&self, width: usize, height: usize) -> Result<String, PlotError> {
        if width < 160 || height < 120 {
            return Err(PlotError::CanvasTooSmall { width, height });
        }
        let (x_axis, y_axis) = self.resolve_axes()?;
        let (w, h) = (width as f64, height as f64);
        let margin_l = 62.0;
        let margin_r = 18.0;
        let margin_t = 34.0;
        let margin_b = 48.0;
        let plot_w = w - margin_l - margin_r;
        let plot_h = h - margin_t - margin_b;

        let to_px = |x: f64, y: f64| -> Result<(f64, f64), PlotError> {
            let px = margin_l + x_axis.position("x", x)? * plot_w;
            let py = margin_t + (1.0 - y_axis.position("y", y)?) * plot_h;
            Ok((px, py))
        };

        let mut doc = SvgDoc::new(width, height);
        doc.rect(0.0, 0.0, w, h, "#ffffff");
        // Frame.
        doc.line(
            margin_l,
            margin_t,
            margin_l,
            h - margin_b,
            "#000000",
            1.2,
            false,
        );
        doc.line(
            margin_l,
            h - margin_b,
            w - margin_r,
            h - margin_b,
            "#000000",
            1.2,
            false,
        );
        // Title + labels.
        doc.text(
            w / 2.0,
            margin_t - 14.0,
            14.0,
            "middle",
            "#000000",
            &self.title,
        );
        doc.text(
            margin_l + plot_w / 2.0,
            h - 10.0,
            12.0,
            "middle",
            "#000000",
            &x_axis.label,
        );
        doc.text_rotated(16.0, margin_t + plot_h / 2.0, 12.0, &y_axis.label);

        // Ticks + grid.
        for t in x_axis.ticks(6) {
            let (px, _) = to_px(t, y_axis.min)?;
            doc.line(
                px,
                margin_t,
                px,
                h - margin_b,
                &Color::GREY.to_hex(),
                0.5,
                true,
            );
            doc.text(
                px,
                h - margin_b + 16.0,
                10.0,
                "middle",
                "#000000",
                &format_tick(t),
            );
        }
        for t in y_axis.ticks(6) {
            let py = margin_t + (1.0 - y_axis.position("y", t)?) * plot_h;
            doc.line(
                margin_l,
                py,
                w - margin_r,
                py,
                &Color::GREY.to_hex(),
                0.5,
                true,
            );
            doc.text(
                margin_l - 6.0,
                py + 3.5,
                10.0,
                "end",
                "#000000",
                &format_tick(t),
            );
        }

        // Reference lines.
        for hl in &self.hlines {
            let py = margin_t + (1.0 - y_axis.position("y", hl.y)?) * plot_h;
            doc.line(margin_l, py, w - margin_r, py, "#888888", 1.0, true);
            doc.text(
                w - margin_r - 4.0,
                py - 4.0,
                10.0,
                "end",
                "#444444",
                &hl.label,
            );
        }
        for vl in &self.vlines {
            let px = margin_l + x_axis.position("x", vl.x)? * plot_w;
            doc.line(px, margin_t, px, h - margin_b, "#888888", 1.0, true);
            doc.text(
                px + 4.0,
                margin_t + 12.0,
                10.0,
                "start",
                "#444444",
                &vl.label,
            );
        }

        // Series.
        let mut legend_y = margin_t + 6.0;
        for (i, s) in self.series.iter().enumerate() {
            let color = s.color().unwrap_or_else(|| Color::for_index(i)).to_hex();
            match s.kind() {
                SeriesKind::Line | SeriesKind::DashedLine => {
                    let mut pts = Vec::with_capacity(s.points().len());
                    for &(x, y) in s.points() {
                        pts.push(to_px(x, y)?);
                    }
                    doc.polyline(&pts, &color, 1.8, s.kind() == SeriesKind::DashedLine);
                }
                SeriesKind::Scatter => {
                    for &(x, y) in s.points() {
                        let (px, py) = to_px(x, y)?;
                        doc.circle(px, py, 3.5, &color);
                    }
                }
                SeriesKind::Bars => {
                    let n = s.points().len().max(1) as f64;
                    let bar_w = (plot_w / (n * 2.0)).clamp(2.0, 40.0);
                    let baseline = y_axis.min.max(0.0);
                    for &(x, y) in s.points() {
                        let (px, py) = to_px(x, y)?;
                        let (_, py0) = to_px(x, baseline)?;
                        let top = py.min(py0);
                        let height = (py0 - py).abs();
                        doc.rect(px - bar_w / 2.0, top, bar_w, height, &color);
                    }
                }
            }
            // Legend entry.
            let lx = margin_l + plot_w - 130.0;
            doc.circle(lx, legend_y, 3.0, &color);
            doc.text(lx + 8.0, legend_y + 3.5, 10.0, "start", "#000000", s.name());
            legend_y += 14.0;
        }

        // Annotations on top.
        for a in &self.annotations {
            let (px, py) = to_px(a.x, a.y)?;
            if a.marker {
                doc.circle(px, py, 4.0, "#000000");
            }
            doc.text(px + 6.0, py - 6.0, 10.0, "start", "#000000", &a.text);
        }
        Ok(doc.finish())
    }

    /// Renders the chart as ASCII art.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::EmptyChart`] with no data,
    /// [`PlotError::CanvasTooSmall`] under 24×10, and scale-domain errors
    /// for data incompatible with the axes.
    pub fn render_ascii(&self, cols: usize, rows: usize) -> Result<String, PlotError> {
        if cols < 24 || rows < 10 {
            return Err(PlotError::CanvasTooSmall {
                width: cols,
                height: rows,
            });
        }
        let (x_axis, y_axis) = self.resolve_axes()?;
        let margin_l: isize = 9;
        let margin_b: isize = 3;
        let margin_t: isize = 1;
        let plot_w = cols as isize - margin_l - 2;
        let plot_h = rows as isize - margin_t - margin_b;
        let mut canvas = AsciiCanvas::new(cols, rows);

        let to_cell = |x: f64, y: f64| -> Result<(isize, isize), PlotError> {
            let cx =
                margin_l + 1 + (x_axis.position("x", x)? * (plot_w - 1) as f64).round() as isize;
            let cy = margin_t
                + ((1.0 - y_axis.position("y", y)?) * (plot_h - 1) as f64).round() as isize;
            Ok((cx, cy))
        };

        // Title.
        canvas.write_str(margin_l + 2, 0, &self.title);
        // Frame.
        for r in margin_t..(margin_t + plot_h) {
            canvas.set(margin_l, r, '|');
        }
        for c in margin_l..(margin_l + 1 + plot_w) {
            canvas.set(c, margin_t + plot_h, '-');
        }
        canvas.set(margin_l, margin_t + plot_h, '+');

        // Y tick labels (min / mid / max).
        for (frac, v) in [
            (0.0, y_axis.min),
            (0.5, (y_axis.min + y_axis.max) / 2.0),
            (1.0, y_axis.max),
        ] {
            let r = margin_t + ((1.0 - frac) * (plot_h - 1) as f64).round() as isize;
            let label = format_tick(v);
            canvas.write_str(margin_l - 1 - label.len() as isize, r, &label);
        }
        // X tick labels.
        for t in x_axis.ticks(5) {
            let (c, _) = to_cell(t, y_axis.max)?;
            let label = format_tick(t);
            canvas.write_str(c - label.len() as isize / 2, margin_t + plot_h + 1, &label);
        }
        // Axis captions.
        canvas.write_str(margin_l + 2, rows as isize - 1, &x_axis.label);

        // Reference lines.
        for hl in &self.hlines {
            let (_, r) = to_cell(x_axis.max, hl.y)?;
            for c in (margin_l + 1)..(margin_l + 1 + plot_w) {
                canvas.set(c, r, '·');
            }
            canvas.write_str(margin_l + 2, r, &hl.label);
        }
        for vl in &self.vlines {
            let (c, _) = to_cell(vl.x, y_axis.max)?;
            for r in margin_t..(margin_t + plot_h) {
                canvas.set(c, r, '·');
            }
        }

        // Series.
        let glyphs = ['*', 'o', 'x', '#', '%', '@', '&', '$'];
        for (i, s) in self.series.iter().enumerate() {
            let glyph = glyphs[i % glyphs.len()];
            match s.kind() {
                SeriesKind::Line | SeriesKind::DashedLine => {
                    let mut prev: Option<(isize, isize)> = None;
                    for &(x, y) in s.points() {
                        let cell = to_cell(x, y)?;
                        if let Some(p) = prev {
                            canvas.line(p.0, p.1, cell.0, cell.1, glyph);
                        } else {
                            canvas.set(cell.0, cell.1, glyph);
                        }
                        prev = Some(cell);
                    }
                }
                SeriesKind::Scatter => {
                    for &(x, y) in s.points() {
                        let (c, r) = to_cell(x, y)?;
                        canvas.set(c, r, '●');
                    }
                }
                SeriesKind::Bars => {
                    let baseline = y_axis.min.max(0.0);
                    for &(x, y) in s.points() {
                        let (c, r_top) = to_cell(x, y)?;
                        let (_, r_base) = to_cell(x, baseline)?;
                        for r in r_top.min(r_base)..=r_top.max(r_base) {
                            canvas.set(c, r, '█');
                        }
                    }
                }
            }
        }

        // Annotations.
        for a in &self.annotations {
            let (c, r) = to_cell(a.x, a.y)?;
            if a.marker {
                canvas.set(c, r, '●');
            }
            canvas.write_str(c + 1, r - 1, &a.text);
        }
        Ok(canvas.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roofline_chart() -> Chart {
        let curve: Vec<(f64, f64)> = (0..=60)
            .map(|i| {
                let f = 10f64.powf(i as f64 / 20.0); // 1..1000 Hz
                let v = 2.0 * 10.0 / ((1.0 / f / f + 0.4f64).sqrt() + 1.0 / f);
                (f, v)
            })
            .collect();
        Chart::new("F-1")
            .x_scale(Scale::Log10)
            .x_label("Action Throughput (Hz)")
            .y_label("Safe Velocity (m/s)")
            .series(Series::line("AscTec Pelican", curve))
            .series(Series::scatter("DroNet + TX2", vec![(178.0, 30.0)]))
            .annotation(Annotation::marked(100.0, 30.5, "knee"))
            .hline(31.6, "physics roof")
            .vline(43.0, "f_k")
    }

    #[test]
    fn svg_renders_and_contains_parts() {
        let svg = roofline_chart().render_svg(640, 480).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("Action Throughput"));
        assert!(svg.contains("polyline"));
        assert!(svg.contains("knee"));
        assert!(svg.contains("physics roof"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn ascii_renders_and_contains_parts() {
        let art = roofline_chart().render_ascii(80, 24).unwrap();
        assert!(art.contains("F-1"));
        assert!(art.contains('*'));
        assert!(art.contains("knee"));
        assert!(art.lines().count() >= 20);
    }

    #[test]
    fn empty_chart_is_error() {
        assert_eq!(
            Chart::new("empty").render_svg(640, 480),
            Err(PlotError::EmptyChart)
        );
        assert_eq!(
            Chart::new("empty").render_ascii(80, 24),
            Err(PlotError::EmptyChart)
        );
    }

    #[test]
    fn tiny_canvas_is_error() {
        let c = roofline_chart();
        assert!(matches!(
            c.render_svg(10, 10),
            Err(PlotError::CanvasTooSmall { .. })
        ));
        assert!(matches!(
            c.render_ascii(5, 5),
            Err(PlotError::CanvasTooSmall { .. })
        ));
    }

    #[test]
    fn non_finite_data_is_error() {
        let c = Chart::new("bad").series(Series::line("nan", vec![(1.0, f64::NAN)]));
        assert!(matches!(
            c.render_svg(640, 480),
            Err(PlotError::NonFiniteData { .. })
        ));
    }

    #[test]
    fn log_axis_rejects_non_positive_x() {
        let c = Chart::new("bad")
            .x_scale(Scale::Log10)
            .series(Series::line("zero", vec![(0.0, 1.0), (1.0, 2.0)]));
        assert!(matches!(
            c.render_svg(640, 480),
            Err(PlotError::ScaleDomain { .. })
        ));
    }

    #[test]
    fn y_from_zero_pins_linear_axis() {
        let c = Chart::new("pin").series(Series::line("s", vec![(1.0, 5.0), (2.0, 6.0)]));
        let (_, y) = c.resolve_axes().unwrap();
        assert_eq!(y.min, 0.0);
        let unpinned = Chart::new("nopin")
            .y_from_zero(false)
            .series(Series::line("s", vec![(1.0, 5.0), (2.0, 6.0)]));
        let (_, y2) = unpinned.resolve_axes().unwrap();
        assert!(y2.min > 0.0);
    }

    #[test]
    fn annotations_extend_bounds() {
        let c = Chart::new("ext")
            .series(Series::line("s", vec![(1.0, 1.0), (2.0, 2.0)]))
            .annotation(Annotation::text(50.0, 9.0, "far"));
        let (x, y) = c.resolve_axes().unwrap();
        assert!(x.max >= 50.0);
        assert!(y.max >= 9.0);
    }

    #[test]
    fn builder_accessors() {
        let c = roofline_chart();
        assert_eq!(c.title(), "F-1");
        assert_eq!(c.series_list().len(), 2);
    }

    #[test]
    fn bar_series_renders_rects_and_columns() {
        // The paper's Fig. 12 style: heatsink grams per TDP bucket.
        let chart = Chart::new("heatsink")
            .x_label("TDP (W)")
            .y_label("grams")
            .series(Series::bars(
                "heatsink",
                vec![(1.5, 10.0), (15.0, 81.0), (30.0, 162.0)],
            ));
        let svg = chart.render_svg(640, 480).unwrap();
        // Three bars (plus the background rect).
        assert_eq!(svg.matches("<rect").count(), 4);
        let ascii = chart.render_ascii(60, 20).unwrap();
        assert!(ascii.contains('█'));
        // The tallest bar spans more rows than the shortest.
        let col_count = |s: &str| s.lines().filter(|l| l.contains('█')).count();
        assert!(col_count(&ascii) >= 10);
    }
}
