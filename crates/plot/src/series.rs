//! Data series: points plus drawing style.

use crate::Color;

/// How a series is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeriesKind {
    /// Connected polyline (roofline curves).
    #[default]
    Line,
    /// Individual markers (operating points).
    Scatter,
    /// Dashed polyline (ceilings, what-if variants).
    DashedLine,
    /// Vertical bars rising from the baseline (the paper's Fig. 12 style).
    Bars,
}

/// A named data series.
///
/// # Examples
///
/// ```
/// use f1_plot::Series;
/// let s = Series::scatter("DroNet + TX2", vec![(178.0, 7.2)]);
/// assert_eq!(s.points().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
    kind: SeriesKind,
    color: Option<Color>,
}

impl Series {
    /// A connected line series.
    #[must_use]
    pub fn line(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
            kind: SeriesKind::Line,
            color: None,
        }
    }

    /// A scatter (marker-only) series.
    #[must_use]
    pub fn scatter(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
            kind: SeriesKind::Scatter,
            color: None,
        }
    }

    /// A dashed line series.
    #[must_use]
    pub fn dashed(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
            kind: SeriesKind::DashedLine,
            color: None,
        }
    }

    /// A vertical-bar series.
    #[must_use]
    pub fn bars(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            name: name.into(),
            points,
            kind: SeriesKind::Bars,
            color: None,
        }
    }

    /// Overrides the palette color.
    #[must_use]
    pub fn with_color(mut self, color: Color) -> Self {
        self.color = Some(color);
        self
    }

    /// The series name (used in the legend).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data points.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The drawing kind.
    #[must_use]
    pub fn kind(&self) -> SeriesKind {
        self.kind
    }

    /// The explicit color, if set.
    #[must_use]
    pub fn color(&self) -> Option<Color> {
        self.color
    }

    /// Whether every coordinate is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.points
            .iter()
            .all(|(x, y)| x.is_finite() && y.is_finite())
    }

    /// The bounding box `(min_x, max_x, min_y, max_y)` of the series, or
    /// `None` if it has no points.
    #[must_use]
    pub fn bounds(&self) -> Option<(f64, f64, f64, f64)> {
        let mut it = self.points.iter().copied();
        let (x0, y0) = it.next()?;
        let mut b = (x0, x0, y0, y0);
        for (x, y) in it {
            b.0 = b.0.min(x);
            b.1 = b.1.max(x);
            b.2 = b.2.min(y);
            b.3 = b.3.max(y);
        }
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Series::line("a", vec![]).kind(), SeriesKind::Line);
        assert_eq!(Series::scatter("b", vec![]).kind(), SeriesKind::Scatter);
        assert_eq!(Series::dashed("c", vec![]).kind(), SeriesKind::DashedLine);
        assert_eq!(Series::bars("d", vec![]).kind(), SeriesKind::Bars);
    }

    #[test]
    fn bounds_cover_all_points() {
        let s = Series::line("curve", vec![(1.0, 5.0), (10.0, 2.0), (5.0, 9.0)]);
        assert_eq!(s.bounds(), Some((1.0, 10.0, 2.0, 9.0)));
        assert_eq!(Series::line("empty", vec![]).bounds(), None);
    }

    #[test]
    fn finiteness_check() {
        assert!(Series::line("ok", vec![(1.0, 2.0)]).is_finite());
        assert!(!Series::line("bad", vec![(f64::NAN, 2.0)]).is_finite());
        assert!(!Series::line("bad2", vec![(1.0, f64::INFINITY)]).is_finite());
    }

    #[test]
    fn color_override() {
        let s = Series::line("x", vec![]).with_color(Color::BLACK);
        assert_eq!(s.color(), Some(Color::BLACK));
        assert_eq!(Series::line("y", vec![]).color(), None);
    }
}
