//! The tier-2 evaluation hook: simulation-backed objectives on tier-1
//! survivors.
//!
//! A [`QueryPlan`] may declare [`SimObjective`]s
//! ([`PlanBuilder::sim_objective`](crate::plan::PlanBuilder::sim_objective)).
//! The analytic fused pass (tier 1) runs unchanged; afterwards the
//! session hands the result's **survivor set** — Pareto frontier ∪
//! ranked top-k, capped by the plan's
//! [`survivor_budget`](crate::plan::QueryPlan::survivor_budget) — to the
//! installed [`Tier2Evaluator`], which simulates each survivor and
//! returns a [`SimBlock`]: one value row per survivor per sim objective
//! plus a [`VerificationReport`] comparing analytic and simulated
//! rankings (the paper's fig. 7 validation, generalized).
//!
//! The hook lives in `f1-skyline` so the session can invoke it without
//! depending on the simulators; the `f1-sim` crate implements it on top
//! of `f1-flightsim` and `f1-pipeline` and a serving tier installs it
//! with [`Session::with_tier2`](crate::Session::with_tier2). The
//! [`SimBlock`] is stored **inside** the [`ResultSet`] and therefore
//! memoized, spilled and repaired with it — cache hits, batch shapes and
//! delta repair all observe bit-identical tier-2 values by construction.

use std::sync::Arc;

use f1_components::Catalog;
use serde::{Deserialize, Serialize};

use crate::plan::{QueryPlan, SimObjective};
use crate::query::Objective;
use crate::session::ResultSet;

/// One survivor's simulated objective values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRow {
    /// Stable candidate identity: a seed-grade hash of the survivor's
    /// catalog part ids and knob-setting position, independent of
    /// enumeration order, batch shape and storage mode — what keeps
    /// trial seeds (and therefore results) bit-identical across cache
    /// hits, streaming and delta repair.
    pub candidate_id: u64,
    /// The survivor's global tier-1 point index in the parent
    /// [`ResultSet`] (the same index space as
    /// [`ResultSet::frontier`]/[`ResultSet::top_k`]).
    pub index: usize,
    /// Simulated values, aligned with [`SimBlock::objectives`].
    pub values: Vec<f64>,
}

/// The tier-2 result attached to a [`ResultSet`]: simulated columns for
/// the survivor set plus the analytic-vs-simulated verification report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimBlock {
    /// The plan's sim objectives, in declaration order.
    pub objectives: Vec<SimObjective>,
    /// One row per simulated survivor, ascending by `candidate_id`.
    pub rows: Vec<SimRow>,
    /// Rank-agreement verification per sim objective.
    pub report: VerificationReport,
}

impl SimBlock {
    /// The row simulated for `candidate_id`, if any.
    #[must_use]
    pub fn row_for(&self, candidate_id: u64) -> Option<&SimRow> {
        self.rows
            .binary_search_by_key(&candidate_id, |r| r.candidate_id)
            .ok()
            .map(|i| &self.rows[i])
    }
}

/// Rank agreement between one sim objective and its analytic
/// counterpart over the survivor set — the fig. 7 question ("does the
/// cheap model order designs the way the simulator does?") asked of
/// every tier-2 objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationEntry {
    /// The simulated objective.
    pub objective: SimObjective,
    /// The analytic objective it was ranked against.
    pub analytic: Objective,
    /// Signed Kendall rank correlation (tau-b, tie-adjusted) between
    /// the analytic and simulated orderings, in `[-1, 1]`; `0` when
    /// fewer than two survivors have comparable values.
    pub tau: f64,
    /// `|tau|` — direction-agnostic agreement (a p99-latency objective
    /// legitimately anti-correlates with a maximize-velocity analytic).
    pub agreement: f64,
    /// Candidate ids of the worst rank disagreements (largest rank
    /// displacement between the two orderings), worst first, at most a
    /// handful — the designs a human should re-examine.
    pub outliers: Vec<u64>,
}

/// Per-objective [`VerificationEntry`]s, aligned with the plan's sim
/// objectives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// One entry per sim objective, in declaration order.
    pub entries: Vec<VerificationEntry>,
}

/// Everything a [`Tier2Evaluator`] sees for one evaluation: the pinned
/// catalog, the plan, the finished tier-1 result, and — on delta repair
/// — the prior result whose sim rows may be reused for survivors whose
/// tier-1 row did not change.
#[derive(Debug)]
pub struct Tier2Context<'a> {
    /// The catalog the tier-1 pass executed against.
    pub catalog: &'a Catalog,
    /// The plan (sim objectives, survivor budget, canonical key — the
    /// base of every trial seed).
    pub plan: &'a QueryPlan,
    /// The finished tier-1 result the survivor set is drawn from.
    pub result: &'a ResultSet,
    /// On [`Session::refresh`](crate::Session::refresh) repair: the
    /// prior cached result (with its [`SimBlock`]); `None` on a cold
    /// run. Evaluators may reuse a prior row only when the survivor's
    /// full tier-1 point is unchanged — reuse must be observationally
    /// bit-identical to re-simulating.
    pub prior: Option<&'a ResultSet>,
}

/// What one tier-2 evaluation cost, for the session's [`SimStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimUsage {
    /// Simulation trials actually run (robustness trials + pipeline
    /// runs; reused rows contribute nothing).
    pub trials: u64,
    /// Survivor rows served from the prior result without simulating.
    pub reused_rows: u64,
}

/// A finished tier-2 evaluation: the block to attach plus its cost.
#[derive(Debug)]
pub struct Tier2Evaluation {
    /// The sim columns + verification report to store in the result.
    pub block: SimBlock,
    /// Trials run / rows reused, for accounting only.
    pub usage: SimUsage,
}

/// The tier-2 evaluation hook a [`Session`](crate::Session) invokes for
/// plans with sim objectives (see [`Session::with_tier2`](crate::Session::with_tier2)).
///
/// Implementations MUST be deterministic functions of
/// `(catalog, plan, tier-1 result)`: the returned block is memoized
/// inside the [`ResultSet`] and compared bit-for-bit across cache hits,
/// batch shapes, streamed mode and delta repair.
pub trait Tier2Evaluator: Send + Sync + std::fmt::Debug {
    /// Simulates the survivor set of `ctx.result` and returns the block
    /// to attach.
    ///
    /// # Errors
    ///
    /// [`SkylineError`](crate::SkylineError) when a survivor cannot be
    /// mapped onto the simulators (e.g. an invalid derived dynamics
    /// model); infeasible survivors should instead degrade to sentinel
    /// values (robustness `0`, latency `+∞`) so one broken design never
    /// aborts a whole query.
    fn evaluate(&self, ctx: &Tier2Context<'_>) -> Result<Tier2Evaluation, crate::SkylineError>;
}

/// A `Send + Sync` handle to an installed evaluator.
pub type SharedTier2 = Arc<dyn Tier2Evaluator>;

/// Tier-2 accounting of a [`Session`](crate::Session): how many
/// evaluations ran, how many survivors they simulated, the trials paid
/// and reused, and wall-clock spent — the `"sim"` block of a serving
/// tier's `stats` endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Tier-2 evaluations invoked (one per non-reused plan execution
    /// with sim objectives).
    pub evaluations: u64,
    /// Survivor rows across all evaluations (simulated + reused).
    pub survivors: u64,
    /// Simulation trials actually run.
    pub trials: u64,
    /// Survivor rows reused from prior results during delta repair.
    pub reused_rows: u64,
    /// Total wall-clock milliseconds spent in tier-2 evaluation.
    pub millis: u64,
}
