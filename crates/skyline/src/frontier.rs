//! Pareto-skyline computation: O(n log n) sort-and-sweep frontiers.
//!
//! The DSE engine's original frontier was an O(n²) all-pairs dominance
//! scan — fine for the paper's ~10² candidates per airframe, hopeless for
//! the 10⁵–10⁶-candidate synthetic catalogs the ROADMAP targets. This
//! module provides the sort-based skyline the engine's
//! [`query`](crate::query) layer uses:
//!
//! * **2 objectives** — the classic sweep: sort lexicographically, keep a
//!   running minimum of the second key.
//! * **3 objectives** — sort by the first key and sweep a *staircase*
//!   (the running 2-D frontier of the remaining keys), maintained as a
//!   B-tree with O(log n) queries and amortized O(log n) inserts.
//! * **d ≥ 4 objectives** — a divide-and-conquer skyline: split the
//!   lexicographically sorted points in half, recurse, then strip the
//!   lex-later half's skyline of points dominated by the lex-earlier
//!   half's skyline with a dimension-reducing merge (Bentley's
//!   multidimensional divide and conquer), ~O(n·logᵈ⁻² n) instead of
//!   the old running-frontier fallback's O(n·f) — which survives as
//!   [`running_frontier_min`], the benchmarks' comparison arm.
//!
//! All functions use the **minimization** convention: a point dominates
//! another when it is ≤ in every key and < in at least one. Callers with
//! maximizing objectives (e.g. safe velocity) negate those keys. Ties and
//! exact duplicates are preserved exactly as the naive all-pairs scan
//! would keep them — duplicates do occur in real explorations (two
//! physics-bound algorithms on the same build share velocity, TDP and
//! payload) — and [`naive_pareto_min`] stays available as the reference
//! implementation for tests and benchmarks.
//!
//! Keys must be **finite**: NaN keys make the result unspecified (the
//! query layer filters non-finite outcomes before calling in, mirroring
//! the original engine's behavior). Negative zero is fine — keys are
//! normalized so `-0.0` and `+0.0` land in the same tie group, matching
//! the IEEE comparisons the naive scan uses.

use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Returns `true` when `a` dominates `b` under minimization: `a ≤ b` in
/// every key and `a < b` in at least one.
///
/// # Panics
///
/// Panics (debug) if the slices have different lengths.
#[must_use]
pub fn dominates_min(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

fn point_count(dims: usize, keys: &[f64]) -> usize {
    assert!(dims > 0, "need at least one objective");
    assert_eq!(
        keys.len() % dims,
        0,
        "key buffer length must be a multiple of the dimension count"
    );
    keys.len() / dims
}

/// Reference O(n²) all-pairs Pareto scan (minimization convention).
///
/// `keys` is row-major: point `i` occupies `keys[i*dims .. (i+1)*dims]`.
/// Returns the indices of non-dominated points in ascending order. Kept
/// public as the ground truth for property tests and the "old frontier"
/// arm of the DSE benchmarks.
///
/// # Panics
///
/// Panics if `dims == 0` or `keys.len()` is not a multiple of `dims`.
#[must_use]
pub fn naive_pareto_min(dims: usize, keys: &[f64]) -> Vec<usize> {
    let n = point_count(dims, keys);
    let row = |i: usize| &keys[i * dims..(i + 1) * dims];
    (0..n)
        .filter(|&i| !(0..n).any(|j| dominates_min(row(j), row(i))))
        .collect()
}

/// Sort-based Pareto skyline (minimization convention): O(n log n) for
/// 2–3 objectives, divide-and-conquer skyline for d ≥ 4.
///
/// `keys` is row-major: point `i` occupies `keys[i*dims .. (i+1)*dims]`.
/// Returns exactly the same index set as [`naive_pareto_min`], in
/// ascending order.
///
/// # Panics
///
/// Panics if `dims == 0` or `keys.len()` is not a multiple of `dims`.
#[must_use]
pub fn pareto_min(dims: usize, keys: &[f64]) -> Vec<usize> {
    let (keys, order) = match prepare(dims, keys) {
        Some(prepared) => prepared,
        None => return Vec::new(),
    };
    let keys = keys.as_slice();
    let mut survivors = match dims {
        1 => min_scan(&order, keys),
        2 => sweep2(&order, &|i| (keys[i * 2], keys[i * 2 + 1])),
        3 => sweep3(&order, keys),
        // Crossover dispatch: the divide-and-conquer skyline wins
        // asymptotically, but its recursion overhead grows with the
        // dimension — at 5+ objectives the running frontier is
        // measurably faster below a few thousand points
        // (BENCH_dse.json: ~123 µs vs ~221 µs at 10³ points), while at
        // 4 objectives d&c already wins by 10³.
        _ if dims >= 5 && order.len() <= DC_SMALL_N => running_frontier(dims, keys, &order),
        _ => dc_skyline(dims, keys, &order),
    };
    survivors.sort_unstable();
    survivors
}

/// Below this many points, 5+-objective inputs dispatch to the running
/// frontier instead of the divide-and-conquer skyline (measured
/// crossover; see [`pareto_min`]).
const DC_SMALL_N: usize = 2048;

/// The previous d ≥ 4 path: a lexicographic running frontier, worst case
/// O(n·f) for a frontier of size f. [`pareto_min`] now uses a
/// divide-and-conquer skyline instead; this stays public as the
/// comparison arm of the DSE benchmarks and a second reference
/// implementation (same contract as [`pareto_min`]).
///
/// # Panics
///
/// Panics if `dims == 0` or `keys.len()` is not a multiple of `dims`.
#[must_use]
pub fn running_frontier_min(dims: usize, keys: &[f64]) -> Vec<usize> {
    let (keys, order) = match prepare(dims, keys) {
        Some(prepared) => prepared,
        None => return Vec::new(),
    };
    let mut survivors = running_frontier(dims, &keys, &order);
    survivors.sort_unstable();
    survivors
}

/// The shared skyline preamble: validates the buffer, normalizes
/// `-0.0` to `+0.0`, and computes the lexicographic order. `None` for
/// an empty input.
///
/// The normalization is correctness-critical for every algorithm
/// downstream: the sorts split tie groups with `total_cmp`, under which
/// `-0.0 < +0.0`, while dominance (and the naive scan) uses IEEE
/// comparisons where they are equal — without it a total_cmp-lex-later
/// point could still dominate an earlier one (e.g. `[+0.0, 1]` vs
/// `[-0.0, 2]`), breaking the sorted-order invariants. `x + 0.0` maps
/// `-0.0` to `+0.0` and is the identity on every other value.
fn prepare(dims: usize, keys: &[f64]) -> Option<(Vec<f64>, Vec<usize>)> {
    let n = point_count(dims, keys);
    if n == 0 {
        return None;
    }
    let keys: Vec<f64> = keys.iter().map(|v| v + 0.0).collect();
    let order = lex_order(dims, &keys, n);
    Some((keys, order))
}

/// Indices `0..n` sorted lexicographically over all keys, index order
/// for fully tied points, so every routine downstream is deterministic.
/// The explicit index tiebreak makes the unstable sort equivalent to a
/// stable one while skipping the stable sort's scratch allocation —
/// this sort runs once per skyline call and dominates small-frontier
/// inputs, so the constant factor matters (the sharded streaming
/// executor calls it per shard).
fn lex_order(dims: usize, keys: &[f64], n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (
            &keys[a * dims..(a + 1) * dims],
            &keys[b * dims..(b + 1) * dims],
        );
        for (x, y) in pa.iter().zip(pb) {
            match x.total_cmp(y) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        a.cmp(&b)
    });
    order
}

/// 1-D frontier: every point tied at the minimum key.
fn min_scan(order: &[usize], keys: &[f64]) -> Vec<usize> {
    let min = keys[order[0]];
    order
        .iter()
        .copied()
        .take_while(|&i| keys[i].total_cmp(&min) == Ordering::Equal)
        .collect()
}

/// 2-D sweep over indices pre-sorted lexicographically by `key`.
///
/// Walks groups of equal first key in ascending order, tracking the best
/// (minimum) second key seen in *strictly earlier* groups. Within a
/// group, only the points tied at the group's minimum second key can
/// survive (anything above is strictly dominated inside the group), and
/// they do survive exactly when that minimum beats every earlier group.
///
/// Also the in-group engine of the 3-D sweep, which is why it takes an
/// index slice rather than a raw buffer.
fn sweep2(order: &[usize], key: &dyn Fn(usize) -> (f64, f64)) -> Vec<usize> {
    let mut out = Vec::new();
    let mut best: Option<f64> = None;
    let mut start = 0;
    while start < order.len() {
        let (a, group_min) = key(order[start]);
        let mut end = start;
        while end < order.len() && key(order[end]).0.total_cmp(&a) == Ordering::Equal {
            end += 1;
        }
        if best.map_or(true, |b| group_min < b) {
            out.extend(
                order[start..end]
                    .iter()
                    .copied()
                    .take_while(|&i| key(i).1.total_cmp(&group_min) == Ordering::Equal),
            );
        }
        best = Some(best.map_or(group_min, |b| b.min(group_min)));
        start = end;
    }
    out
}

/// A totally ordered f64 (via `total_cmp`) for use as a B-tree key.
#[derive(Debug, Clone, Copy)]
struct Key(f64);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A staircase: 2-D running frontier over `(b, c)` pairs, held as a
/// B-tree map from `b` to the smallest `c` seen at that `b`, with `c`
/// strictly descending as `b` ascends. Membership means "some point in
/// an earlier first-key group had these trailing keys", so weak (≤, ≤)
/// coverage is full dominance — the first key is already strict.
///
/// Queries are O(log f); inserts are amortized O(log f) because every
/// step a new one covers is removed exactly once over the sweep's
/// lifetime (this is why the structure is a B-tree rather than a sorted
/// `Vec`, whose front inserts would memmove O(f) elements and turn
/// anti-correlated inputs quadratic).
struct Staircase {
    steps: BTreeMap<Key, f64>,
}

impl Staircase {
    fn new() -> Self {
        Self {
            steps: BTreeMap::new(),
        }
    }

    /// Is `(b, c)` weakly covered by an existing step?
    fn covers(&self, b: f64, c: f64) -> bool {
        // c descends as b ascends, so among the steps with step.b ≤ b
        // the rightmost has the smallest c.
        self.steps
            .range(..=Key(b))
            .next_back()
            .is_some_and(|(_, &step_c)| step_c <= c)
    }

    /// Inserts `(b, c)`, dropping any steps it covers.
    fn insert(&mut self, b: f64, c: f64) {
        if self.covers(b, c) {
            return;
        }
        // Steps at b' ≥ b with c' ≥ c are now covered; by the descending-c
        // invariant they form a contiguous run starting at b.
        let covered: Vec<Key> = self
            .steps
            .range(Key(b)..)
            .take_while(|(_, &step_c)| step_c >= c)
            .map(|(&key, _)| key)
            .collect();
        for key in covered {
            self.steps.remove(&key);
        }
        self.steps.insert(Key(b), c);
    }
}

/// 3-D sweep: groups of equal first key in ascending order, tested
/// against the staircase of all earlier groups, then 2-D-swept within
/// the group (equal first keys dominate on the trailing pair alone).
/// Each surviving point is inserted into the staircase *after* its whole
/// group is processed, so equal-first-key points never dominate each
/// other through it. Dominance is transitive, so testing the in-group
/// sweep only on staircase survivors loses nothing.
fn sweep3(order: &[usize], keys: &[f64]) -> Vec<usize> {
    let k = |i: usize, d: usize| keys[i * 3 + d];
    let mut out = Vec::new();
    let mut stair = Staircase::new();
    let mut start = 0;
    while start < order.len() {
        let a = k(order[start], 0);
        let mut end = start;
        while end < order.len() && k(order[end], 0).total_cmp(&a) == Ordering::Equal {
            end += 1;
        }
        let undominated: Vec<usize> = order[start..end]
            .iter()
            .copied()
            .filter(|&i| !stair.covers(k(i, 1), k(i, 2)))
            .collect();
        // `undominated` inherits the (k1, k2, index) lexicographic order
        // the group was sorted in, which is what sweep2 requires.
        let survivors = sweep2(&undominated, &|i| (k(i, 1), k(i, 2)));
        for &i in &survivors {
            stair.insert(k(i, 1), k(i, 2));
        }
        out.extend_from_slice(&survivors);
        start = end;
    }
    out
}

/// d-dimensional fallback: after a lexicographic sort a later point can
/// never dominate an earlier one (componentwise ≤ plus lexicographic ≥
/// forces equality), so the frontier only grows — each point is checked
/// against it once. Frontier members are probed newest-first: a point's
/// dominator tends to be a lexicographically close predecessor, so the
/// reverse probe usually exits after a handful of checks.
fn running_frontier(dims: usize, keys: &[f64], order: &[usize]) -> Vec<usize> {
    let row = |i: usize| &keys[i * dims..(i + 1) * dims];
    let mut front: Vec<usize> = Vec::new();
    for &i in order {
        if !front.iter().rev().any(|&j| dominates_min(row(j), row(i))) {
            front.push(i);
        }
    }
    front
}

/// Below this many points a subproblem is solved by the running
/// frontier directly — recursion overhead beats O(n·f) only once n·f
/// can actually grow.
const DC_BASE: usize = 64;

/// Below this many candidate pairs the cross-filter tests dominance
/// pairwise instead of partitioning further.
const DC_PAIRWISE: usize = 512;

/// d ≥ 4 divide-and-conquer skyline over a lexicographically sorted
/// index slice (Bentley's multidimensional divide and conquer).
///
/// Split the sorted points at the midpoint into a lex-earlier half `A`
/// and a lex-later half `B`. No point of `B` can dominate a point of
/// `A` (componentwise ≤ plus lexicographically ≥ forces equality, and
/// equals never dominate), so
/// `skyline(S) = skyline(A) ∪ filter(skyline(B) vs skyline(A))`
/// where the filter removes `B`-skyline points dominated by an
/// `A`-skyline point — dominance is transitive, so testing against the
/// skyline loses nothing. The filter recurses on one coordinate at a
/// time ([`filter_dominated`]), giving ~O(n·logᵈ⁻² n) overall.
///
/// Returns survivors in input (lexicographic) order.
fn dc_skyline(dims: usize, keys: &[f64], order: &[usize]) -> Vec<usize> {
    if order.len() <= DC_BASE {
        return running_frontier(dims, keys, order);
    }
    let mid = order.len() / 2;
    let mut left = dc_skyline(dims, keys, &order[..mid]);
    let right = dc_skyline(dims, keys, &order[mid..]);
    let right = cross_filter(dims, keys, &left, right);
    left.extend(right);
    left
}

/// Removes from `b` (the lex-later half's skyline) every point dominated
/// by a point of `a` (the lex-earlier half's skyline), preserving order.
fn cross_filter(dims: usize, keys: &[f64], a: &[usize], b: Vec<usize>) -> Vec<usize> {
    let mut dead = vec![false; b.len()];
    let positions: Vec<u32> = (0..b.len() as u32).collect();
    filter_dominated(dims, keys, &b, &mut dead, a.to_vec(), positions, dims);
    b.into_iter()
        .zip(dead)
        .filter_map(|(i, dead)| (!dead).then_some(i))
        .collect()
}

/// The cross-filter's dimension-reducing recursion: marks `dead[p]` for
/// every position `p` (into `b_ids`) whose point is dominated by some
/// point of `a`.
///
/// `d` counts the leading coordinates still unverified; the recursion
/// maintains the invariant that every (a, b) pair in the current
/// subproblem is already weakly ≤ on all coordinates `>= d`. Each step
/// partitions both sets around a pivot of coordinate `d − 1`:
/// strictly-smaller `a`s versus weakly-larger `b`s have that coordinate
/// settled (strictly, even) and descend with `d − 1`; the two same-side
/// quadrants keep `d` but strictly shrink; the remaining quadrant
/// (larger `a`, smaller `b`) can never dominate and is skipped — this
/// pruning is the entire speedup. Elimination itself only ever happens
/// in the leaves via the exact predicate ([`dominates_min`], or the
/// exact-duplicate rule at `d == 0`), so ties and duplicates behave
/// precisely as in [`naive_pareto_min`].
fn filter_dominated(
    dims: usize,
    keys: &[f64],
    b_ids: &[usize],
    dead: &mut [bool],
    a: Vec<usize>,
    b: Vec<u32>,
    d: usize,
) {
    let row = |i: usize| &keys[i * dims..(i + 1) * dims];
    // Skip positions already killed on an earlier recursion path.
    let b: Vec<u32> = b.into_iter().filter(|&p| !dead[p as usize]).collect();
    if a.is_empty() || b.is_empty() {
        return;
    }
    if d == 0 {
        // Every pair is weakly ≤ on every coordinate, so a `b` point
        // survives only when it is an exact duplicate of every `a`
        // point (equals never dominate).
        for &bp in &b {
            let brow = row(b_ids[bp as usize]);
            if a.iter().any(|&ai| row(ai) != brow) {
                dead[bp as usize] = true;
            }
        }
        return;
    }
    if a.len() * b.len() <= DC_PAIRWISE {
        eliminate_pairwise(dims, keys, b_ids, dead, &a, &b);
        return;
    }
    let c = d - 1;
    let ak = |i: usize| keys[i * dims + c];
    let bk = |p: u32| keys[b_ids[p as usize] * dims + c];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for v in a.iter().map(|&i| ak(i)).chain(b.iter().map(|&p| bk(p))) {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo == hi {
        // No spread: coordinate c is weakly ≤ (equal) for every pair.
        filter_dominated(dims, keys, b_ids, dead, a, b, c);
        return;
    }
    // Median pivot, nudged above the minimum so both sides shrink.
    let mut vals: Vec<f64> = a
        .iter()
        .map(|&i| ak(i))
        .chain(b.iter().map(|&p| bk(p)))
        .collect();
    let mid = vals.len() / 2;
    vals.select_nth_unstable_by(mid, f64::total_cmp);
    let mut pivot = vals[mid];
    if pivot == lo {
        pivot = vals
            .iter()
            .copied()
            .filter(|&v| v > lo)
            .fold(f64::INFINITY, f64::min);
    }
    let (a_lo, a_hi): (Vec<usize>, Vec<usize>) = a.iter().partition(|&&i| ak(i) < pivot);
    let (b_lo, b_hi): (Vec<u32>, Vec<u32>) = b.iter().partition(|&&p| bk(p) < pivot);
    if (a_lo.is_empty() && b_lo.is_empty()) || (a_hi.is_empty() && b_hi.is_empty()) {
        // Degenerate pivot: with finite keys both sides always shrink,
        // but NaN keys (unspecified per the module contract) compare
        // false against any pivot and would otherwise recurse forever.
        // Resolve the whole subproblem with the exact pairwise
        // predicate instead — never crash.
        eliminate_pairwise(dims, keys, b_ids, dead, &a, &b);
        return;
    }
    // a_lo < pivot ≤ b_hi: coordinate c is strictly settled — drop a dim.
    filter_dominated(dims, keys, b_ids, dead, a_lo.clone(), b_hi.clone(), c);
    filter_dominated(dims, keys, b_ids, dead, a_lo, b_lo, d);
    // a_hi can never dominate b_lo (strictly larger on coordinate c).
    filter_dominated(dims, keys, b_ids, dead, a_hi, b_hi, d);
}

/// The cross-filter's exact leaf: marks dead every `b` position whose
/// point is dominated (full predicate, all `dims` coordinates) by some
/// `a` point. Shared by the small-subproblem cutoff and the
/// degenerate-pivot fallback of [`filter_dominated`].
fn eliminate_pairwise(
    dims: usize,
    keys: &[f64],
    b_ids: &[usize],
    dead: &mut [bool],
    a: &[usize],
    b: &[u32],
) {
    let row = |i: usize| &keys[i * dims..(i + 1) * dims];
    for &bp in b {
        let brow = row(b_ids[bp as usize]);
        if a.iter().any(|&ai| dominates_min(row(ai), brow)) {
            dead[bp as usize] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn grid_points(seed: u64, n: usize, dims: usize, grid: u32) -> Vec<f64> {
        // Coarse integer grids force heavy ties and exact duplicates —
        // the cases where sweep bookkeeping can drift from the naive scan.
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n * dims)
            .map(|_| f64::from(rng.gen_range(0u32..grid)))
            .collect()
    }

    /// The divide-and-conquer path directly, bypassing `pareto_min`'s
    /// small-n crossover dispatch, so property tests exercise it at
    /// every size and dimension.
    fn dc_direct(dims: usize, keys: &[f64]) -> Vec<usize> {
        let (keys, order) = prepare(dims, keys).expect("non-empty input");
        let mut survivors = dc_skyline(dims, &keys, &order);
        survivors.sort_unstable();
        survivors
    }

    #[test]
    fn empty_and_singleton() {
        for dims in 1..=5 {
            assert!(pareto_min(dims, &[]).is_empty());
        }
        assert_eq!(pareto_min(3, &[1.0, 2.0, 3.0]), vec![0]);
    }

    #[test]
    fn duplicates_all_survive() {
        // Exact duplicates never dominate each other; all copies stay.
        let keys = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 3.0, 0.5];
        assert_eq!(pareto_min(2, &keys), vec![0, 1, 2, 3]);
        assert_eq!(naive_pareto_min(2, &keys), vec![0, 1, 2, 3]);
    }

    #[test]
    fn simple_2d_staircase() {
        // (0,3) (1,1) (3,0) frontier; (2,2) dominated by (1,1).
        let keys = [0.0, 3.0, 1.0, 1.0, 2.0, 2.0, 3.0, 0.0];
        assert_eq!(pareto_min(2, &keys), vec![0, 1, 3]);
    }

    #[test]
    fn one_dim_keeps_all_minima() {
        let keys = [3.0, 1.0, 2.0, 1.0, 1.0];
        assert_eq!(pareto_min(1, &keys), vec![1, 3, 4]);
        assert_eq!(naive_pareto_min(1, &keys), vec![1, 3, 4]);
    }

    #[test]
    fn equal_first_key_groups_dominate_within_group() {
        // Same first key: (5,1,9) dominates (5,2,9); (5,1,9) survives.
        let keys = [5.0, 1.0, 9.0, 5.0, 2.0, 9.0];
        assert_eq!(pareto_min(3, &keys), vec![0]);
    }

    #[test]
    fn matches_naive_on_random_grids() {
        for dims in 1..=5 {
            for seed in 0..40u64 {
                for &grid in &[2u32, 3, 5, 17] {
                    let n = 1 + (seed as usize * 7 + dims) % 90;
                    let keys = grid_points(seed * 31 + dims as u64, n, dims, grid);
                    assert_eq!(
                        pareto_min(dims, &keys),
                        naive_pareto_min(dims, &keys),
                        "dims {dims} seed {seed} grid {grid}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_naive_on_continuous_points() {
        let mut rng = StdRng::seed_from_u64(7);
        for dims in 2..=4 {
            for _ in 0..20 {
                let n = rng.gen_range(1usize..200);
                let keys: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(-5.0..5.0)).collect();
                assert_eq!(pareto_min(dims, &keys), naive_pareto_min(dims, &keys));
            }
        }
    }

    #[test]
    fn large_3d_frontier_is_fast_and_correct_on_sample() {
        // 20k anti-correlated points (worst-ish case: big frontier); spot
        // check the sweep's frontier against the dominance predicate.
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let keys: Vec<f64> = (0..n)
            .flat_map(|_| {
                let a = rng.gen_range(0.0..1.0);
                let b = rng.gen_range(0.0..1.0);
                [a, b, 2.0 - a - b + rng.gen_range(0.0..0.01)]
            })
            .collect();
        let front = pareto_min(3, &keys);
        assert!(!front.is_empty());
        let row = |i: usize| &keys[i * 3..i * 3 + 3];
        for &i in front.iter().step_by(97) {
            for j in 0..n {
                assert!(!dominates_min(row(j), row(i)));
            }
        }
    }

    #[test]
    fn negative_zero_ties_with_positive_zero() {
        // -0.0 and +0.0 are IEEE-equal, so neither point dominates the
        // other and both stay — even though total_cmp orders them.
        let keys = [-0.0, 5.0, 0.0, 5.0];
        assert_eq!(pareto_min(2, &keys), vec![0, 1]);
        assert_eq!(naive_pareto_min(2, &keys), vec![0, 1]);
        let keys3 = [1.0, -0.0, 2.0, 1.0, 0.0, 2.0];
        assert_eq!(pareto_min(3, &keys3), naive_pareto_min(3, &keys3));
    }

    #[test]
    fn anti_correlated_staircase_inserts_stay_fast() {
        // Every point is on the frontier and every staircase insert
        // lands at the front — the case a sorted-Vec staircase turns
        // quadratic on. 200k points must finish promptly (the B-tree
        // makes this ~n log n; a memmove staircase would do ~2·10¹⁰
        // element moves here).
        let n = 200_000;
        let keys: Vec<f64> = (0..n)
            .flat_map(|i| {
                let x = i as f64;
                [x, (n - i) as f64, x]
            })
            .collect();
        let front = pareto_min(3, &keys);
        assert_eq!(front.len(), n);
    }

    #[test]
    fn dc_matches_naive_on_large_lattices() {
        // Tie-heavy integer grids at 4 and 5 objectives, big enough to
        // exercise the divide-and-conquer recursion (base case is 64
        // points) and the dimension-reducing cross-filter.
        for dims in [4usize, 5] {
            for (seed, grid) in [(11u64, 3u32), (12, 5), (13, 9), (14, 17)] {
                let n = 600 + seed as usize * 37;
                let keys = grid_points(seed * 101 + dims as u64, n, dims, grid);
                let expected = naive_pareto_min(dims, &keys);
                assert_eq!(
                    pareto_min(dims, &keys),
                    expected,
                    "dims {dims} seed {seed} grid {grid}"
                );
                assert_eq!(
                    dc_direct(dims, &keys),
                    expected,
                    "d&c dims {dims} seed {seed} grid {grid}"
                );
                assert_eq!(
                    running_frontier_min(dims, &keys),
                    expected,
                    "running frontier dims {dims} seed {seed} grid {grid}"
                );
            }
        }
    }

    #[test]
    fn dc_matches_naive_on_large_continuous_sets() {
        let mut rng = StdRng::seed_from_u64(4242);
        for dims in [4usize, 5] {
            for _ in 0..6 {
                let n = rng.gen_range(300usize..1200);
                let keys: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(-5.0..5.0)).collect();
                let expected = naive_pareto_min(dims, &keys);
                assert_eq!(pareto_min(dims, &keys), expected, "dims {dims} n {n}");
                assert_eq!(dc_direct(dims, &keys), expected, "d&c dims {dims} n {n}");
                assert_eq!(running_frontier_min(dims, &keys), expected);
            }
        }
    }

    #[test]
    fn dc_keeps_duplicates_split_across_halves() {
        // Hundreds of exact copies of one frontier point, interleaved
        // with dominated points: the position split lands copies in both
        // recursion halves, and the cross-filter must not let one copy
        // kill another (equals never dominate).
        let mut keys = Vec::new();
        for i in 0..400 {
            if i % 2 == 0 {
                keys.extend([1.0, 1.0, 1.0, 1.0]);
            } else {
                keys.extend([2.0, 2.0, 2.0, 1.0 + f64::from(i)]);
            }
        }
        let front = pareto_min(4, &keys);
        let expected: Vec<usize> = (0..400).step_by(2).collect();
        assert_eq!(front, expected);
        assert_eq!(naive_pareto_min(4, &keys), expected);
    }

    #[test]
    fn nan_keys_do_not_crash_the_dc_skyline() {
        // NaN keys are contractually unspecified, but they must never
        // crash: a NaN coordinate defeats every pivot comparison, and
        // without the degenerate-pivot fallback the cross-filter would
        // recurse forever (stack overflow). On all-NaN duplicates the
        // result even matches the naive scan: nothing dominates, all
        // points survive.
        let n = 200;
        let keys: Vec<f64> = (0..n).flat_map(|_| [f64::NAN, 1.0, 1.0, 1.0]).collect();
        let front = pareto_min(4, &keys);
        assert_eq!(front, naive_pareto_min(4, &keys));
        assert_eq!(front.len(), n);
    }

    #[test]
    fn dc_handles_large_anti_correlated_4d_sets() {
        // Everything on (or near) the frontier — the worst case for the
        // old O(n·f) running frontier. 30k points must finish promptly;
        // spot-check survivors against the dominance predicate.
        let mut rng = StdRng::seed_from_u64(7177);
        let n = 30_000;
        let keys: Vec<f64> = (0..n)
            .flat_map(|_| {
                let a = rng.gen_range(0.0..1.0);
                let b = rng.gen_range(0.0..1.0);
                let c = rng.gen_range(0.0..1.0);
                [a, b, c, 3.0 - a - b - c + rng.gen_range(0.0..0.01)]
            })
            .collect();
        let front = pareto_min(4, &keys);
        assert!(!front.is_empty());
        let row = |i: usize| &keys[i * 4..i * 4 + 4];
        for &i in front.iter().step_by(211) {
            for j in 0..n {
                assert!(!dominates_min(row(j), row(i)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple of the dimension count")]
    fn ragged_buffer_rejected() {
        let _ = pareto_min(3, &[1.0, 2.0]);
    }
}
