//! Modular-redundancy what-ifs (paper §VI-C).
//!
//! Adding a second (or N-th) onboard computer increases reliability via
//! voting but adds its fielded mass *and* its heatsink mass, lowering
//! `a_max` and with it the roofline. Throughput does not improve: replicas
//! compute the same answer.

use f1_units::MetersPerSecond;

use crate::system::UavSystem;
use crate::SkylineError;

/// Result of a redundancy characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct RedundancyStudy {
    /// Replication factor (1 = baseline).
    pub replicas: usize,
    /// The redundant system.
    pub system: UavSystem,
    /// The baseline (single-computer) roof.
    pub baseline_roof: MetersPerSecond,
    /// The redundant system's roof.
    pub redundant_roof: MetersPerSecond,
}

impl RedundancyStudy {
    /// Fractional velocity loss versus baseline, in `[0, 1)`.
    #[must_use]
    pub fn velocity_loss(&self) -> f64 {
        1.0 - self.redundant_roof.get() / self.baseline_roof.get()
    }
}

/// Builds the N-modular-redundant variant of a system by replicating its
/// first onboard computer `replicas` times in total.
///
/// # Errors
///
/// Returns an error for `replicas == 0`, or [`SkylineError::CannotHover`]
/// if the replicated payload exceeds the thrust budget.
pub fn with_modular_redundancy(
    system: &UavSystem,
    replicas: usize,
) -> Result<RedundancyStudy, SkylineError> {
    if replicas == 0 {
        return Err(SkylineError::Model(f1_model::ModelError::OutOfDomain {
            parameter: "replicas",
            value: 0.0,
            expected: ">= 1",
        }));
    }
    let baseline_roof = system.roofline()?.roof();
    let primary = system.computes()[0].clone();
    let mut redundant = system.clone();
    redundant.rename(format!("{} ({}x redundant)", system.name(), replicas));
    for _ in system.computes().len()..replicas {
        redundant.push_compute(primary.clone());
    }
    let redundant_roof = redundant.roofline()?.roof();
    Ok(RedundancyStudy {
        replicas,
        system: redundant,
        baseline_roof,
        redundant_roof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::{names, Catalog};

    fn pelican_tx2() -> UavSystem {
        UavSystem::from_catalog(
            &Catalog::paper(),
            names::ASCTEC_PELICAN,
            names::RGBD_60,
            names::TX2,
            names::DRONET,
        )
        .unwrap()
    }

    #[test]
    fn dual_redundancy_lowers_roof() {
        // §VI-C: dual TX2 reduces safe velocity ~33 % on the Pelican.
        let study = with_modular_redundancy(&pelican_tx2(), 2).unwrap();
        assert_eq!(study.system.computes().len(), 2);
        let loss = study.velocity_loss();
        assert!(loss > 0.03 && loss < 0.5, "loss = {loss}");
        assert!(study.redundant_roof < study.baseline_roof);
    }

    #[test]
    fn triple_redundancy_lowers_more() {
        let dual = with_modular_redundancy(&pelican_tx2(), 2).unwrap();
        let triple = with_modular_redundancy(&pelican_tx2(), 3).unwrap();
        assert!(triple.velocity_loss() > dual.velocity_loss());
        assert_eq!(triple.system.computes().len(), 3);
    }

    #[test]
    fn single_replica_is_identity() {
        let study = with_modular_redundancy(&pelican_tx2(), 1).unwrap();
        assert!((study.velocity_loss()).abs() < 1e-12);
    }

    #[test]
    fn zero_replicas_rejected() {
        assert!(with_modular_redundancy(&pelican_tx2(), 0).is_err());
    }

    #[test]
    fn throughput_unchanged_by_redundancy() {
        let base = pelican_tx2();
        let study = with_modular_redundancy(&base, 2).unwrap();
        assert_eq!(study.system.compute_throughput(), base.compute_throughput());
    }

    #[test]
    fn excessive_redundancy_cannot_hover() {
        let study = with_modular_redundancy(&pelican_tx2(), 40);
        assert!(matches!(study, Err(SkylineError::CannotHover { .. })));
    }
}
