//! A crossbeam-parallel parameter sweep engine.
//!
//! Skyline's characterization studies evaluate the model across hundreds of
//! configurations (payload sweeps for Fig. 9, the full platform × algorithm
//! × UAV matrix for Fig. 15, TDP sweeps for Fig. 12), and the DSE query
//! layer pushes the same engine to 10⁵–10⁶ candidates over synthesized
//! catalogs. Evaluations are independent, so they parallelize trivially;
//! this module provides an order-preserving parallel map built on scoped
//! threads.
//!
//! The core is **buffer-writing**: the output vector is preallocated and
//! split into chunk-disjoint `&mut` slices, workers claim chunk indices
//! from a shared atomic cursor and write each result straight into its
//! slot. Nothing is sent over a channel and nothing is re-sorted
//! afterwards — input order *is* output order by construction.
//!
//! Chunk sizes are derived from the job count and the available
//! parallelism by [`auto_chunk_size`] unless the caller pins one
//! explicitly (e.g. via `Engine::with_chunk_size`).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.max(1))
}

/// How many chunks per worker [`auto_chunk_size`] aims for. More chunks
/// than workers is what makes work-stealing effective: a worker stuck on
/// an expensive chunk strands at most `1/AUTO_CHUNKS_PER_WORKER` of its
/// fair share behind it.
const AUTO_CHUNKS_PER_WORKER: usize = 8;

/// Upper bound on an autotuned chunk. Past this, bigger chunks stop
/// saving measurable scheduling overhead (one atomic claim per chunk)
/// and only worsen tail imbalance on huge job counts.
const AUTO_MAX_CHUNK: usize = 4096;

/// Derives a work-stealing chunk size from the job count and the
/// machine's available parallelism.
///
/// Targets eight chunks per worker — enough granularity for stealing
/// to smooth uneven per-job cost — clamped to `1..=4096` so tiny
/// workloads still split and huge ones don't degenerate into a handful
/// of giant chunks.
#[must_use]
pub fn auto_chunk_size(jobs: usize) -> usize {
    let workers = worker_count(jobs);
    (jobs / (workers * AUTO_CHUNKS_PER_WORKER).max(1)).clamp(1, AUTO_MAX_CHUNK)
}

/// Applies `f` to every input on a pool of scoped worker threads,
/// preserving input order in the output.
///
/// Inputs are split into one contiguous chunk per worker. For workloads
/// with very uneven per-item cost, prefer [`parallel_map_chunked`] with a
/// small chunk size so idle workers can steal remaining chunks.
///
/// Falls back to a sequential map for tiny workloads (< 2 items or a
/// single available core).
///
/// # Panics
///
/// Propagates panics from `f` (the worker's panic aborts the scope).
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk_size = inputs.len().div_ceil(worker_count(inputs.len())).max(1);
    parallel_map_chunked(inputs, chunk_size, f)
}

/// Applies `f` to every input in work-stealing-friendly chunks of
/// `chunk_size`, preserving input order in the output.
///
/// Workers self-schedule: each repeatedly claims the next unprocessed
/// chunk from a shared atomic cursor and writes results **in place**
/// into that chunk's preallocated slice of the output buffer, so a
/// worker stuck on an expensive chunk never strands cheap ones behind
/// it, and no per-item channel traffic or output re-sort happens at any
/// scale.
///
/// Use [`auto_chunk_size`] to derive `chunk_size` from the workload
/// unless a caller has pinned an explicit override.
///
/// # Panics
///
/// Panics if `chunk_size == 0`; propagates the first panic from `f`
/// (remaining workers stop claiming chunks and no partial output is
/// ever returned).
pub fn parallel_map_chunked<T, R, F>(inputs: Vec<T>, chunk_size: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indices(inputs.len(), chunk_size, |i| f(&inputs[i]))
}

/// [`parallel_map_chunked`] over the index range `0..count`, without
/// materializing an input vector — the evaluation engine under the DSE
/// hot loop, whose jobs are plain indices into a nested enumeration.
///
/// # Panics
///
/// Same contract as [`parallel_map_chunked`].
pub fn parallel_map_indices<R, F>(count: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let chunks = count.div_ceil(chunk_size);
    let workers = worker_count(count).min(chunks.max(1));
    if workers <= 1 || count < 2 {
        return (0..count).map(f).collect();
    }

    // Preallocate the output and hand it out as chunk-disjoint `&mut`
    // slices. The atomic cursor gives each chunk index to exactly one
    // worker; the per-chunk mutex converts that runtime exclusivity
    // into the `&mut` borrow the compiler requires, and is locked at
    // most once per chunk — never contended.
    let mut out: Vec<Option<R>> = Vec::with_capacity(count);
    out.resize_with(count, || None);
    let slots: Vec<Mutex<&mut [Option<R>]>> = out.chunks_mut(chunk_size).map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let (f, slots, cursor, poisoned) = (&f, &slots, &cursor, &poisoned);
            scope.spawn(move |_| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                if chunk >= slots.len() || poisoned.load(Ordering::Relaxed) {
                    break;
                }
                let mut slot = slots[chunk]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let start = chunk * chunk_size;
                let filled = catch_unwind(AssertUnwindSafe(|| {
                    for (offset, slot) in slot.iter_mut().enumerate() {
                        *slot = Some(f(start + offset));
                    }
                }));
                if let Err(payload) = filled {
                    // Fail fast: stop the other workers from claiming
                    // further chunks, then let the scope re-raise the
                    // original panic in the caller.
                    poisoned.store(true, Ordering::Relaxed);
                    resume_unwind(payload);
                }
            });
        }
    })
    .expect("sweep worker panicked");
    drop(slots);
    out.into_iter()
        .map(|slot| slot.expect("cursor hands every chunk to exactly one worker"))
        .collect()
}

/// A single point of a one-dimensional sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint<R> {
    /// The swept parameter value.
    pub input: f64,
    /// The evaluation result at that value.
    pub output: R,
}

/// Sweeps a closure over `n` evenly-spaced values in `[lo, hi]`
/// (inclusive), in parallel.
///
/// # Panics
///
/// Panics if `n < 2` or the interval is not ordered.
pub fn sweep_linear<R, F>(lo: f64, hi: f64, n: usize, f: F) -> Vec<SweepPoint<R>>
where
    R: Send,
    F: Fn(f64) -> R + Sync,
{
    assert!(n >= 2, "need at least two sweep points");
    assert!(lo < hi, "sweep interval must be ordered");
    let inputs: Vec<f64> = (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect();
    let outputs = parallel_map(inputs.clone(), |x| f(*x));
    inputs
        .into_iter()
        .zip(outputs)
        .map(|(input, output)| SweepPoint { input, output })
        .collect()
}

/// Sweeps a closure over `n` log-spaced values in `[lo, hi]` (inclusive),
/// in parallel.
///
/// # Panics
///
/// Panics if `n < 2` or the interval is not positive and ordered.
pub fn sweep_log<R, F>(lo: f64, hi: f64, n: usize, f: F) -> Vec<SweepPoint<R>>
where
    R: Send,
    F: Fn(f64) -> R + Sync,
{
    assert!(n >= 2, "need at least two sweep points");
    assert!(
        lo > 0.0 && lo < hi,
        "log sweep interval must be positive and ordered"
    );
    let (l0, l1) = (lo.ln(), hi.ln());
    let inputs: Vec<f64> = (0..n)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp())
        .collect();
    let outputs = parallel_map(inputs.clone(), |x| f(*x));
    inputs
        .into_iter()
        .zip(outputs)
        .map(|(input, output)| SweepPoint { input, output })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<i64> = (0..500).collect();
        let out = parallel_map(inputs, |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as i64 * 2);
        }
    }

    #[test]
    fn parallel_map_runs_every_input_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..200).collect::<Vec<_>>(), |_| {
            counter.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(out.len(), 200);
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn chunked_map_preserves_order_for_all_chunk_sizes() {
        let inputs: Vec<i64> = (0..97).collect();
        for chunk_size in [1, 2, 3, 16, 97, 500] {
            let out = parallel_map_chunked(inputs.clone(), chunk_size, |x| x * 3);
            assert_eq!(out.len(), 97, "chunk_size {chunk_size}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as i64 * 3, "chunk_size {chunk_size}");
            }
        }
    }

    #[test]
    fn chunked_map_runs_every_input_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_chunked((0..300).collect::<Vec<_>>(), 7, |_| {
            counter.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(out.len(), 300);
        assert_eq!(counter.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn chunked_map_moves_non_copy_results_out_intact() {
        // The buffer-writing core must hand every owned result back
        // exactly once (a dropped or duplicated slot would corrupt or
        // lose heap data).
        let inputs: Vec<usize> = (0..250).collect();
        let out = parallel_map_chunked(inputs, 9, |&i| vec![i; 3]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, vec![i; 3]);
        }
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = parallel_map_chunked(vec![1, 2, 3], 0, |x| *x);
    }

    #[test]
    fn indexed_map_matches_input_map() {
        let inputs: Vec<i64> = (0..311).collect();
        let by_input = parallel_map_chunked(inputs, 13, |x| x * 5);
        let by_index = parallel_map_indices(311, 13, |i| i as i64 * 5);
        assert_eq!(by_input, by_index);
        assert_eq!(parallel_map_indices(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map_indices(1, 4, |i| i + 9), vec![9]);
    }

    #[test]
    fn tiny_inputs_work() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |x| *x), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn auto_chunk_size_stays_in_bounds() {
        assert_eq!(auto_chunk_size(0), 1);
        assert_eq!(auto_chunk_size(1), 1);
        for jobs in [10usize, 1_000, 100_000, 1_000_000, 10_000_000] {
            let chunk = auto_chunk_size(jobs);
            assert!((1..=4096).contains(&chunk), "jobs {jobs} chunk {chunk}");
            // Enough chunks for stealing whenever the workload allows it.
            let workers = worker_count(jobs);
            if jobs >= workers * AUTO_CHUNKS_PER_WORKER && chunk < AUTO_MAX_CHUNK {
                assert!(
                    jobs.div_ceil(chunk) >= workers * AUTO_CHUNKS_PER_WORKER,
                    "jobs {jobs} chunk {chunk}"
                );
            }
        }
    }

    #[test]
    fn auto_chunk_size_grows_with_job_count() {
        let small = auto_chunk_size(1_000);
        let large = auto_chunk_size(1_000_000);
        assert!(large >= small);
    }

    #[test]
    fn linear_sweep_endpoints_and_spacing() {
        let pts = sweep_linear(0.0, 10.0, 11, |x| x * x);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].input, 0.0);
        assert_eq!(pts[10].input, 10.0);
        assert_eq!(pts[3].output, 9.0);
        for w in pts.windows(2) {
            assert!((w[1].input - w[0].input - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_sweep_is_geometric() {
        let pts = sweep_log(1.0, 1000.0, 4, |x| x);
        let ratios: Vec<f64> = pts.windows(2).map(|w| w[1].input / w[0].input).collect();
        for r in ratios {
            assert!((r - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "two sweep points")]
    fn sweep_needs_two_points() {
        let _ = sweep_linear(0.0, 1.0, 1, |x| x);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        // A panicking evaluation must surface in the caller (crossbeam
        // re-raises the child's payload), not silently drop results.
        let inputs: Vec<i32> = (0..64).collect();
        let _ = parallel_map(inputs, |x| {
            assert!(*x != 33, "boom");
            *x
        });
    }

    #[test]
    #[should_panic(expected = "mid-chunk")]
    fn worker_panic_mid_chunk_propagates() {
        // A panic part-way through a chunk must abort the whole map —
        // the caller can never observe the half-written buffer.
        let inputs: Vec<i32> = (0..256).collect();
        let _ = parallel_map_chunked(inputs, 16, |x| {
            assert!(*x != 137, "mid-chunk");
            *x
        });
    }

    #[test]
    #[should_panic(expected = "positive and ordered")]
    fn log_sweep_rejects_zero_lo() {
        let _ = sweep_log(0.0, 1.0, 3, |x| x);
    }
}
