//! A crossbeam-parallel parameter sweep engine.
//!
//! Skyline's characterization studies evaluate the model across hundreds of
//! configurations (payload sweeps for Fig. 9, the full platform × algorithm
//! × UAV matrix for Fig. 15, TDP sweeps for Fig. 12). Evaluations are
//! independent, so they parallelize trivially; this module provides an
//! order-preserving parallel map built on scoped threads.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::channel;

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.max(1))
}

/// Applies `f` to every input on a pool of scoped worker threads,
/// preserving input order in the output.
///
/// Inputs are split into one contiguous chunk per worker. For workloads
/// with very uneven per-item cost, prefer [`parallel_map_chunked`] with a
/// small chunk size so idle workers can steal remaining chunks.
///
/// Falls back to a sequential map for tiny workloads (< 2 items or a
/// single available core).
///
/// # Panics
///
/// Propagates panics from `f` (the worker's panic aborts the scope).
pub fn parallel_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let chunk_size = inputs.len().div_ceil(worker_count(inputs.len())).max(1);
    parallel_map_chunked(inputs, chunk_size, f)
}

/// Applies `f` to every input in work-stealing-friendly chunks of
/// `chunk_size`, preserving input order in the output.
///
/// Workers self-schedule: each repeatedly claims the next unprocessed
/// chunk from a shared atomic cursor, so a worker stuck on an expensive
/// chunk never strands cheap ones behind it. This is the evaluation
/// engine under the DSE hot loop.
///
/// # Panics
///
/// Panics if `chunk_size == 0`; propagates panics from `f`.
pub fn parallel_map_chunked<T, R, F>(inputs: Vec<T>, chunk_size: usize, f: F) -> Vec<R>
where
    T: Send + Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk size must be positive");
    let n = inputs.len();
    let chunks = n.div_ceil(chunk_size);
    let workers = worker_count(n).min(chunks.max(1));
    if workers <= 1 || n < 2 {
        return inputs.iter().map(&f).collect();
    }

    let (tx, rx) = channel::unbounded::<(usize, R)>();
    let cursor = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (f, inputs, cursor) = (&f, &inputs, &cursor);
            scope.spawn(move |_| loop {
                let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                let start = chunk * chunk_size;
                if start >= n {
                    break;
                }
                let end = (start + chunk_size).min(n);
                for (offset, item) in inputs[start..end].iter().enumerate() {
                    let _ = tx.send((start + offset, f(item)));
                }
            });
        }
        drop(tx);
    })
    .expect("sweep worker panicked");

    let mut out: Vec<(usize, R)> = rx.into_iter().collect();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// A single point of a one-dimensional sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint<R> {
    /// The swept parameter value.
    pub input: f64,
    /// The evaluation result at that value.
    pub output: R,
}

/// Sweeps a closure over `n` evenly-spaced values in `[lo, hi]`
/// (inclusive), in parallel.
///
/// # Panics
///
/// Panics if `n < 2` or the interval is not ordered.
pub fn sweep_linear<R, F>(lo: f64, hi: f64, n: usize, f: F) -> Vec<SweepPoint<R>>
where
    R: Send,
    F: Fn(f64) -> R + Sync,
{
    assert!(n >= 2, "need at least two sweep points");
    assert!(lo < hi, "sweep interval must be ordered");
    let inputs: Vec<f64> = (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect();
    let outputs = parallel_map(inputs.clone(), |x| f(*x));
    inputs
        .into_iter()
        .zip(outputs)
        .map(|(input, output)| SweepPoint { input, output })
        .collect()
}

/// Sweeps a closure over `n` log-spaced values in `[lo, hi]` (inclusive),
/// in parallel.
///
/// # Panics
///
/// Panics if `n < 2` or the interval is not positive and ordered.
pub fn sweep_log<R, F>(lo: f64, hi: f64, n: usize, f: F) -> Vec<SweepPoint<R>>
where
    R: Send,
    F: Fn(f64) -> R + Sync,
{
    assert!(n >= 2, "need at least two sweep points");
    assert!(
        lo > 0.0 && lo < hi,
        "log sweep interval must be positive and ordered"
    );
    let (l0, l1) = (lo.ln(), hi.ln());
    let inputs: Vec<f64> = (0..n)
        .map(|i| (l0 + (l1 - l0) * i as f64 / (n - 1) as f64).exp())
        .collect();
    let outputs = parallel_map(inputs.clone(), |x| f(*x));
    inputs
        .into_iter()
        .zip(outputs)
        .map(|(input, output)| SweepPoint { input, output })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<i64> = (0..500).collect();
        let out = parallel_map(inputs, |x| x * 2);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as i64 * 2);
        }
    }

    #[test]
    fn parallel_map_runs_every_input_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..200).collect::<Vec<_>>(), |_| {
            counter.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(out.len(), 200);
        assert_eq!(counter.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn chunked_map_preserves_order_for_all_chunk_sizes() {
        let inputs: Vec<i64> = (0..97).collect();
        for chunk_size in [1, 2, 3, 16, 97, 500] {
            let out = parallel_map_chunked(inputs.clone(), chunk_size, |x| x * 3);
            assert_eq!(out.len(), 97, "chunk_size {chunk_size}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as i64 * 3, "chunk_size {chunk_size}");
            }
        }
    }

    #[test]
    fn chunked_map_runs_every_input_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map_chunked((0..300).collect::<Vec<_>>(), 7, |_| {
            counter.fetch_add(1, Ordering::SeqCst)
        });
        assert_eq!(out.len(), 300);
        assert_eq!(counter.load(Ordering::SeqCst), 300);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_rejected() {
        let _ = parallel_map_chunked(vec![1, 2, 3], 0, |x| *x);
    }

    #[test]
    fn tiny_inputs_work() {
        assert_eq!(parallel_map(Vec::<i32>::new(), |x| *x), Vec::<i32>::new());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn linear_sweep_endpoints_and_spacing() {
        let pts = sweep_linear(0.0, 10.0, 11, |x| x * x);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].input, 0.0);
        assert_eq!(pts[10].input, 10.0);
        assert_eq!(pts[3].output, 9.0);
        for w in pts.windows(2) {
            assert!((w[1].input - w[0].input - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn log_sweep_is_geometric() {
        let pts = sweep_log(1.0, 1000.0, 4, |x| x);
        let ratios: Vec<f64> = pts.windows(2).map(|w| w[1].input / w[0].input).collect();
        for r in ratios {
            assert!((r - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "two sweep points")]
    fn sweep_needs_two_points() {
        let _ = sweep_linear(0.0, 1.0, 1, |x| x);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        // A panicking evaluation must surface in the caller (crossbeam
        // re-raises the child's payload), not silently drop results.
        let inputs: Vec<i32> = (0..64).collect();
        let _ = parallel_map(inputs, |x| {
            assert!(*x != 33, "boom");
            *x
        });
    }

    #[test]
    #[should_panic(expected = "positive and ordered")]
    fn log_sweep_rejects_zero_lo() {
        let _ = sweep_log(0.0, 1.0, 3, |x| x);
    }
}
