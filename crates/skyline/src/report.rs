//! Markdown report generation — the Skyline "analysis and guidance area"
//! (paper §V-D) as a self-contained document.

use f1_units::Hertz;

use crate::chart::{roofline_chart, OperatingPoint};
use crate::mission::{analyze_mission, MissionSpec};
use crate::system::UavSystem;
use crate::SkylineError;

/// Renders a complete Markdown report for a system: component inventory,
/// automatic analysis, optimization tips, optional mission estimate, and
/// the roofline as an ASCII chart.
///
/// # Errors
///
/// Propagates analysis errors ([`SkylineError::CannotHover`] for
/// infeasible builds) and chart-rendering errors.
pub fn markdown_report(
    system: &UavSystem,
    mission: Option<&MissionSpec>,
) -> Result<String, SkylineError> {
    let analysis = system.analyze()?;
    let rates = system.stage_rates()?;
    let mut out = String::new();

    out.push_str(&format!("# Skyline report — {}\n\n", system.name()));

    out.push_str("## Configuration\n\n");
    out.push_str("| component | value |\n|---|---|\n");
    out.push_str(&format!("| airframe | {} |\n", system.airframe()));
    out.push_str(&format!("| sensor | {} |\n", system.sensor()));
    for c in system.computes() {
        out.push_str(&format!(
            "| onboard compute | {} (heatsink {:.0}) |\n",
            c,
            system.heatsink_mass(c)
        ));
    }
    out.push_str(&format!("| algorithm | {} |\n", system.algorithm()));
    out.push_str(&format!(
        "| payload | {:.0} (take-off {:.0} g) |\n",
        analysis.payload, analysis.takeoff_mass_g
    ));

    out.push_str("\n## Analysis\n\n");
    out.push_str(&format!(
        "- pipeline: sensor {:.1}, compute {:.1}, control {:.1} → f_action **{:.2}**\n",
        rates.sensor(),
        rates.compute(),
        rates.control(),
        analysis.bound.action_throughput
    ));
    out.push_str(&format!(
        "- roofline: roof **{:.2}**, {}\n",
        analysis.bound.roof, analysis.bound.knee
    ));
    out.push_str(&format!(
        "- achieved safe velocity: **{:.2}** ({:.0}% of roof)\n",
        analysis.bound.velocity,
        analysis.bound.roof_utilization() * 100.0
    ));
    out.push_str(&format!(
        "- verdict: **{}** — {}\n",
        analysis.bound.bound, analysis.assessment
    ));
    out.push_str(&format!(
        "- compute stage alone: {}\n",
        analysis.compute_assessment
    ));

    if !analysis.recommendations.is_empty() {
        out.push_str("\n## Optimization tips\n\n");
        for r in &analysis.recommendations {
            out.push_str(&format!("- {r}\n"));
        }
    }

    if let Some(spec) = mission {
        let m = analyze_mission(system, spec)?;
        out.push_str("\n## Mission estimate\n\n");
        out.push_str(&format!(
            "- {:.0} m at {:.2}: **{:.1}**, {:.1} Wh (avg {:.0})\n",
            spec.distance.get(),
            m.cruise,
            m.at_cruise.duration.to_minutes(),
            m.at_cruise.energy_wh,
            m.at_cruise.avg_power
        ));
        out.push_str(&format!(
            "- bottleneck cost vs a balanced pipeline: {:+.1}% time, {:+.1}% energy\n",
            m.time_penalty_percent(),
            m.energy_penalty_percent()
        ));
        match m.feasible {
            Some(true) => out.push_str("- fits the usable battery ✓\n"),
            Some(false) => out.push_str("- **exceeds the usable battery ✗**\n"),
            None => out.push_str("- no mission battery configured; feasibility unknown\n"),
        }
    }

    out.push_str("\n## Roofline\n\n```\n");
    let roofline = system.roofline()?;
    let op = OperatingPoint {
        label: format!("{} @ {:.1}", system.algorithm().name(), rates.compute()),
        rate: rates.compute(),
        velocity: roofline.velocity_at(rates.action_throughput()),
    };
    let chart = roofline_chart(
        system.name(),
        &[(system.airframe().name().to_owned(), roofline)],
        &[op],
        Hertz::new(0.5),
        Hertz::new(1000.0),
    )?;
    out.push_str(&chart.render_ascii(96, 26)?);
    out.push_str("```\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::{names, Catalog};
    use f1_units::Meters;

    fn system() -> UavSystem {
        UavSystem::from_catalog(
            &Catalog::paper(),
            names::ASCTEC_PELICAN,
            names::RGBD_60,
            names::TX2,
            names::DRONET,
        )
        .unwrap()
    }

    #[test]
    fn report_contains_all_sections() {
        let md = markdown_report(&system(), None).unwrap();
        for section in [
            "# Skyline report",
            "## Configuration",
            "## Analysis",
            "## Roofline",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
        assert!(md.contains("physics-bound"));
        assert!(!md.contains("## Mission estimate"));
    }

    #[test]
    fn report_with_mission_section() {
        let spec = MissionSpec::over(Meters::new(1500.0));
        let md = markdown_report(&system(), Some(&spec)).unwrap();
        assert!(md.contains("## Mission estimate"));
        assert!(md.contains("1500 m"));
        assert!(md.contains("feasibility unknown"));
    }

    #[test]
    fn infeasible_system_reports_error() {
        let sys = UavSystem::from_catalog(
            &Catalog::paper(),
            names::NANO_UAV,
            names::NANO_CAM_60,
            names::AGX,
            names::DRONET,
        )
        .unwrap();
        assert!(matches!(
            markdown_report(&sys, None),
            Err(SkylineError::CannotHover { .. })
        ));
    }

    #[test]
    fn chart_is_fenced() {
        let md = markdown_report(&system(), None).unwrap();
        let fences = md.matches("```").count();
        assert_eq!(fences, 2);
    }
}
