//! Mission-level consequences of an F-1 operating point (extension).
//!
//! The paper's §I argument is that a higher safe velocity "lowers the
//! mission time and overall mission energy". This module closes the loop:
//! it derives a cruise power model from the assembled system's physical
//! parameters (momentum-theory hover power from take-off mass and rotor
//! disk area, avionics power from the compute TDPs) and compares the
//! mission cost at the *achieved* safe velocity against the cost at the
//! knee velocity — quantifying what a compute or sensor bottleneck costs
//! in minutes and watt-hours.

use f1_components::Airframe;
use f1_model::mission::{estimate_mission, MissionEstimate, PowerModel};
use f1_units::{Kilograms, Meters, MetersPerSecond, Watts};

use crate::system::UavSystem;
use crate::SkylineError;

/// Constant sensor-stack power (W) added to the compute TDP when
/// deriving avionics power — shared by [`derive_power_model`] and the
/// query API's energy objectives
/// ([`Objective::MissionEnergyWhPerKm`](crate::query::Objective::MissionEnergyWhPerKm)).
pub const SENSOR_STACK_POWER_W: f64 = 2.0;

/// Conventional hover figure of merit for small multirotors — the
/// single source for [`MissionSpec::over`] and the query API's
/// [`MissionProfile`](crate::query::MissionProfile) default.
pub const DEFAULT_FIGURE_OF_MERIT: f64 = 0.65;

/// Conventional parasitic power coefficient, W/(m/s)³ (same sharing).
pub const DEFAULT_PARASITIC_COEFF: f64 = 0.08;

/// Conventional usable battery fraction, the depth-of-discharge guard
/// (same sharing).
pub const DEFAULT_BATTERY_RESERVE: f64 = 0.8;

/// Mission parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionSpec {
    /// One-way mission distance.
    pub distance: Meters,
    /// Usable battery fraction (depth-of-discharge guard), default 0.8.
    pub battery_reserve: f64,
    /// Hover figure of merit for the momentum-theory power estimate.
    pub figure_of_merit: f64,
    /// Parasitic power coefficient, W/(m/s)³.
    pub parasitic_coeff: f64,
}

impl MissionSpec {
    /// A mission over the given distance with conventional defaults
    /// (80 % usable battery, FoM 0.65, c_p 0.08 W/(m/s)³).
    #[must_use]
    pub fn over(distance: Meters) -> Self {
        Self {
            distance,
            battery_reserve: DEFAULT_BATTERY_RESERVE,
            figure_of_merit: DEFAULT_FIGURE_OF_MERIT,
            parasitic_coeff: DEFAULT_PARASITIC_COEFF,
        }
    }
}

/// Mission analysis of one assembled system.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionAnalysis {
    /// The F-1 safe velocity the system can actually cruise at.
    pub cruise: MetersPerSecond,
    /// The knee velocity — what the airframe could do with a balanced
    /// pipeline.
    pub knee_velocity: MetersPerSecond,
    /// Mission cost at the achieved cruise.
    pub at_cruise: MissionEstimate,
    /// Mission cost at the knee velocity.
    pub at_knee: MissionEstimate,
    /// The derived power model.
    pub power: PowerModel,
    /// Usable battery energy, if the system carries a mission battery.
    pub usable_battery_wh: Option<f64>,
    /// Whether the mission fits the usable battery at the achieved cruise
    /// (None without a battery).
    pub feasible: Option<bool>,
}

impl MissionAnalysis {
    /// Extra mission time caused by the pipeline bottleneck, percent.
    #[must_use]
    pub fn time_penalty_percent(&self) -> f64 {
        (self.at_cruise.duration.get() / self.at_knee.duration.get() - 1.0) * 100.0
    }

    /// Extra mission energy caused by the pipeline bottleneck, percent
    /// (can be negative above the energy-optimal speed).
    #[must_use]
    pub fn energy_penalty_percent(&self) -> f64 {
        (self.at_cruise.energy_wh / self.at_knee.energy_wh - 1.0) * 100.0
    }
}

/// Derives the cruise/hover power model from bare parts: momentum-theory
/// hover power from the airframe's rotor geometry and the take-off mass,
/// plus avionics power from the compute TDP and the sensor stack. The
/// parts-level core shared by [`derive_power_model`] and the query API's
/// energy objectives.
///
/// # Errors
///
/// Returns [`SkylineError::Model`] for out-of-domain mass, figure of
/// merit or parasitic coefficient.
pub fn power_model_for_parts(
    airframe: &Airframe,
    takeoff_mass: Kilograms,
    total_tdp: Watts,
    figure_of_merit: f64,
    parasitic_coeff: f64,
) -> Result<PowerModel, SkylineError> {
    // Rotor disk: radius ≈ a quarter of the diagonal frame size per rotor
    // (props span roughly half an arm), a standard sizing heuristic.
    let radius = airframe.frame_size().to_meters().get() * 0.25;
    let disk_area = f64::from(airframe.rotor_count()) * std::f64::consts::PI * radius * radius;
    let hover = PowerModel::induced_hover_power(takeoff_mass, disk_area, figure_of_merit)?;
    // Avionics: compute TDPs plus a couple of watts for the sensor stack.
    let avionics = total_tdp.get() + SENSOR_STACK_POWER_W;
    Ok(PowerModel::new(hover.get(), avionics, parasitic_coeff)?)
}

/// Derives the power model for a system from its physical parameters.
///
/// # Errors
///
/// Propagates hover/model errors ([`SkylineError::CannotHover`] etc.).
pub fn derive_power_model(
    system: &UavSystem,
    spec: &MissionSpec,
) -> Result<PowerModel, SkylineError> {
    let body = system.body_dynamics()?;
    power_model_for_parts(
        system.airframe(),
        body.total_mass(),
        system.total_tdp(),
        spec.figure_of_merit,
        spec.parasitic_coeff,
    )
}

/// Runs the mission analysis for a system.
///
/// # Errors
///
/// Returns [`SkylineError::CannotHover`] for infeasible builds and domain
/// errors for invalid specs.
pub fn analyze_mission(
    system: &UavSystem,
    spec: &MissionSpec,
) -> Result<MissionAnalysis, SkylineError> {
    if !(spec.battery_reserve.is_finite()
        && spec.battery_reserve > 0.0
        && spec.battery_reserve <= 1.0)
    {
        return Err(SkylineError::Model(f1_model::ModelError::OutOfDomain {
            parameter: "battery reserve",
            value: spec.battery_reserve,
            expected: "0 < reserve <= 1",
        }));
    }
    let analysis = system.analyze()?;
    let power = derive_power_model(system, spec)?;
    let cruise = analysis.bound.velocity;
    let knee_velocity = analysis.bound.knee.velocity;
    let at_cruise = estimate_mission(&power, spec.distance, cruise)?;
    let at_knee = estimate_mission(&power, spec.distance, knee_velocity)?;
    let usable_battery_wh = system
        .battery()
        .map(|b| b.energy_watt_hours() * spec.battery_reserve);
    let feasible = usable_battery_wh.map(|wh| at_cruise.energy_wh <= wh);
    Ok(MissionAnalysis {
        cruise,
        knee_velocity,
        at_cruise,
        at_knee,
        power,
        usable_battery_wh,
        feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::{names, Catalog};

    fn pelican(algorithm: &str) -> UavSystem {
        UavSystem::from_catalog(
            &Catalog::paper(),
            names::ASCTEC_PELICAN,
            names::RGBD_60,
            names::TX2,
            algorithm,
        )
        .unwrap()
    }

    #[test]
    fn compute_bottleneck_costs_time_and_energy() {
        // SPA at 1.1 Hz caps the Pelican at ~3.8 m/s vs a ~7.7 m/s knee:
        // the mission takes ~2× longer AND burns more battery (§I's claim,
        // now with numbers).
        let spec = MissionSpec::over(Meters::new(1000.0));
        let slow = analyze_mission(&pelican(names::MAVBENCH_PD), &spec).unwrap();
        assert!(slow.time_penalty_percent() > 50.0);
        assert!(slow.energy_penalty_percent() > 10.0);

        // A physics-bound build pays (almost) no penalty.
        let fast = analyze_mission(&pelican(names::DRONET), &spec).unwrap();
        assert!(fast.time_penalty_percent() < 2.0);
        assert!(fast.energy_penalty_percent().abs() < 5.0);
    }

    #[test]
    fn battery_feasibility() {
        let catalog = Catalog::paper();
        let battery = catalog.battery(names::BATTERY_PELICAN).unwrap().clone();
        let base = pelican(names::DRONET);
        let with_battery = UavSystem::builder("pelican + battery")
            .airframe(base.airframe().clone())
            .sensor(base.sensor().clone())
            .compute(base.computes()[0].clone())
            .algorithm(base.algorithm().clone())
            .compute_throughput(base.compute_throughput())
            .battery(battery)
            .build()
            .unwrap();
        let short = analyze_mission(&with_battery, &MissionSpec::over(Meters::new(500.0))).unwrap();
        assert_eq!(short.feasible, Some(true));
        let absurd =
            analyze_mission(&with_battery, &MissionSpec::over(Meters::new(500_000.0))).unwrap();
        assert_eq!(absurd.feasible, Some(false));
        // Without a battery, feasibility is unknowable.
        let none = analyze_mission(&base, &MissionSpec::over(Meters::new(500.0))).unwrap();
        assert_eq!(none.feasible, None);
    }

    #[test]
    fn derived_power_is_plausible() {
        let spec = MissionSpec::over(Meters::new(100.0));
        let p = derive_power_model(&pelican(names::DRONET), &spec).unwrap();
        // 1.5 kg research quad: roughly 100–400 W hover.
        assert!(p.hover_power().get() > 80.0 && p.hover_power().get() < 450.0);
        // Avionics includes the TX2's 15 W.
        assert!(p.avionics_power().get() >= 15.0);
    }

    #[test]
    fn invalid_reserve_rejected() {
        let mut spec = MissionSpec::over(Meters::new(100.0));
        spec.battery_reserve = 0.0;
        assert!(analyze_mission(&pelican(names::DRONET), &spec).is_err());
        spec.battery_reserve = 1.5;
        assert!(analyze_mission(&pelican(names::DRONET), &spec).is_err());
    }

    #[test]
    fn heavier_compute_needs_more_hover_power() {
        let spec = MissionSpec::over(Meters::new(100.0));
        let catalog = Catalog::paper();
        let light = pelican(names::DRONET);
        let heavy = light.with_compute_platform(
            catalog.compute(names::AGX).unwrap().clone(),
            f1_units::Hertz::new(230.0),
        );
        let p_light = derive_power_model(&light, &spec).unwrap();
        let p_heavy = derive_power_model(&heavy, &spec).unwrap();
        assert!(p_heavy.hover_power() > p_light.hover_power());
        assert!(p_heavy.avionics_power() > p_light.avionics_power());
    }
}
