//! UAV system assembly and automatic analysis.

use f1_components::{Airframe, AutonomyAlgorithm, Battery, Catalog, ComputePlatform, Sensor};
use f1_model::analysis::DesignAssessment;
use f1_model::heatsink::HeatsinkModel;
use f1_model::physics::BodyDynamics;
use f1_model::pipeline::StageRates;
use f1_model::roofline::{Bound, BoundAnalysis, Roofline, Saturation};
use f1_model::safety::SafetyModel;
use f1_units::{Grams, Hertz, Watts};

use crate::knobs::Knobs;
use crate::SkylineError;

/// A fully-assembled UAV system: airframe + sensor + onboard computer(s) +
/// autonomy algorithm (+ optional dedicated battery and extra payload).
///
/// Multiple compute platforms model modular redundancy (§VI-C): each adds
/// its fielded mass and TDP-derived heatsink mass; throughput stays that of
/// one unit (replicas vote, they don't parallelize).
#[derive(Debug, Clone, PartialEq)]
pub struct UavSystem {
    name: String,
    airframe: Airframe,
    sensor: Sensor,
    computes: Vec<ComputePlatform>,
    algorithm: AutonomyAlgorithm,
    compute_throughput: Hertz,
    battery: Option<Battery>,
    extra_payload: Grams,
    heatsink: HeatsinkModel,
    saturation: Saturation,
}

impl UavSystem {
    /// Starts building a system.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> UavSystemBuilder {
        UavSystemBuilder {
            name: name.into(),
            airframe: None,
            sensor: None,
            computes: Vec::new(),
            algorithm: None,
            compute_throughput: None,
            battery: None,
            extra_payload: Grams::ZERO,
            heatsink: HeatsinkModel::paper_calibrated(),
            saturation: Saturation::DEFAULT,
        }
    }

    /// Assembles a system from catalog component names, resolving the
    /// compute throughput from the catalog's characterization matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::Component`] for unknown names or an
    /// uncharacterized platform × algorithm pair.
    pub fn from_catalog(
        catalog: &Catalog,
        airframe: &str,
        sensor: &str,
        compute: &str,
        algorithm: &str,
    ) -> Result<Self, SkylineError> {
        let throughput = catalog.throughput(compute, algorithm)?;
        Self::builder(format!("{airframe} / {compute} / {algorithm}"))
            .airframe(catalog.airframe(airframe)?.clone())
            .sensor(catalog.sensor(sensor)?.clone())
            .compute(catalog.compute(compute)?.clone())
            .algorithm(catalog.algorithm(algorithm)?.clone())
            .compute_throughput(throughput)
            .build()
    }

    /// Builds a system directly from raw Table II knobs, bypassing the
    /// catalog (Skyline's "user-defined knobs" path).
    ///
    /// # Errors
    ///
    /// Returns a validation error for out-of-domain knobs, or a component
    /// error if the synthetic parts are inconsistent.
    pub fn from_knobs(name: impl Into<String>, knobs: &Knobs) -> Result<Self, SkylineError> {
        knobs.validate()?;
        let name = name.into();
        let airframe = Airframe::builder(format!("{name} (airframe)"))
            .base_mass(knobs.drone_weight)
            .rotor_count(1)
            .rotor_pull_gf(knobs.rotor_pull.get())
            .build()?;
        let sensor = Sensor::new(
            format!("{name} (sensor)"),
            f1_components::SensorModality::RgbCamera,
            knobs.sensor_framerate,
            knobs.sensor_range,
            Grams::ZERO,
        )?;
        let compute = ComputePlatform::builder(format!("{name} (compute)"))
            .mass(Grams::ZERO)
            .tdp(knobs.compute_tdp)
            .build()?;
        let algorithm = AutonomyAlgorithm::end_to_end(format!("{name} (algorithm)"))?;
        Self::builder(name)
            .airframe(airframe)
            .sensor(sensor)
            .compute(compute)
            .algorithm(algorithm)
            .compute_throughput(knobs.compute_throughput())
            .extra_payload(knobs.payload_weight)
            .build()
    }

    /// The system's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The airframe.
    #[must_use]
    pub fn airframe(&self) -> &Airframe {
        &self.airframe
    }

    /// The sensor.
    #[must_use]
    pub fn sensor(&self) -> &Sensor {
        &self.sensor
    }

    /// The onboard computer(s); more than one means modular redundancy.
    #[must_use]
    pub fn computes(&self) -> &[ComputePlatform] {
        &self.computes
    }

    /// The autonomy algorithm.
    #[must_use]
    pub fn algorithm(&self) -> &AutonomyAlgorithm {
        &self.algorithm
    }

    /// The characterized compute throughput of the algorithm on one unit
    /// of the onboard computer.
    #[must_use]
    pub fn compute_throughput(&self) -> Hertz {
        self.compute_throughput
    }

    /// The knee saturation used for rooflines.
    #[must_use]
    pub fn saturation(&self) -> Saturation {
        self.saturation
    }

    /// The heatsink model used to convert TDP into payload mass.
    #[must_use]
    pub fn heatsink(&self) -> &HeatsinkModel {
        &self.heatsink
    }

    /// The dedicated mission battery, if one was added.
    #[must_use]
    pub fn battery(&self) -> Option<&Battery> {
        self.battery.as_ref()
    }

    /// Heatsink mass for one compute unit.
    #[must_use]
    pub fn heatsink_mass(&self, compute: &ComputePlatform) -> Grams {
        self.heatsink.mass_for(compute.tdp())
    }

    /// Combined TDP across compute units.
    #[must_use]
    pub fn total_tdp(&self) -> Watts {
        Watts::new(self.computes.iter().map(|c| c.tdp().get()).sum())
    }

    /// Total payload mass: computes (fielded + heatsink) + sensor +
    /// battery + extra payload.
    #[must_use]
    pub fn payload_mass(&self) -> Grams {
        let compute_mass: f64 = self
            .computes
            .iter()
            .map(|c| c.fielded_mass().get() + self.heatsink_mass(c).get())
            .sum();
        Grams::new(
            compute_mass
                + self.sensor.mass().get()
                + self.battery.as_ref().map_or(0.0, |b| b.mass().get())
                + self.extra_payload.get(),
        )
    }

    /// Loaded body dynamics of the assembled system.
    ///
    /// # Errors
    ///
    /// Propagates dynamics-domain errors (cannot occur for valid builds).
    pub fn body_dynamics(&self) -> Result<BodyDynamics, SkylineError> {
        Ok(self.airframe.loaded_dynamics(self.payload_mass())?)
    }

    /// The safety model (Eq. 4 parameters) of the assembled system.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::CannotHover`] when the payload exceeds the
    /// thrust budget.
    pub fn safety_model(&self) -> Result<SafetyModel, SkylineError> {
        let body = self.body_dynamics()?;
        let a_max = body.a_max().map_err(|_| SkylineError::CannotHover {
            system: self.name.clone(),
            takeoff_g: body.total_mass().to_grams().get(),
            liftable_g: self.airframe.payload_capacity().get() + self.airframe.base_mass().get(),
        })?;
        Ok(SafetyModel::new(a_max, self.sensor.range())?)
    }

    /// The F-1 roofline of the assembled system.
    ///
    /// # Errors
    ///
    /// Same as [`safety_model`](Self::safety_model).
    pub fn roofline(&self) -> Result<Roofline, SkylineError> {
        Ok(Roofline::with_saturation(
            self.safety_model()?,
            self.saturation,
        ))
    }

    /// The sensor/compute/control stage rates (Eq. 3 inputs).
    ///
    /// # Errors
    ///
    /// Returns a model-domain error if any rate is non-positive (cannot
    /// occur for valid builds).
    pub fn stage_rates(&self) -> Result<StageRates, SkylineError> {
        Ok(StageRates::new(
            self.sensor.frame_rate(),
            self.compute_throughput,
            self.airframe.control_rate(),
        )?)
    }

    /// Runs the full automatic analysis (paper §V-D): bounds, knee, design
    /// assessment and optimization recommendations.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::CannotHover`] for infeasible builds.
    pub fn analyze(&self) -> Result<SystemAnalysis, SkylineError> {
        let roofline = self.roofline()?;
        let rates = self.stage_rates()?;
        let bound = roofline.classify(&rates);
        let assessment = DesignAssessment::of(&roofline, bound.action_throughput);
        // The paper's per-component framing (§VI-B: "DroNet … over-
        // provisioned by 4.13×") measures the *algorithm's* throughput
        // against the knee, independent of the sensor cap.
        let compute_assessment = DesignAssessment::of(&roofline, rates.compute());
        let mut recommendations = Vec::new();
        match bound.bound {
            Bound::Compute => {
                recommendations.push(Recommendation::ImproveCompute {
                    factor: assessment.speedup_required(),
                });
            }
            Bound::Sensor => {
                recommendations.push(Recommendation::ImproveSensor {
                    factor: assessment.speedup_required(),
                });
            }
            Bound::Control => {
                recommendations.push(Recommendation::ImproveControl {
                    factor: assessment.speedup_required(),
                });
            }
            Bound::Physics => {
                let surplus = compute_assessment.surplus_factor();
                if surplus > 1.5 {
                    let heatsink_total: f64 = self
                        .computes
                        .iter()
                        .map(|c| self.heatsink_mass(c).get())
                        .sum();
                    recommendations.push(Recommendation::TradeComputeForTdp {
                        surplus_factor: surplus,
                        current_tdp: self.total_tdp(),
                        heatsink_mass: Grams::new(heatsink_total),
                    });
                } else {
                    recommendations.push(Recommendation::Balanced);
                }
            }
        }
        // Payload feasibility warning relative to the size class.
        let budget = self.airframe.size_class().typical_payload_budget();
        if self.payload_mass() > budget {
            recommendations.push(Recommendation::PayloadHeavyForClass {
                payload: self.payload_mass(),
                class_budget: budget,
            });
        }
        Ok(SystemAnalysis {
            system_name: self.name.clone(),
            payload: self.payload_mass(),
            takeoff_mass_g: self.airframe.base_mass().get() + self.payload_mass().get(),
            bound,
            assessment,
            compute_assessment,
            recommendations,
        })
    }

    /// Returns a copy with the compute throughput replaced (what-if).
    ///
    /// # Errors
    ///
    /// Rejects non-positive rates.
    pub fn with_compute_throughput(&self, throughput: Hertz) -> Result<Self, SkylineError> {
        if !(throughput.get().is_finite() && throughput.get() > 0.0) {
            return Err(SkylineError::Model(f1_model::ModelError::OutOfDomain {
                parameter: "compute throughput",
                value: throughput.get(),
                expected: "finite and > 0",
            }));
        }
        let mut out = self.clone();
        out.compute_throughput = throughput;
        Ok(out)
    }

    /// Returns a copy with extra payload added.
    #[must_use]
    pub fn with_extra_payload(&self, extra: Grams) -> Self {
        let mut out = self.clone();
        out.extra_payload += extra;
        out
    }

    /// Returns a copy with the primary compute platform swapped (heatsink
    /// and mass recomputed); throughput must be re-supplied by the caller.
    #[must_use]
    pub fn with_compute_platform(&self, compute: ComputePlatform, throughput: Hertz) -> Self {
        let mut out = self.clone();
        out.computes = vec![compute];
        out.compute_throughput = throughput;
        out
    }

    pub(crate) fn push_compute(&mut self, compute: ComputePlatform) {
        self.computes.push(compute);
    }

    pub(crate) fn rename(&mut self, name: String) {
        self.name = name;
    }
}

/// An optimization tip from the automatic analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Recommendation {
    /// Compute-bound: improve the algorithm/platform throughput by this
    /// factor to reach the knee.
    ImproveCompute {
        /// Required speedup.
        factor: f64,
    },
    /// Sensor-bound: a faster sensor is needed.
    ImproveSensor {
        /// Required speedup.
        factor: f64,
    },
    /// Control-bound: the flight-controller loop is the bottleneck.
    ImproveControl {
        /// Required speedup.
        factor: f64,
    },
    /// Physics-bound with large compute surplus: trade performance for
    /// TDP/heatsink weight (§VI-A's AGX 30 W → 15 W what-if).
    TradeComputeForTdp {
        /// How over-provisioned the pipeline is.
        surplus_factor: f64,
        /// Current combined TDP.
        current_tdp: Watts,
        /// Current combined heatsink mass.
        heatsink_mass: Grams,
    },
    /// The design is balanced (at the knee).
    Balanced,
    /// The payload is heavy for the airframe's size class.
    PayloadHeavyForClass {
        /// Actual payload.
        payload: Grams,
        /// Typical budget for the class.
        class_budget: Grams,
    },
}

impl core::fmt::Display for Recommendation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ImproveCompute { factor } => write!(
                f,
                "compute-bound: improve compute throughput by {factor:.2}× to reach the knee"
            ),
            Self::ImproveSensor { factor } => write!(
                f,
                "sensor-bound: increase sensor frame rate by {factor:.2}× to reach the knee"
            ),
            Self::ImproveControl { factor } => write!(
                f,
                "control-bound: raise the flight-controller loop rate by {factor:.2}×"
            ),
            Self::TradeComputeForTdp {
                surplus_factor,
                current_tdp,
                heatsink_mass,
            } => write!(
                f,
                "physics-bound with {surplus_factor:.1}× compute surplus: lower TDP \
                 (now {current_tdp:.1}, heatsink {heatsink_mass:.0}) to shed payload weight"
            ),
            Self::Balanced => write!(f, "balanced design: action throughput is at the knee"),
            Self::PayloadHeavyForClass {
                payload,
                class_budget,
            } => write!(
                f,
                "payload {payload:.0} exceeds the typical {class_budget:.0} budget for this size class"
            ),
        }
    }
}

/// The automatic-analysis output (paper §V-D).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemAnalysis {
    /// The system's name.
    pub system_name: String,
    /// Total payload mass.
    pub payload: Grams,
    /// Take-off mass in grams.
    pub takeoff_mass_g: f64,
    /// Bound classification, velocity, roof and knee.
    pub bound: BoundAnalysis,
    /// Optimal / over- / under-provisioned assessment of the *pipeline*
    /// (Eq. 3 action throughput vs the knee).
    pub assessment: DesignAssessment,
    /// Assessment of the *compute stage alone* vs the knee — the paper's
    /// per-component over/under-provisioning factors.
    pub compute_assessment: DesignAssessment,
    /// Optimization tips.
    pub recommendations: Vec<Recommendation>,
}

impl core::fmt::Display for SystemAnalysis {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "━━ {} ━━", self.system_name)?;
        writeln!(
            f,
            "payload {:.0}  take-off {:.0} g",
            self.payload, self.takeoff_mass_g
        )?;
        writeln!(
            f,
            "f_action {:.2}  v_safe {:.2}  roof {:.2}  {}",
            self.bound.action_throughput, self.bound.velocity, self.bound.roof, self.bound.knee
        )?;
        writeln!(f, "{} · {}", self.bound.bound, self.assessment)?;
        for r in &self.recommendations {
            writeln!(f, "  → {r}")?;
        }
        Ok(())
    }
}

/// Builder for [`UavSystem`].
#[derive(Debug, Clone)]
pub struct UavSystemBuilder {
    name: String,
    airframe: Option<Airframe>,
    sensor: Option<Sensor>,
    computes: Vec<ComputePlatform>,
    algorithm: Option<AutonomyAlgorithm>,
    compute_throughput: Option<Hertz>,
    battery: Option<Battery>,
    extra_payload: Grams,
    heatsink: HeatsinkModel,
    saturation: Saturation,
}

impl UavSystemBuilder {
    /// Sets the airframe.
    #[must_use]
    pub fn airframe(mut self, airframe: Airframe) -> Self {
        self.airframe = Some(airframe);
        self
    }

    /// Sets the sensor.
    #[must_use]
    pub fn sensor(mut self, sensor: Sensor) -> Self {
        self.sensor = Some(sensor);
        self
    }

    /// Adds an onboard computer (call twice for dual redundancy).
    #[must_use]
    pub fn compute(mut self, compute: ComputePlatform) -> Self {
        self.computes.push(compute);
        self
    }

    /// Sets the autonomy algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: AutonomyAlgorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Sets the characterized compute throughput.
    #[must_use]
    pub fn compute_throughput(mut self, throughput: Hertz) -> Self {
        self.compute_throughput = Some(throughput);
        self
    }

    /// Adds a dedicated mission battery to the payload.
    #[must_use]
    pub fn battery(mut self, battery: Battery) -> Self {
        self.battery = Some(battery);
        self
    }

    /// Adds extra payload mass (calibration weights, gimbals, …).
    #[must_use]
    pub fn extra_payload(mut self, extra: Grams) -> Self {
        self.extra_payload = extra;
        self
    }

    /// Overrides the heatsink model.
    #[must_use]
    pub fn heatsink(mut self, model: HeatsinkModel) -> Self {
        self.heatsink = model;
        self
    }

    /// Overrides the knee saturation.
    #[must_use]
    pub fn saturation(mut self, saturation: Saturation) -> Self {
        self.saturation = saturation;
        self
    }

    /// Finishes the assembly.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::IncompleteSystem`] if any required part is
    /// missing, or a model error for a non-positive throughput.
    pub fn build(self) -> Result<UavSystem, SkylineError> {
        let airframe = self.airframe.ok_or(SkylineError::IncompleteSystem {
            missing: "airframe",
        })?;
        let sensor = self
            .sensor
            .ok_or(SkylineError::IncompleteSystem { missing: "sensor" })?;
        if self.computes.is_empty() {
            return Err(SkylineError::IncompleteSystem {
                missing: "onboard compute",
            });
        }
        let algorithm = self.algorithm.ok_or(SkylineError::IncompleteSystem {
            missing: "algorithm",
        })?;
        let throughput = self
            .compute_throughput
            .ok_or(SkylineError::IncompleteSystem {
                missing: "compute throughput",
            })?;
        if !(throughput.get().is_finite() && throughput.get() > 0.0) {
            return Err(SkylineError::Model(f1_model::ModelError::OutOfDomain {
                parameter: "compute throughput",
                value: throughput.get(),
                expected: "finite and > 0",
            }));
        }
        Ok(UavSystem {
            name: self.name,
            airframe,
            sensor,
            computes: self.computes,
            algorithm,
            compute_throughput: throughput,
            battery: self.battery,
            extra_payload: self.extra_payload,
            heatsink: self.heatsink,
            saturation: self.saturation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::names;

    fn catalog() -> Catalog {
        Catalog::paper()
    }

    fn pelican_tx2_dronet() -> UavSystem {
        UavSystem::from_catalog(
            &catalog(),
            names::ASCTEC_PELICAN,
            names::RGBD_60,
            names::TX2,
            names::DRONET,
        )
        .unwrap()
    }

    #[test]
    fn from_catalog_resolves_throughput() {
        let sys = pelican_tx2_dronet();
        assert!((sys.compute_throughput().get() - 178.0).abs() < 1e-9);
        assert_eq!(sys.computes().len(), 1);
    }

    #[test]
    fn payload_includes_heatsink() {
        let sys = pelican_tx2_dronet();
        // TX2 85 g + 15 W heatsink (~85 g) + RGB-D 30 g.
        let payload = sys.payload_mass().get();
        let heatsink = sys.heatsink_mass(&sys.computes()[0]).get();
        assert!(heatsink > 50.0 && heatsink < 110.0, "heatsink {heatsink}");
        assert!((payload - (85.0 + heatsink + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn pelican_dronet_is_physics_bound_and_over_provisioned() {
        // §VI-B: DroNet on TX2 (178 Hz) is over-provisioned ~4× against the
        // Pelican knee.
        let analysis = pelican_tx2_dronet().analyze().unwrap();
        assert_eq!(analysis.bound.bound, Bound::Physics);
        let surplus = analysis.compute_assessment.surplus_factor();
        assert!(
            (surplus - 178.0 / 43.43).abs() < 0.2,
            "surplus {surplus} (knee {})",
            analysis.bound.knee.rate
        );
        assert!(analysis
            .recommendations
            .iter()
            .any(|r| matches!(r, Recommendation::TradeComputeForTdp { .. })));
    }

    #[test]
    fn spa_on_tx2_is_compute_bound_needing_big_speedup() {
        // §VI-B: the SPA pipeline at 1.1 Hz needs ~39× to reach the knee.
        let sys = UavSystem::from_catalog(
            &catalog(),
            names::ASCTEC_PELICAN,
            names::RGBD_60,
            names::TX2,
            names::MAVBENCH_PD,
        )
        .unwrap();
        let analysis = sys.analyze().unwrap();
        assert_eq!(analysis.bound.bound, Bound::Compute);
        let speedup = analysis.assessment.speedup_required();
        assert!(speedup > 20.0 && speedup < 70.0, "speedup {speedup}");
        assert!(analysis
            .recommendations
            .iter()
            .any(|r| matches!(r, Recommendation::ImproveCompute { .. })));
    }

    #[test]
    fn sensor_bound_detection() {
        // A 5 Hz sensor in front of a fast algorithm: sensor-bound.
        let cat = catalog();
        let slow_sensor = cat
            .sensor(names::RGBD_60)
            .unwrap()
            .with_frame_rate(Hertz::new(5.0))
            .unwrap();
        let sys = UavSystem::builder("slow-sensor test")
            .airframe(cat.airframe(names::ASCTEC_PELICAN).unwrap().clone())
            .sensor(slow_sensor)
            .compute(cat.compute(names::TX2).unwrap().clone())
            .algorithm(cat.algorithm(names::DRONET).unwrap().clone())
            .compute_throughput(Hertz::new(178.0))
            .build()
            .unwrap();
        let analysis = sys.analyze().unwrap();
        assert_eq!(analysis.bound.bound, Bound::Sensor);
        assert!(analysis
            .recommendations
            .iter()
            .any(|r| matches!(r, Recommendation::ImproveSensor { .. })));
    }

    #[test]
    fn nano_with_agx_cannot_hover() {
        let sys = UavSystem::from_catalog(
            &catalog(),
            names::NANO_UAV,
            names::NANO_CAM_60,
            names::AGX,
            names::DRONET,
        )
        .unwrap();
        match sys.analyze() {
            Err(SkylineError::CannotHover { takeoff_g, .. }) => {
                assert!(takeoff_g > 400.0);
            }
            other => panic!("expected CannotHover, got {other:?}"),
        }
    }

    #[test]
    fn builder_requires_all_parts() {
        let cat = catalog();
        let b = UavSystem::builder("incomplete");
        assert!(matches!(
            b.clone().build(),
            Err(SkylineError::IncompleteSystem {
                missing: "airframe"
            })
        ));
        let b = b.airframe(cat.airframe(names::DJI_SPARK).unwrap().clone());
        assert!(matches!(
            b.clone().build(),
            Err(SkylineError::IncompleteSystem { missing: "sensor" })
        ));
        let b = b.sensor(cat.sensor(names::RGB_60).unwrap().clone());
        assert!(matches!(
            b.clone().build(),
            Err(SkylineError::IncompleteSystem {
                missing: "onboard compute"
            })
        ));
        let b = b.compute(cat.compute(names::NCS).unwrap().clone());
        assert!(matches!(
            b.clone().build(),
            Err(SkylineError::IncompleteSystem {
                missing: "algorithm"
            })
        ));
        let b = b.algorithm(cat.algorithm(names::DRONET).unwrap().clone());
        assert!(matches!(
            b.clone().build(),
            Err(SkylineError::IncompleteSystem {
                missing: "compute throughput"
            })
        ));
        assert!(b.compute_throughput(Hertz::new(150.0)).build().is_ok());
    }

    #[test]
    fn from_knobs_round_trip() {
        let sys = UavSystem::from_knobs("knob UAV", &Knobs::default()).unwrap();
        let analysis = sys.analyze().unwrap();
        assert!(analysis.bound.velocity.get() > 0.0);
        assert!((sys.compute_throughput().get() - 178.0).abs() < 1e-9);
        // Payload is the knob value plus the TDP-derived heatsink (the
        // Table II TDP knob exists exactly to size the heatsink).
        let heatsink = sys.heatsink().mass_for(Knobs::default().compute_tdp);
        assert_eq!(sys.payload_mass(), Grams::new(150.0) + heatsink);
    }

    #[test]
    fn what_if_mutators() {
        let sys = pelican_tx2_dronet();
        let faster = sys.with_compute_throughput(Hertz::new(230.0)).unwrap();
        assert!((faster.compute_throughput().get() - 230.0).abs() < 1e-9);
        assert!(sys.with_compute_throughput(Hertz::ZERO).is_err());

        let heavier = sys.with_extra_payload(Grams::new(200.0));
        assert!(heavier.payload_mass() > sys.payload_mass());
        let a1 = sys.analyze().unwrap();
        let a2 = heavier.analyze().unwrap();
        assert!(a2.bound.roof < a1.bound.roof);
    }

    #[test]
    fn swap_compute_platform() {
        let cat = catalog();
        let sys = pelican_tx2_dronet();
        let ncs = cat.compute(names::NCS).unwrap().clone();
        let swapped = sys.with_compute_platform(ncs, Hertz::new(150.0));
        assert!(swapped.payload_mass() < sys.payload_mass());
        assert_eq!(swapped.computes().len(), 1);
    }

    #[test]
    fn analysis_display_is_informative() {
        let text = pelican_tx2_dronet().analyze().unwrap().to_string();
        assert!(text.contains("physics-bound"), "{text}");
        assert!(text.contains("→"), "{text}");
    }
}
