//! Automated design-space exploration over the component catalog.
//!
//! The paper's conclusion: "We believe that the model can be used for
//! automated design space exploration and aid with generating an optimal
//! domain-specific architecture best suited for a UAV." This module does
//! exactly that: it enumerates every characterized sensor × compute ×
//! algorithm combination for an airframe, evaluates the F-1 model for
//! each, and ranks the feasible builds by safe velocity.

use f1_model::roofline::Bound;
use f1_units::MetersPerSecond;

use f1_components::Catalog;

use crate::sweep::parallel_map;
use crate::system::UavSystem;
use crate::SkylineError;

/// One evaluated candidate configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOutcome {
    /// Sensor name.
    pub sensor: String,
    /// Compute platform name.
    pub compute: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Achieved safe velocity (zero when infeasible).
    pub velocity: MetersPerSecond,
    /// Bound classification (None when infeasible).
    pub bound: Option<Bound>,
    /// Whether the build can hover at all.
    pub feasible: bool,
}

/// Result of a design-space exploration: candidates ranked by velocity,
/// feasible first.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The airframe explored.
    pub airframe: String,
    /// Ranked outcomes (best first).
    pub ranked: Vec<DseOutcome>,
    /// Number of combinations skipped because the platform × algorithm
    /// pair was never characterized.
    pub uncharacterized: usize,
}

impl DseResult {
    /// The best feasible candidate, if any.
    #[must_use]
    pub fn best(&self) -> Option<&DseOutcome> {
        self.ranked.iter().find(|o| o.feasible)
    }

    /// All feasible candidates.
    pub fn feasible(&self) -> impl Iterator<Item = &DseOutcome> {
        self.ranked.iter().filter(|o| o.feasible)
    }
}

/// Exhaustively explores the catalog for one airframe.
///
/// # Errors
///
/// Returns [`SkylineError::Component`] for an unknown airframe.
pub fn explore(catalog: &Catalog, airframe: &str) -> Result<DseResult, SkylineError> {
    // Validate the airframe up front.
    let _ = catalog.airframe(airframe)?;
    let mut candidates = Vec::new();
    let mut uncharacterized = 0usize;
    for sensor in catalog.sensors() {
        for compute in catalog.computes() {
            for algorithm in catalog.algorithms() {
                if catalog.matrix().contains(compute.name(), algorithm.name()) {
                    candidates.push((
                        sensor.name().to_owned(),
                        compute.name().to_owned(),
                        algorithm.name().to_owned(),
                    ));
                } else {
                    uncharacterized += 1;
                }
            }
        }
    }

    let outcomes = parallel_map(candidates, |(sensor, compute, algorithm)| {
        let system = UavSystem::from_catalog(catalog, airframe, sensor, compute, algorithm)
            .expect("candidate components exist by construction");
        match system.analyze() {
            Ok(analysis) => DseOutcome {
                sensor: sensor.clone(),
                compute: compute.clone(),
                algorithm: algorithm.clone(),
                velocity: analysis.bound.velocity,
                bound: Some(analysis.bound.bound),
                feasible: true,
            },
            Err(SkylineError::CannotHover { .. }) => DseOutcome {
                sensor: sensor.clone(),
                compute: compute.clone(),
                algorithm: algorithm.clone(),
                velocity: MetersPerSecond::ZERO,
                bound: None,
                feasible: false,
            },
            Err(other) => panic!("unexpected analysis error in DSE: {other}"),
        }
    });

    let mut ranked = outcomes;
    ranked.sort_by(|a, b| {
        b.feasible
            .cmp(&a.feasible)
            .then(b.velocity.partial_cmp(&a.velocity).expect("finite velocities"))
    });
    Ok(DseResult {
        airframe: airframe.to_owned(),
        ranked,
        uncharacterized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::names;

    #[test]
    fn explores_pelican_and_ranks() {
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::ASCTEC_PELICAN).unwrap();
        assert!(!result.ranked.is_empty());
        // Ranked descending by velocity among feasible entries.
        let feas: Vec<f64> = result.feasible().map(|o| o.velocity.get()).collect();
        for w in feas.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Pelican can lift everything in the catalog.
        let best = result.best().unwrap();
        assert!(best.velocity.get() > 0.0);
    }

    #[test]
    fn best_pelican_build_uses_a_light_fast_combo() {
        // The winner should be physics-bound (fast algorithm) and use a
        // lightweight platform; heavyweights like SPA-on-TX2 must rank low.
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::ASCTEC_PELICAN).unwrap();
        let best = result.best().unwrap();
        assert_eq!(best.bound, Some(Bound::Physics));
        let worst_feasible = result.feasible().last().unwrap();
        assert!(best.velocity.get() > worst_feasible.velocity.get());
    }

    #[test]
    fn nano_uav_rejects_heavy_platforms() {
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::NANO_UAV).unwrap();
        // AGX/TX2 builds are infeasible on the nano frame.
        assert!(result
            .ranked
            .iter()
            .any(|o| !o.feasible && (o.compute == names::AGX || o.compute == names::TX2)));
        // But PULP-DroNet flies.
        let best = result.best().unwrap();
        assert!(
            best.compute == names::PULP
                || best.compute == names::NAVION
                || best.compute == names::NCS,
            "best nano compute was {}",
            best.compute
        );
    }

    #[test]
    fn uncharacterized_pairs_are_counted_not_evaluated() {
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::DJI_SPARK).unwrap();
        assert!(result.uncharacterized > 0);
    }

    #[test]
    fn unknown_airframe_is_an_error() {
        let catalog = Catalog::paper();
        assert!(explore(&catalog, "Ingenuity").is_err());
    }
}
