//! Automated design-space exploration over the component catalog.
//!
//! The paper's conclusion: "We believe that the model can be used for
//! automated design space exploration and aid with generating an optimal
//! domain-specific architecture best suited for a UAV." This module does
//! exactly that, as a reusable [`Engine`]:
//!
//! * candidates are enumerated **lazily over interned ids**
//!   ([`f1_components::SensorId`] × [`f1_components::ComputeId`] ×
//!   [`f1_components::AlgorithmId`]) against a dense
//!   [`ThroughputTable`], so the hot loop performs **zero string hashing
//!   and zero per-candidate allocation**;
//! * evaluation runs through
//!   [`parallel_map_indices`](crate::sweep::parallel_map_indices) in
//!   work-stealing-friendly chunks **sized automatically from the job
//!   count and core count** ([`Engine::with_chunk_size`] pins an
//!   explicit override), and **propagates** model errors as
//!   [`SkylineError`] instead of panicking (an un-liftable payload is an
//!   infeasible outcome, not an error);
//! * [`Engine::explore_all`] batches every airframe into one parallel
//!   evaluation, and [`Exploration::pareto_frontier`] reports the
//!   non-dominated builds over (safe velocity ↑, total TDP ↓, payload
//!   mass ↓).
//!
//! What to optimize, filter and sweep is expressed through the
//! composable [`Engine::query`] API (see [`crate::query`]): `explore`,
//! [`Engine::explore_airframe`] and [`Engine::explore_all`] are thin
//! compatibility wrappers over a default 3-objective query, and
//! [`Exploration::pareto_frontier`] rides the O(n log n) skyline of
//! [`crate::frontier`].

use f1_components::{
    Airframe, AirframeId, AlgorithmId, Catalog, ComputeId, ComputePlatform, Sensor, SensorId,
    ThroughputTable,
};
use f1_model::analysis::DesignAssessment;
use f1_model::heatsink::HeatsinkModel;
use f1_model::pipeline::StageRates;
use f1_model::roofline::{Bound, Roofline, Saturation};
use f1_model::safety::SafetyModel;
use f1_units::{Grams, Hertz, MetersPerSecond, Watts};

use crate::frontier;
use crate::query::QueryPoint;
use crate::SkylineError;

/// One sensor × compute × algorithm combination, by interned id, with its
/// characterized throughput already resolved. `Copy` — the evaluation
/// loop moves these around without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The sensor.
    pub sensor: SensorId,
    /// The compute platform.
    pub compute: ComputeId,
    /// The autonomy algorithm.
    pub algorithm: AlgorithmId,
    /// Characterized throughput of the algorithm on the platform.
    pub throughput: Hertz,
}

/// The F-1 outcome of evaluating one set of parts on an airframe,
/// independent of how the parts were chosen.
///
/// `feasible` is the authoritative flag: the engine produces `Some` for
/// `bound`/`compute_assessment`/`roofline` and non-zero
/// `velocity`/`roof`/`knee` exactly when `feasible` is true. The struct
/// stays flat-and-`Copy` for the hot loop rather than encoding that as
/// an enum; don't hand-construct inconsistent values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Outcome {
    /// Whether the build can hover at all.
    pub feasible: bool,
    /// Achieved safe velocity (zero when infeasible).
    pub velocity: MetersPerSecond,
    /// The physics roof (zero when infeasible).
    pub roof: MetersPerSecond,
    /// The roofline knee rate (zero when infeasible).
    pub knee: Hertz,
    /// Bound classification (`None` when infeasible).
    pub bound: Option<Bound>,
    /// Combined TDP of the onboard compute (Pareto objective ↓).
    pub total_tdp: Watts,
    /// Total payload mass including the TDP-sized heatsink (objective ↓).
    pub payload: Grams,
    /// Compute stage vs. knee assessment (`None` when infeasible).
    pub compute_assessment: Option<DesignAssessment>,
    /// The roofline, for charting (`None` when infeasible).
    pub roofline: Option<Roofline>,
}

impl Outcome {
    fn infeasible(total_tdp: Watts, payload: Grams) -> Self {
        Self {
            feasible: false,
            velocity: MetersPerSecond::ZERO,
            roof: MetersPerSecond::ZERO,
            knee: Hertz::ZERO,
            bound: None,
            total_tdp,
            payload,
            compute_assessment: None,
            roofline: None,
        }
    }
}

/// One evaluated candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluated {
    /// The candidate that was evaluated.
    pub candidate: Candidate,
    /// Its F-1 outcome.
    pub outcome: Outcome,
}

/// Exploration result for one airframe: candidates ranked best-first
/// (feasible before infeasible, then by safe velocity descending; ties
/// keep enumeration order, so results are deterministic run-over-run).
#[derive(Debug, Clone, PartialEq)]
pub struct AirframeExploration {
    /// The explored airframe.
    pub airframe: AirframeId,
    /// Ranked evaluations (best first).
    pub ranked: Vec<Evaluated>,
    /// Number of sensor × compute × algorithm combinations skipped
    /// because the platform × algorithm pair was never characterized.
    pub uncharacterized: usize,
}

impl AirframeExploration {
    /// The best feasible candidate, if any.
    #[must_use]
    pub fn best(&self) -> Option<&Evaluated> {
        self.ranked.iter().find(|e| e.outcome.feasible)
    }

    /// All feasible candidates, best first.
    pub fn feasible(&self) -> impl Iterator<Item = &Evaluated> {
        self.ranked.iter().filter(|e| e.outcome.feasible)
    }
}

/// A point on the catalog-wide Pareto frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint<'e> {
    /// The airframe the build flies on.
    pub airframe: AirframeId,
    /// The evaluated build.
    pub evaluated: &'e Evaluated,
}

/// Result of a full-catalog exploration across every airframe.
#[derive(Debug, Clone, PartialEq)]
pub struct Exploration {
    /// Per-airframe results, in airframe-name order.
    pub airframes: Vec<AirframeExploration>,
}

/// `a` dominates `b` when it is at least as good on every objective
/// (velocity ↑, TDP ↓, payload ↓) and strictly better on one. Kept as
/// the test oracle for the sort-based frontier.
#[cfg(test)]
fn dominates(a: &Outcome, b: &Outcome) -> bool {
    a.velocity >= b.velocity
        && a.total_tdp <= b.total_tdp
        && a.payload <= b.payload
        && (a.velocity > b.velocity || a.total_tdp < b.total_tdp || a.payload < b.payload)
}

impl Exploration {
    /// Total number of evaluated candidates across all airframes.
    #[must_use]
    pub fn evaluated_count(&self) -> usize {
        self.airframes.iter().map(|a| a.ranked.len()).sum()
    }

    /// The feasible builds not dominated by any other feasible build on
    /// (safe velocity ↑, total TDP ↓, payload mass ↓), across all
    /// airframes, in deterministic (airframe, rank) order.
    ///
    /// Candidates with a non-finite objective are excluded up front:
    /// dominance uses IEEE comparisons, under which a NaN point could
    /// never be dominated and would pollute the frontier. (The current
    /// paper catalog cannot produce one; what-if inputs through
    /// [`Engine::evaluate_parts`] could.)
    ///
    /// Computed with the O(n log n) sort-and-sweep skyline of
    /// [`crate::frontier`] — identical membership and order to the old
    /// all-pairs scan (still available as
    /// [`frontier::naive_pareto_min`]), but usable at the 10⁵–10⁶
    /// candidates of [`Catalog::synthesize`]d catalogs.
    #[must_use]
    pub fn pareto_frontier(&self) -> Vec<ParetoPoint<'_>> {
        let finite = |o: &Outcome| {
            o.velocity.get().is_finite()
                && o.total_tdp.get().is_finite()
                && o.payload.get().is_finite()
        };
        let feasible: Vec<ParetoPoint<'_>> = self
            .airframes
            .iter()
            .flat_map(|result| {
                result
                    .feasible()
                    .filter(|e| finite(&e.outcome))
                    .map(|evaluated| ParetoPoint {
                        airframe: result.airframe,
                        evaluated,
                    })
            })
            .collect();
        let mut keys = Vec::with_capacity(feasible.len() * 3);
        for point in &feasible {
            let o = &point.evaluated.outcome;
            keys.extend([-o.velocity.get(), o.total_tdp.get(), o.payload.get()]);
        }
        frontier::pareto_min(3, &keys)
            .into_iter()
            .map(|i| feasible[i])
            .collect()
    }
}

/// A reusable, ID-interned design-space exploration engine over one
/// catalog.
///
/// Construction snapshots the catalog's component ids (in name order, so
/// results are deterministic) and its throughput matrix into a dense
/// [`ThroughputTable`]. Exploration then never touches a string: every
/// lookup is an array index over `Copy` ids.
#[derive(Debug, Clone)]
pub struct Engine<'c> {
    catalog: &'c Catalog,
    airframes: Vec<AirframeId>,
    sensors: Vec<SensorId>,
    computes: Vec<ComputeId>,
    algorithms: Vec<AlgorithmId>,
    table: ThroughputTable,
    heatsink: HeatsinkModel,
    saturation: Saturation,
    /// Explicit work-stealing chunk override; `None` means autotune per
    /// workload via [`crate::sweep::auto_chunk_size`].
    chunk_size: Option<usize>,
}

impl<'c> Engine<'c> {
    /// Builds an engine over the catalog with the same heatsink model and
    /// knee saturation [`UavSystem`](crate::UavSystem) uses, so engine
    /// outcomes match `UavSystem::from_catalog(..).analyze()` exactly.
    #[must_use]
    pub fn new(catalog: &'c Catalog) -> Self {
        Self {
            catalog,
            airframes: catalog.airframe_entries().map(|(id, _)| id).collect(),
            sensors: catalog.sensor_entries().map(|(id, _)| id).collect(),
            computes: catalog.compute_entries().map(|(id, _)| id).collect(),
            algorithms: catalog.algorithm_entries().map(|(id, _)| id).collect(),
            table: catalog.throughput_table(),
            heatsink: HeatsinkModel::paper_calibrated(),
            saturation: Saturation::DEFAULT,
            chunk_size: None,
        }
    }

    /// Pins the work-stealing chunk size, overriding the default
    /// autotune (which derives the chunk from the job count and the
    /// machine's available parallelism — see
    /// [`crate::sweep::auto_chunk_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = Some(chunk_size);
        self
    }

    /// Overrides the heatsink model used to convert TDP into payload.
    #[must_use]
    pub fn with_heatsink(mut self, heatsink: HeatsinkModel) -> Self {
        self.heatsink = heatsink;
        self
    }

    /// Overrides the knee saturation used for rooflines.
    #[must_use]
    pub fn with_saturation(mut self, saturation: Saturation) -> Self {
        self.saturation = saturation;
        self
    }

    /// The catalog this engine explores.
    #[must_use]
    pub fn catalog(&self) -> &'c Catalog {
        self.catalog
    }

    /// The snapshotted airframe ids, in name order.
    pub(crate) fn airframe_ids(&self) -> &[AirframeId] {
        &self.airframes
    }

    /// Lazily enumerates every characterized sensor × compute × algorithm
    /// candidate (airframe-independent), in deterministic name order —
    /// sensor-major over
    /// [`ThroughputTable::characterized_pairs`](f1_components::ThroughputTable::characterized_pairs),
    /// the same pair order the sharded streaming executor
    /// ([`crate::shard`]) decodes candidates from.
    pub fn candidates(&self) -> impl Iterator<Item = Candidate> + '_ {
        self.sensors.iter().flat_map(move |&sensor| {
            self.table
                .characterized_pairs(&self.computes, &self.algorithms)
                .map(move |(compute, algorithm, throughput)| Candidate {
                    sensor,
                    compute,
                    algorithm,
                    throughput,
                })
        })
    }

    /// Evaluates arbitrary parts (used for what-if platforms that are not
    /// in the catalog, e.g. a TDP-scaled variant).
    ///
    /// This intentionally mirrors the single-compute, no-battery slice of
    /// [`UavSystem`](crate::UavSystem)'s payload/safety composition
    /// without allocating a system; the `engine_matches_uav_system_analysis`
    /// test pins the two paths together over the whole catalog — change
    /// them in lockstep.
    ///
    /// # Errors
    ///
    /// Propagates model-domain errors as [`SkylineError::Model`]. An
    /// over-heavy payload is **not** an error: it yields an infeasible
    /// [`Outcome`].
    pub fn evaluate_parts(
        &self,
        airframe: &Airframe,
        sensor: &Sensor,
        platform: &ComputePlatform,
        throughput: Hertz,
    ) -> Result<Outcome, SkylineError> {
        self.evaluate_parts_loaded(airframe, sensor, platform, throughput, Grams::ZERO)
    }

    /// [`evaluate_parts`](Self::evaluate_parts) with extra payload mass
    /// riding along (a mission battery, cargo, or a
    /// [`Knob::PayloadDelta`](crate::query::Knob::PayloadDelta) sweep
    /// value). The **extra** contribution is floored at zero as
    /// defense-in-depth for direct callers: a negative value
    /// contributes nothing rather than erasing platform, heatsink or
    /// sensor mass and evaluating a physically impossible build. (The
    /// query layer rejects negative payload deltas outright.)
    ///
    /// # Errors
    ///
    /// Same as [`evaluate_parts`](Self::evaluate_parts).
    pub fn evaluate_parts_loaded(
        &self,
        airframe: &Airframe,
        sensor: &Sensor,
        platform: &ComputePlatform,
        throughput: Hertz,
        extra_payload: Grams,
    ) -> Result<Outcome, SkylineError> {
        evaluate_parts_with(
            &self.heatsink,
            self.saturation,
            airframe,
            sensor,
            platform,
            throughput,
            extra_payload,
        )
    }

    /// Projects this engine into the shared-pass executor's borrowed
    /// context, so [`Query::run`](crate::query::Query::run) and
    /// [`Session`](crate::session::Session) execute identical code.
    pub(crate) fn pass_context(&self) -> crate::session::PassContext<'_> {
        crate::session::PassContext {
            catalog: self.catalog,
            airframes: &self.airframes,
            sensors: &self.sensors,
            computes: &self.computes,
            algorithms: &self.algorithms,
            table: &self.table,
            heatsink: &self.heatsink,
            saturation: self.saturation,
            chunk_size: self.chunk_size,
        }
    }

    /// Evaluates one id-interned candidate on an airframe. This is the
    /// hot-loop body: every component resolve is an array index.
    ///
    /// # Errors
    ///
    /// Same as [`evaluate_parts`](Self::evaluate_parts).
    pub fn evaluate(
        &self,
        airframe: AirframeId,
        candidate: Candidate,
    ) -> Result<Evaluated, SkylineError> {
        let outcome = self.evaluate_parts(
            self.catalog.airframe_by_id(airframe),
            self.catalog.sensor_by_id(candidate.sensor),
            self.catalog.compute_by_id(candidate.compute),
            candidate.throughput,
        )?;
        Ok(Evaluated { candidate, outcome })
    }

    /// Resolves catalog names and evaluates that single combination.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::Component`] for unknown names or an
    /// uncharacterized platform × algorithm pair, plus the errors of
    /// [`evaluate`](Self::evaluate).
    pub fn evaluate_named(
        &self,
        airframe: &str,
        sensor: &str,
        compute: &str,
        algorithm: &str,
    ) -> Result<Evaluated, SkylineError> {
        let airframe = self.catalog.airframe_id(airframe)?;
        let candidate = Candidate {
            sensor: self.catalog.sensor_id(sensor)?,
            compute: self.catalog.compute_id(compute)?,
            algorithm: self.catalog.algorithm_id(algorithm)?,
            throughput: self.catalog.throughput(compute, algorithm)?,
        };
        self.evaluate(airframe, candidate)
    }

    fn rank(ranked: &mut [Evaluated]) {
        // Stable sort: ties keep deterministic enumeration order.
        ranked.sort_by(|a, b| {
            b.outcome.feasible.cmp(&a.outcome.feasible).then_with(|| {
                b.outcome
                    .velocity
                    .get()
                    .total_cmp(&a.outcome.velocity.get())
            })
        });
    }

    /// Converts one airframe's contiguous slice of default-query points
    /// back into the classic velocity-ranked exploration view.
    fn rank_points(
        airframe: AirframeId,
        points: &[QueryPoint],
        uncharacterized: usize,
    ) -> AirframeExploration {
        let mut ranked: Vec<Evaluated> = points
            .iter()
            .map(|p| Evaluated {
                candidate: p.candidate,
                outcome: p.outcome,
            })
            .collect();
        Self::rank(&mut ranked);
        AirframeExploration {
            airframe,
            ranked,
            uncharacterized,
        }
    }

    /// Exhaustively explores the catalog for one airframe, evaluating
    /// candidates in parallel work-stealing chunks.
    ///
    /// Compatibility wrapper: runs a default 3-objective
    /// [`query`](Self::query) restricted to `airframe` and re-ranks by
    /// safe velocity.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error ([`SkylineError::Model`]);
    /// infeasible builds are ranked last, not errors.
    pub fn explore_airframe(
        &self,
        airframe: AirframeId,
    ) -> Result<AirframeExploration, SkylineError> {
        let result = self.query().airframes(&[airframe]).run_without_frontier()?;
        Ok(Self::rank_points(
            airframe,
            result.points(),
            result.uncharacterized(),
        ))
    }

    /// Explores **every** airframe in the catalog as one batched parallel
    /// evaluation over the full airframe × sensor × compute × algorithm
    /// cross product.
    ///
    /// Compatibility wrapper over a default 3-objective unconstrained
    /// [`query`](Self::query), whose points come back airframe-major in
    /// this engine's airframe order.
    ///
    /// # Errors
    ///
    /// Same as [`explore_airframe`](Self::explore_airframe).
    pub fn explore_all(&self) -> Result<Exploration, SkylineError> {
        let result = self.query().run_without_frontier()?;
        let per_airframe = if self.airframes.is_empty() {
            0
        } else {
            result.points().len() / self.airframes.len()
        };
        let airframes = self
            .airframes
            .iter()
            .enumerate()
            .map(|(i, &airframe)| {
                Self::rank_points(
                    airframe,
                    &result.points()[i * per_airframe..(i + 1) * per_airframe],
                    result.uncharacterized(),
                )
            })
            .collect();
        Ok(Exploration { airframes })
    }

    /// Renders an id-based exploration into the string-keyed [`DseResult`]
    /// of the original API (allocates names once per outcome, outside the
    /// evaluation loop).
    #[must_use]
    pub fn describe(&self, result: &AirframeExploration) -> DseResult {
        DseResult {
            airframe: self
                .catalog
                .airframe_by_id(result.airframe)
                .name()
                .to_owned(),
            ranked: result
                .ranked
                .iter()
                .map(|e| DseOutcome {
                    sensor: self
                        .catalog
                        .sensor_by_id(e.candidate.sensor)
                        .name()
                        .to_owned(),
                    compute: self
                        .catalog
                        .compute_by_id(e.candidate.compute)
                        .name()
                        .to_owned(),
                    algorithm: self
                        .catalog
                        .algorithm_by_id(e.candidate.algorithm)
                        .name()
                        .to_owned(),
                    velocity: e.outcome.velocity,
                    bound: e.outcome.bound,
                    feasible: e.outcome.feasible,
                })
                .collect(),
            uncharacterized: result.uncharacterized,
            nonfinite: 0,
        }
    }
}

/// The engine-free evaluation core: one set of parts on one airframe,
/// under a heatsink model and knee saturation. This is the hot-loop body
/// shared by [`Engine::evaluate_parts_loaded`] and the fused shared-pass
/// executor of [`crate::session`] (which has no engine, only a
/// [`Session`](crate::session::Session) snapshot).
///
/// This intentionally mirrors the single-compute, no-battery slice of
/// [`UavSystem`](crate::UavSystem)'s payload/safety composition without
/// allocating a system; the `engine_matches_uav_system_analysis` test
/// pins the two paths together over the whole catalog — change them in
/// lockstep.
pub(crate) fn evaluate_parts_with(
    heatsink: &HeatsinkModel,
    saturation: Saturation,
    airframe: &Airframe,
    sensor: &Sensor,
    platform: &ComputePlatform,
    throughput: Hertz,
    extra_payload: Grams,
) -> Result<Outcome, SkylineError> {
    let pair = pair_stage(
        heatsink,
        saturation,
        airframe,
        sensor,
        platform,
        extra_payload,
    )?;
    algo_stage(&pair, airframe, sensor, throughput)
}

/// The algorithm-independent half of [`evaluate_parts_with`]: everything
/// that depends only on (airframe, sensor, compute platform, extra
/// payload) — payload mass, loaded dynamics, the safety model and the
/// roofline. The sharded streaming executor of [`crate::shard`] hoists
/// this out of its inner loop, computing it once per (sensor, compute)
/// pair instead of once per candidate; [`algo_stage`] finishes the job
/// per algorithm. Splitting here cannot change bits: the composition is
/// the literal statement sequence of the original fused kernel.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PairStage {
    /// The payload is too heavy to hover: every algorithm on this pair
    /// yields the same infeasible outcome.
    Infeasible {
        /// Combined compute TDP, carried into the infeasible outcome.
        total_tdp: Watts,
        /// Total payload mass, carried into the infeasible outcome.
        payload: Grams,
    },
    /// The build hovers: the roofline every algorithm on this pair
    /// shares.
    Ready {
        /// Combined compute TDP.
        total_tdp: Watts,
        /// Total payload mass.
        payload: Grams,
        /// The shared safety roofline.
        roofline: Roofline,
    },
}

impl PairStage {
    /// Whether candidates of this pair come out feasible. Feasibility is
    /// decided entirely at the pair stage (it is a mass/thrust check),
    /// which is what lets the streaming executor hoist the mission power
    /// model per pair.
    pub(crate) fn feasible(&self) -> bool {
        matches!(self, PairStage::Ready { .. })
    }

    /// The pair's total TDP (defined in both variants).
    pub(crate) fn total_tdp(&self) -> Watts {
        match self {
            PairStage::Infeasible { total_tdp, .. } | PairStage::Ready { total_tdp, .. } => {
                *total_tdp
            }
        }
    }

    /// The pair's total payload mass (defined in both variants).
    pub(crate) fn payload(&self) -> Grams {
        match self {
            PairStage::Infeasible { payload, .. } | PairStage::Ready { payload, .. } => *payload,
        }
    }
}

/// Computes the algorithm-independent [`PairStage`] of the evaluation
/// kernel. See [`evaluate_parts_with`] for the contract; the statement
/// sequence is byte-for-byte the prefix of the original fused kernel.
///
/// # Errors
///
/// Propagates model-domain errors as [`SkylineError::Model`]; an
/// over-heavy payload is the `Infeasible` variant, not an error.
pub(crate) fn pair_stage(
    heatsink: &HeatsinkModel,
    saturation: Saturation,
    airframe: &Airframe,
    sensor: &Sensor,
    platform: &ComputePlatform,
    extra_payload: Grams,
) -> Result<PairStage, SkylineError> {
    let total_tdp = platform.tdp();
    let payload = Grams::new(
        platform.fielded_mass().get()
            + heatsink.mass_for(total_tdp).get()
            + sensor.mass().get()
            + extra_payload.get().max(0.0),
    );
    let dynamics = airframe.loaded_dynamics(payload)?;
    let Ok(a_max) = dynamics.a_max() else {
        return Ok(PairStage::Infeasible { total_tdp, payload });
    };
    let safety = SafetyModel::new(a_max, sensor.range())?;
    let roofline = Roofline::with_saturation(safety, saturation);
    Ok(PairStage::Ready {
        total_tdp,
        payload,
        roofline,
    })
}

/// Finishes the evaluation kernel for one algorithm on a computed
/// [`PairStage`]: stage rates, roofline classification and the design
/// assessment. The statement sequence is byte-for-byte the suffix of
/// the original fused kernel, so `pair_stage` + `algo_stage` is
/// bit-identical to [`evaluate_parts_with`].
///
/// # Errors
///
/// Propagates [`StageRates`] domain errors as [`SkylineError::Model`].
pub(crate) fn algo_stage(
    pair: &PairStage,
    airframe: &Airframe,
    sensor: &Sensor,
    throughput: Hertz,
) -> Result<Outcome, SkylineError> {
    match pair {
        PairStage::Infeasible { total_tdp, payload } => {
            Ok(Outcome::infeasible(*total_tdp, *payload))
        }
        PairStage::Ready {
            total_tdp,
            payload,
            roofline,
        } => {
            let rates = StageRates::new(sensor.frame_rate(), throughput, airframe.control_rate())?;
            let bound = roofline.classify(&rates);
            Ok(Outcome {
                feasible: true,
                velocity: bound.velocity,
                roof: bound.roof,
                knee: bound.knee.rate,
                bound: Some(bound.bound),
                total_tdp: *total_tdp,
                payload: *payload,
                compute_assessment: Some(DesignAssessment::of(roofline, rates.compute())),
                roofline: Some(*roofline),
            })
        }
    }
}

/// One evaluated candidate configuration (string-keyed compatibility
/// view; see [`Evaluated`] for the id-interned form).
#[derive(Debug, Clone, PartialEq)]
pub struct DseOutcome {
    /// Sensor name.
    pub sensor: String,
    /// Compute platform name.
    pub compute: String,
    /// Algorithm name.
    pub algorithm: String,
    /// Achieved safe velocity (zero when infeasible).
    pub velocity: MetersPerSecond,
    /// Bound classification (None when infeasible).
    pub bound: Option<Bound>,
    /// Whether the build can hover at all.
    pub feasible: bool,
}

/// Result of a design-space exploration: candidates ranked by velocity,
/// feasible first.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// The airframe explored.
    pub airframe: String,
    /// Ranked outcomes (best first).
    pub ranked: Vec<DseOutcome>,
    /// Number of combinations skipped because the platform × algorithm
    /// pair was never characterized.
    pub uncharacterized: usize,
    /// Feasible points of this airframe excluded from frontier
    /// computation because an objective value was non-finite (the
    /// per-airframe reports sum to
    /// [`ResultSet::nonfinite`](crate::ResultSet::nonfinite); always
    /// zero for the classic velocity/TDP/payload exploration, whose
    /// objectives are finite for every valid part).
    pub nonfinite: usize,
}

impl DseResult {
    /// The best feasible candidate, if any.
    #[must_use]
    pub fn best(&self) -> Option<&DseOutcome> {
        self.ranked.iter().find(|o| o.feasible)
    }

    /// All feasible candidates.
    pub fn feasible(&self) -> impl Iterator<Item = &DseOutcome> {
        self.ranked.iter().filter(|o| o.feasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::UavSystem;
    use f1_components::names;

    /// Explores one airframe by name and ranks the outcomes — what the
    /// removed string-keyed `explore` wrapper did, spelled through the
    /// id-interned engine.
    fn explore(catalog: &Catalog, airframe: &str) -> Result<DseResult, SkylineError> {
        let engine = Engine::new(catalog);
        let id = catalog.airframe_id(airframe)?;
        let result = engine.explore_airframe(id)?;
        Ok(engine.describe(&result))
    }

    #[test]
    fn explores_pelican_and_ranks() {
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::ASCTEC_PELICAN).unwrap();
        assert!(!result.ranked.is_empty());
        // Ranked descending by velocity among feasible entries.
        let feas: Vec<f64> = result.feasible().map(|o| o.velocity.get()).collect();
        for w in feas.windows(2) {
            assert!(w[0] >= w[1]);
        }
        // Pelican can lift everything in the catalog.
        let best = result.best().unwrap();
        assert!(best.velocity.get() > 0.0);
    }

    #[test]
    fn best_pelican_build_uses_a_light_fast_combo() {
        // The winner should be physics-bound (fast algorithm) and use a
        // lightweight platform; heavyweights like SPA-on-TX2 must rank low.
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::ASCTEC_PELICAN).unwrap();
        let best = result.best().unwrap();
        assert_eq!(best.bound, Some(Bound::Physics));
        let worst_feasible = result.feasible().last().unwrap();
        assert!(best.velocity.get() > worst_feasible.velocity.get());
    }

    #[test]
    fn nano_uav_rejects_heavy_platforms() {
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::NANO_UAV).unwrap();
        // AGX/TX2 builds are infeasible on the nano frame.
        assert!(result
            .ranked
            .iter()
            .any(|o| !o.feasible && (o.compute == names::AGX || o.compute == names::TX2)));
        // But PULP-DroNet flies.
        let best = result.best().unwrap();
        assert!(
            best.compute == names::PULP
                || best.compute == names::NAVION
                || best.compute == names::NCS,
            "best nano compute was {}",
            best.compute
        );
    }

    #[test]
    fn uncharacterized_pairs_are_counted_not_evaluated() {
        let catalog = Catalog::paper();
        let result = explore(&catalog, names::DJI_SPARK).unwrap();
        assert!(result.uncharacterized > 0);
    }

    #[test]
    fn unknown_airframe_is_an_error() {
        let catalog = Catalog::paper();
        assert!(explore(&catalog, "Ingenuity").is_err());
    }

    #[test]
    fn engine_matches_uav_system_analysis() {
        // The id-interned fast path must agree with the full
        // UavSystem::from_catalog + analyze pipeline on EVERY airframe ×
        // candidate of the catalog. This test is the contract that keeps
        // Engine::evaluate_parts and UavSystem's payload/safety
        // composition from drifting apart — extend one, extend the other.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        for (airframe_id, airframe) in catalog.airframe_entries() {
            for candidate in engine.candidates() {
                let fast = engine.evaluate(airframe_id, candidate).unwrap();
                let system = UavSystem::from_catalog(
                    &catalog,
                    airframe.name(),
                    catalog.sensor_by_id(candidate.sensor).name(),
                    catalog.compute_by_id(candidate.compute).name(),
                    catalog.algorithm_by_id(candidate.algorithm).name(),
                )
                .unwrap();
                match system.analyze() {
                    Ok(analysis) => {
                        assert!(fast.outcome.feasible);
                        assert_eq!(fast.outcome.velocity, analysis.bound.velocity);
                        assert_eq!(fast.outcome.bound, Some(analysis.bound.bound));
                        assert_eq!(fast.outcome.knee, analysis.bound.knee.rate);
                        assert_eq!(fast.outcome.payload, analysis.payload);
                    }
                    Err(SkylineError::CannotHover { .. }) => {
                        assert!(!fast.outcome.feasible);
                    }
                    Err(other) => panic!("unexpected analysis error: {other}"),
                }
            }
        }
    }

    #[test]
    fn explore_all_covers_every_airframe_and_is_deterministic() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let first = engine.explore_all().unwrap();
        let second = engine.explore_all().unwrap();
        assert_eq!(first, second, "explore_all must be deterministic");
        assert_eq!(first.airframes.len(), catalog.airframe_count());
        // Airframes come back in name order.
        let names_in_order: Vec<&str> = first
            .airframes
            .iter()
            .map(|a| catalog.airframe_by_id(a.airframe).name())
            .collect();
        let mut sorted = names_in_order.clone();
        sorted.sort_unstable();
        assert_eq!(names_in_order, sorted);
        // Each per-airframe slice matches a standalone exploration.
        for per_airframe in &first.airframes {
            let standalone = engine.explore_airframe(per_airframe.airframe).unwrap();
            assert_eq!(per_airframe, &standalone);
        }
    }

    #[test]
    fn explore_all_matches_string_compat_wrapper() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let all = engine.explore_all().unwrap();
        for per_airframe in &all.airframes {
            let name = catalog.airframe_by_id(per_airframe.airframe).name();
            let compat = explore(&catalog, name).unwrap();
            assert_eq!(engine.describe(per_airframe), compat);
        }
    }

    #[test]
    fn pareto_frontier_invariants() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let exploration = engine.explore_all().unwrap();
        let frontier = exploration.pareto_frontier();
        assert!(!frontier.is_empty());

        let all_feasible: Vec<&Evaluated> = exploration
            .airframes
            .iter()
            .flat_map(|a| a.feasible())
            .collect();
        // 1. Every frontier point is feasible and undominated by ANY
        //    feasible candidate.
        for point in &frontier {
            assert!(point.evaluated.outcome.feasible);
            for other in &all_feasible {
                assert!(
                    !dominates(&other.outcome, &point.evaluated.outcome),
                    "frontier point dominated by {other:?}"
                );
            }
        }
        // 2. Every feasible non-frontier candidate is dominated by some
        //    frontier point (dominance is transitive, so the maximal set
        //    covers everything).
        for candidate in &all_feasible {
            let on_frontier = frontier
                .iter()
                .any(|p| std::ptr::eq(p.evaluated, *candidate));
            if !on_frontier {
                assert!(
                    frontier
                        .iter()
                        .any(|p| dominates(&p.evaluated.outcome, &candidate.outcome)),
                    "non-frontier candidate undominated: {candidate:?}"
                );
            }
        }
        // 3. The global best-velocity build is always on the frontier.
        let best_velocity = all_feasible
            .iter()
            .map(|e| e.outcome.velocity.get())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(frontier
            .iter()
            .any(|p| p.evaluated.outcome.velocity.get() == best_velocity));
    }

    #[test]
    fn chunk_size_does_not_change_results() {
        let catalog = Catalog::paper();
        let baseline = Engine::new(&catalog).explore_all().unwrap();
        for chunk_size in [1, 3, 64, 10_000] {
            let engine = Engine::new(&catalog).with_chunk_size(chunk_size);
            assert_eq!(
                engine.explore_all().unwrap(),
                baseline,
                "chunk {chunk_size}"
            );
        }
    }

    #[test]
    fn candidate_enumeration_is_lazy_and_characterized_only() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let total = catalog.sensor_count() * catalog.compute_count() * catalog.algorithm_count();
        let candidates: Vec<Candidate> = engine.candidates().collect();
        assert!(candidates.len() < total);
        assert_eq!(
            candidates.len(),
            catalog.sensor_count() * catalog.matrix().len()
        );
        // Every candidate's throughput matches the string-keyed lookup.
        for c in &candidates {
            let compute = catalog.compute_by_id(c.compute).name();
            let algorithm = catalog.algorithm_by_id(c.algorithm).name();
            assert_eq!(
                catalog.throughput(compute, algorithm).unwrap(),
                c.throughput
            );
        }
    }

    #[test]
    fn evaluate_parts_supports_what_if_platforms() {
        // The §VI-A AGX 30 W → 15 W what-if: halving TDP keeps throughput
        // but sheds heatsink mass, raising the roof.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let spark = catalog.airframe(names::DJI_SPARK).unwrap();
        let sensor = catalog.sensor(names::RGB_60).unwrap();
        let agx = catalog.compute(names::AGX).unwrap();
        let rate = catalog.throughput(names::AGX, names::DRONET).unwrap();
        let stock = engine.evaluate_parts(spark, sensor, agx, rate).unwrap();
        let halved = agx.with_tdp_scaled(0.5).unwrap();
        let optimized = engine.evaluate_parts(spark, sensor, &halved, rate).unwrap();
        assert!(optimized.payload < stock.payload);
        assert!(optimized.roof > stock.roof);
    }
}
