//! Skyline error type.

use f1_components::ComponentError;
use f1_model::ModelError;
use f1_plot::PlotError;

/// Errors produced by the Skyline engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SkylineError {
    /// A component lookup or construction failed.
    Component(ComponentError),
    /// A model construction or evaluation failed.
    Model(ModelError),
    /// Chart rendering failed.
    Plot(PlotError),
    /// The assembled system is missing a required part.
    IncompleteSystem {
        /// Which part is missing.
        missing: &'static str,
    },
    /// A knob sweep value produced an out-of-domain component variant.
    /// Raised while a query builds its per-setting part variants —
    /// strictly *before* the batched parallel pass — so one bad knob
    /// value can never abort a running evaluation.
    KnobVariant {
        /// The paper Table II parameter of the offending knob.
        knob: &'static str,
        /// The swept value that produced the invalid variant.
        value: f64,
        /// The underlying component error.
        source: ComponentError,
    },
    /// A [`QueryPlan`](crate::QueryPlan) referenced a component id that
    /// is out of range for the [`Session`](crate::Session) catalog it
    /// was executed against. Plans carry interned ids; an id is only
    /// meaningful in the catalog that minted it.
    PlanCatalog {
        /// The component family of the offending id.
        family: &'static str,
        /// The out-of-range dense index the plan carried.
        index: usize,
        /// How many components of that family the catalog holds.
        count: usize,
    },
    /// A canonical plan key failed to parse back into a
    /// [`QueryPlan`](crate::QueryPlan).
    PlanKey {
        /// What was malformed.
        reason: String,
    },
    /// A [`Session`](crate::Session) was asked to run at a catalog
    /// epoch its store never published.
    UnknownEpoch {
        /// The requested raw epoch counter.
        requested: u64,
        /// The store's latest published epoch.
        latest: u64,
    },
    /// A tier-2 (simulation-backed) plan could not be validated or
    /// executed: an out-of-domain trial count or survivor budget at
    /// build time, a plan that declares sim objectives run on a
    /// [`Session`](crate::Session) with no
    /// [`Tier2Evaluator`](crate::Tier2Evaluator) installed, or an
    /// evaluator failure on a survivor.
    Tier2 {
        /// What went wrong.
        reason: String,
    },
    /// The assembled system cannot fly (payload exceeds thrust budget).
    CannotHover {
        /// The system's name.
        system: String,
        /// Take-off mass in grams.
        takeoff_g: f64,
        /// Equivalent liftable mass in grams.
        liftable_g: f64,
    },
}

impl core::fmt::Display for SkylineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Component(e) => write!(f, "component error: {e}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Plot(e) => write!(f, "plot error: {e}"),
            Self::IncompleteSystem { missing } => {
                write!(f, "incomplete UAV system: missing {missing}")
            }
            Self::KnobVariant {
                knob,
                value,
                source,
            } => write!(
                f,
                "knob sweep {knob} = {value} produced an invalid component \
                 variant: {source}"
            ),
            Self::PlanCatalog {
                family,
                index,
                count,
            } => write!(
                f,
                "plan references {family} id {index}, but the session catalog \
                 holds only {count} {family}s (ids are catalog-specific)"
            ),
            Self::PlanKey { reason } => write!(f, "invalid plan key: {reason}"),
            Self::Tier2 { reason } => write!(f, "tier-2 evaluation: {reason}"),
            Self::UnknownEpoch { requested, latest } => write!(
                f,
                "catalog epoch {requested} was never published by this \
                 session's store (latest is epoch {latest})"
            ),
            Self::CannotHover {
                system,
                takeoff_g,
                liftable_g,
            } => write!(
                f,
                "{system} cannot hover: take-off mass {takeoff_g:.0} g exceeds \
                 liftable {liftable_g:.0} g"
            ),
        }
    }
}

impl std::error::Error for SkylineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Component(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::Plot(e) => Some(e),
            Self::KnobVariant { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ComponentError> for SkylineError {
    fn from(e: ComponentError) -> Self {
        Self::Component(e)
    }
}

impl From<ModelError> for SkylineError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<PlotError> for SkylineError {
    fn from(e: PlotError) -> Self {
        Self::Plot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let ce: SkylineError = ComponentError::UnknownComponent {
            family: "sensor",
            name: "sonar".into(),
        }
        .into();
        assert!(ce.to_string().contains("sonar"));

        let me: SkylineError = ModelError::NoConvergence {
            solver: "bisect",
            iterations: 3,
        }
        .into();
        assert!(me.to_string().contains("bisect"));

        let pe: SkylineError = PlotError::EmptyChart.into();
        assert!(pe.to_string().contains("chart"));

        let hover = SkylineError::CannotHover {
            system: "nano + AGX".into(),
            takeoff_g: 470.0,
            liftable_g: 34.0,
        };
        assert!(hover.to_string().contains("470"));

        let mismatch = SkylineError::PlanCatalog {
            family: "sensor",
            index: 9,
            count: 4,
        };
        let text = mismatch.to_string();
        assert!(text.contains("sensor") && text.contains('9') && text.contains('4'));

        let key = SkylineError::PlanKey {
            reason: "missing objectives section".into(),
        };
        assert!(key.to_string().contains("missing objectives"));

        let tier2 = SkylineError::Tier2 {
            reason: "survivor budget 0 is out of range".into(),
        };
        assert!(tier2.to_string().contains("survivor budget 0"));

        let epoch = SkylineError::UnknownEpoch {
            requested: 9,
            latest: 3,
        };
        let text = epoch.to_string();
        assert!(text.contains("epoch 9") && text.contains("epoch 3"));

        let knob = SkylineError::KnobVariant {
            knob: "Sensor Framerate",
            value: 2.5,
            source: ComponentError::InvalidField {
                field: "frame_rate",
                reason: "must be positive, got inf".into(),
            },
        };
        let text = knob.to_string();
        assert!(text.contains("Sensor Framerate") && text.contains("2.5"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error as _;
        let e: SkylineError = PlotError::EmptyChart.into();
        assert!(e.source().is_some());
        assert!(SkylineError::IncompleteSystem { missing: "sensor" }
            .source()
            .is_none());
        assert!(SkylineError::KnobVariant {
            knob: "Compute TDP",
            value: 0.0,
            source: ComponentError::InvalidField {
                field: "tdp factor",
                reason: "must be positive and finite, got 0".into(),
            },
        }
        .source()
        .is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<SkylineError>();
    }
}
