//! Owned, executable query plans — the **compile** half of the
//! compile/execute split.
//!
//! [`Engine::query()`](crate::dse::Engine::query) builds a query that
//! borrows the engine and its catalog, which is fine for one-shot
//! exploration but useless for a *service*: a borrowed query cannot be
//! cached, sent to another thread, or replayed against a shared catalog.
//! A [`QueryPlan`] is the owned, `Send + Sync` compilation of the same
//! request: objectives, constraints, Table II knob sweeps (expanded and
//! validated at build time) and an optional subspace restriction, with
//! **no engine or catalog lifetime** anywhere in the type. Plans execute
//! against a [`Session`](crate::Session), which runs batches of them in
//! one fused parallel pass and memoizes results under each plan's
//! [canonical key](QueryPlan::key).
//!
//! ```
//! use f1_skyline::plan::QueryPlan;
//! use f1_skyline::query::{Constraint, Knob, KnobSweep, Objective};
//! use f1_units::Watts;
//!
//! let plan = QueryPlan::builder()
//!     .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
//!     .constraint(Constraint::MaxTotalTdp(Watts::new(20.0)))
//!     .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
//!     .build()?;
//! // The canonical key identifies the plan for caching and dedup, and
//! // round-trips the whole plan.
//! let replayed = QueryPlan::from_key(plan.key())?;
//! assert_eq!(plan, replayed);
//! # Ok::<(), f1_skyline::SkylineError>(())
//! ```

use f1_components::{AirframeId, AlgorithmId, BatteryId, ComputeId, SensorId};
use f1_units::{Grams, MetersPerSecond, Watts};
use serde::{Deserialize, Serialize};

use crate::query::{
    Constraint, Knob, KnobSetting, KnobSweep, MissionProfile, Objective, DEFAULT_OBJECTIVES,
};
use crate::SkylineError;

/// Version prefix of the canonical plan key format.
const KEY_PREFIX: &str = "f1.plan.v1";

/// Point-materialization policy of a plan: whether the executor stores
/// every kept [`QueryPoint`](crate::query::QueryPoint) in the result, or
/// streams the evaluation and keeps only the Pareto frontier, a bounded
/// top-k and the accounting counters (see the *streamed mode* section of
/// [`ResultSet`](crate::session::ResultSet)).
///
/// Streaming bounds peak memory by O(shard + frontier + k) instead of
/// O(candidates), which is what makes 10⁷–10⁸-candidate spaces
/// practical; the frontier, top-k ranking and all counters are
/// bit-identical to the materializing path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KeepPoints {
    /// Materialize below [`STREAM_AUTO_THRESHOLD`](crate::shard::STREAM_AUTO_THRESHOLD)
    /// evaluation jobs, stream above it. The default.
    #[default]
    Auto,
    /// Always materialize every kept point, whatever the scale.
    All,
    /// Always stream: frontier + top-k + accounting only.
    FrontierOnly,
}

impl KeepPoints {
    /// The canonical key token of this policy.
    fn key_token(self) -> &'static str {
        match self {
            KeepPoints::Auto => "auto",
            KeepPoints::All => "all",
            KeepPoints::FrontierOnly => "frontier",
        }
    }

    fn from_key_token(tok: &str) -> Option<Self> {
        match tok {
            "auto" => Some(KeepPoints::Auto),
            "all" => Some(KeepPoints::All),
            "frontier" => Some(KeepPoints::FrontierOnly),
            _ => None,
        }
    }
}

/// Default number of tier-1 survivors a tier-2 plan simulates when no
/// explicit [`PlanBuilder::survivor_budget`] is set. Equal to the
/// streamed top-k depth, so the default budget is always fully
/// addressable in streamed results.
pub const DEFAULT_SURVIVOR_BUDGET: usize = crate::shard::STREAM_TOP_K;

/// Upper bound on [`SimObjective::MissionRobustness`] trial counts —
/// tier-2 cost is `survivors × trials`, and an absurd trial count in a
/// plan key must not be able to wedge an executor.
pub const MAX_SIM_TRIALS: u32 = 10_000;

/// A tier-2, simulation-backed objective: declared in the plan next to
/// the analytic [`Objective`]s, but evaluated **after** the tier-1
/// analytic pass, and only on the survivor set (Pareto frontier ∪
/// ranked top-k). Evaluation is delegated to the session's installed
/// [`Tier2Evaluator`](crate::Tier2Evaluator) (the `f1-sim` crate
/// provides the flightsim/pipeline-backed implementation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimObjective {
    /// Fraction of `trials` seeded `StopScenario` disturbance trials the
    /// candidate completes without a tracking infraction (maximized).
    /// Seeds derive deterministically from (plan key, candidate id,
    /// trial index), so results are bit-identical across cache hits,
    /// batch shapes, shard boundaries and delta repair.
    MissionRobustness {
        /// Number of disturbance trials per survivor (1..=[`MAX_SIM_TRIALS`]).
        trials: u32,
    },
    /// End-to-end p99 latency in seconds of the candidate's
    /// sense→compute→control pipeline under a `PipelineSim` run
    /// (minimized; `+∞` when the pipeline never completes an action).
    PipelineP99Latency,
}

impl SimObjective {
    /// Stable column label of this objective in results and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimObjective::MissionRobustness { .. } => "robustness",
            SimObjective::PipelineP99Latency => "p99_latency",
        }
    }

    /// Whether larger values are better (mirrors
    /// [`Objective::maximize`](crate::query::Objective)).
    #[must_use]
    pub fn maximize(self) -> bool {
        matches!(self, SimObjective::MissionRobustness { .. })
    }

    /// Discriminant used to deduplicate sim objectives by kind at build
    /// time (first occurrence wins, like analytic objectives).
    fn kind(self) -> u8 {
        match self {
            SimObjective::MissionRobustness { .. } => 0,
            SimObjective::PipelineP99Latency => 1,
        }
    }

    /// The canonical key token of this objective.
    fn key_token(self) -> String {
        match self {
            SimObjective::MissionRobustness { trials } => format!("robustness:{trials}"),
            SimObjective::PipelineP99Latency => "p99".to_owned(),
        }
    }

    fn from_key_token(tok: &str) -> Result<Self, SkylineError> {
        if tok == "p99" {
            return Ok(SimObjective::PipelineP99Latency);
        }
        if let Some(trials) = tok.strip_prefix("robustness:") {
            let trials = trials.parse::<u32>().map_err(|_| SkylineError::PlanKey {
                reason: format!("bad tier-2 trial count {trials:?}"),
            })?;
            return Ok(SimObjective::MissionRobustness { trials });
        }
        Err(SkylineError::PlanKey {
            reason: format!("unknown tier-2 objective {tok:?}"),
        })
    }

    fn validate(self) -> Result<(), SkylineError> {
        if let SimObjective::MissionRobustness { trials } = self {
            if trials == 0 || trials > MAX_SIM_TRIALS {
                return Err(SkylineError::Tier2 {
                    reason: format!(
                        "robustness trial count must be in 1..={MAX_SIM_TRIALS}, got {trials}"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// An owned, validated, executable design-space query.
///
/// Built with [`QueryPlan::builder`] (or compiled from a borrowed query
/// via [`Query::plan`](crate::query::Query::plan)); executed with
/// [`Session::run`](crate::Session::run) or batched through
/// [`Session::run_batch`](crate::Session::run_batch). A plan is plain
/// data — `Send + Sync`, cloneable, hashable through its canonical
/// [`key`](Self::key) — so it can live in request queues, cache maps and
/// thread pools.
///
/// Subspace restrictions carry interned component ids, which are only
/// meaningful in the catalog that minted them; executing a plan against
/// a different catalog fails with [`SkylineError::PlanCatalog`].
///
/// The serde derives are inert markers today (`crates/ext/serde`); the
/// working wire format is the canonical key: [`key`](Self::key) /
/// [`from_key`](Self::from_key) round-trip the entire plan as a string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryPlan {
    objectives: Vec<Objective>,
    constraints: Vec<Constraint>,
    sweeps: Vec<KnobSweep>,
    settings: Vec<KnobSetting>,
    airframes: Option<Vec<AirframeId>>,
    sensors: Option<Vec<SensorId>>,
    computes: Option<Vec<ComputeId>>,
    algorithms: Option<Vec<AlgorithmId>>,
    battery: Option<BatteryId>,
    profile: MissionProfile,
    keep_points: KeepPoints,
    sim_objectives: Vec<SimObjective>,
    survivor_budget: usize,
    key: String,
}

impl QueryPlan {
    /// Starts building a plan.
    #[must_use]
    pub fn builder() -> PlanBuilder {
        PlanBuilder::new()
    }

    /// The plan's objectives: deduplicated, primary first, never empty
    /// (an unspecified objective list resolves to
    /// [`DEFAULT_OBJECTIVES`]).
    #[must_use]
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// The plan's hard constraints, in canonical (sorted, deduplicated)
    /// order.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The plan's knob sweeps, in application order.
    #[must_use]
    pub fn sweeps(&self) -> &[KnobSweep] {
        &self.sweeps
    }

    /// The expanded knob settings (cartesian product of the sweeps,
    /// identity first when no sweeps are present).
    #[must_use]
    pub fn settings(&self) -> &[KnobSetting] {
        &self.settings
    }

    /// The airframe restriction (`None` = every catalog airframe).
    #[must_use]
    pub fn airframes(&self) -> Option<&[AirframeId]> {
        self.airframes.as_deref()
    }

    /// The sensor restriction (`None` = every catalog sensor).
    #[must_use]
    pub fn sensors(&self) -> Option<&[SensorId]> {
        self.sensors.as_deref()
    }

    /// The compute restriction (`None` = every catalog platform).
    #[must_use]
    pub fn computes(&self) -> Option<&[ComputeId]> {
        self.computes.as_deref()
    }

    /// The algorithm restriction (`None` = every catalog algorithm).
    #[must_use]
    pub fn algorithms(&self) -> Option<&[AlgorithmId]> {
        self.algorithms.as_deref()
    }

    /// The mounted battery, if any.
    #[must_use]
    pub fn battery(&self) -> Option<BatteryId> {
        self.battery
    }

    /// The power-model parameters of the energy objectives.
    #[must_use]
    pub fn mission_profile(&self) -> MissionProfile {
        self.profile
    }

    /// The plan's point-materialization policy (see [`KeepPoints`]).
    #[must_use]
    pub fn keep_points(&self) -> KeepPoints {
        self.keep_points
    }

    /// The plan's tier-2 (simulation-backed) objectives, deduplicated by
    /// kind in declaration order; empty for a pure analytic plan.
    #[must_use]
    pub fn sim_objectives(&self) -> &[SimObjective] {
        &self.sim_objectives
    }

    /// How many tier-1 survivors (frontier ∪ ranked top-k) the tier-2
    /// pass simulates. Always in
    /// `1..=`[`STREAM_TOP_K`](crate::shard::STREAM_TOP_K), so the whole
    /// survivor set is addressable even in streamed results;
    /// [`DEFAULT_SURVIVOR_BUDGET`] when unset or when the plan has no
    /// sim objectives.
    #[must_use]
    pub fn survivor_budget(&self) -> usize {
        self.survivor_budget
    }

    /// Whether this plan declares any tier-2 objectives (and therefore
    /// needs a [`Tier2Evaluator`](crate::Tier2Evaluator) at execution).
    #[must_use]
    pub fn has_tier2(&self) -> bool {
        !self.sim_objectives.is_empty()
    }

    /// Whether any objective needs the momentum-theory power model.
    pub(crate) fn needs_power(&self) -> bool {
        self.objectives.iter().any(|o| {
            matches!(
                o,
                Objective::MissionEnergyWhPerKm | Objective::HoverEnduranceMin
            )
        })
    }

    /// The canonical plan key: a deterministic, versioned string
    /// identifying this plan. Semantically equal plans (same objectives,
    /// canonicalized constraints, sweeps, subspace, battery and mission
    /// profile) produce the same key, so it serves as the hash/dedup
    /// identity in [`Session`](crate::Session)'s result cache — and it
    /// round-trips: [`from_key`](Self::from_key) rebuilds the plan.
    #[must_use]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Parses a [canonical key](Self::key) back into a plan, re-running
    /// every build-time validation. The key must be in **canonical
    /// form** — sections in their fixed order, canonical float
    /// formatting, deduplicated objectives, sorted constraints — i.e.
    /// exactly what [`key`](Self::key) emits: the rebuilt plan's key is
    /// required to round-trip back to the input, so two distinct
    /// accepted strings can never alias one cache identity.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::PlanKey`] for a malformed, truncated,
    /// reordered or non-canonical key, plus any error
    /// [`PlanBuilder::build`] can produce.
    pub fn from_key(key: &str) -> Result<Self, SkylineError> {
        let plan = parse_key(key)?.build()?;
        if plan.key() != key {
            return Err(SkylineError::PlanKey {
                reason: format!(
                    "key is not in canonical form (canonicalizes to {:?})",
                    plan.key()
                ),
            });
        }
        Ok(plan)
    }
}

fn fmt_float(v: f64) -> String {
    // `{:?}` is Rust's shortest round-trip formatting: parsing the
    // output with `str::parse::<f64>()` recovers the exact bits, which
    // the canonical key relies on.
    format!("{v:?}")
}

fn parse_float(s: &str, what: &str) -> Result<f64, SkylineError> {
    s.parse().map_err(|_| SkylineError::PlanKey {
        reason: format!("bad {what} value {s:?}"),
    })
}

fn fmt_ids<T: Copy>(ids: Option<&[T]>, index: impl Fn(T) -> usize) -> String {
    match ids {
        None => "*".to_owned(),
        Some(list) => list
            .iter()
            .map(|&id| index(id).to_string())
            .collect::<Vec<_>>()
            .join(","),
    }
}

fn parse_ids<T>(
    section: &str,
    what: &str,
    from_index: impl Fn(usize) -> T,
) -> Result<Option<Vec<T>>, SkylineError> {
    if section == "*" {
        return Ok(None);
    }
    if section.is_empty() {
        return Ok(Some(Vec::new()));
    }
    section
        .split(',')
        .map(|tok| {
            tok.parse::<usize>()
                .map(&from_index)
                .map_err(|_| SkylineError::PlanKey {
                    reason: format!("bad {what} id {tok:?}"),
                })
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

/// Canonical ordering rank of a constraint: discriminant first, then
/// value (`total_cmp`), so sorted constraint lists are deterministic.
fn constraint_rank(c: &Constraint) -> (u8, f64) {
    match *c {
        Constraint::FeasibleOnly => (0, 0.0),
        Constraint::MinVelocity(v) => (1, v.get()),
        Constraint::MaxTotalTdp(w) => (2, w.get()),
        Constraint::MaxPayload(g) => (3, g.get()),
    }
}

fn fmt_constraint(c: &Constraint) -> String {
    match *c {
        Constraint::FeasibleOnly => "feasible".to_owned(),
        Constraint::MinVelocity(v) => format!("min_velocity={}", fmt_float(v.get())),
        Constraint::MaxTotalTdp(w) => format!("max_tdp={}", fmt_float(w.get())),
        Constraint::MaxPayload(g) => format!("max_payload={}", fmt_float(g.get())),
    }
}

fn parse_constraint(tok: &str) -> Result<Constraint, SkylineError> {
    if tok == "feasible" {
        return Ok(Constraint::FeasibleOnly);
    }
    let (name, value) = tok.split_once('=').ok_or_else(|| SkylineError::PlanKey {
        reason: format!("bad constraint {tok:?}"),
    })?;
    let v = parse_float(value, "constraint")?;
    match name {
        "min_velocity" => Ok(Constraint::MinVelocity(MetersPerSecond::new(v))),
        "max_tdp" => Ok(Constraint::MaxTotalTdp(Watts::new(v))),
        "max_payload" => Ok(Constraint::MaxPayload(Grams::new(v))),
        other => Err(SkylineError::PlanKey {
            reason: format!("unknown constraint {other:?}"),
        }),
    }
}

fn build_key(plan: &PlanParts<'_>) -> String {
    let objectives = plan
        .objectives
        .iter()
        .map(|o| o.label())
        .collect::<Vec<_>>()
        .join(",");
    let constraints = plan
        .constraints
        .iter()
        .map(fmt_constraint)
        .collect::<Vec<_>>()
        .join(";");
    let sweeps = plan
        .sweeps
        .iter()
        .map(|s| {
            format!(
                "{}:{}",
                s.knob().key_token(),
                s.values()
                    .iter()
                    .map(|&v| fmt_float(v))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect::<Vec<_>>()
        .join(";");
    let battery = plan
        .battery
        .map_or_else(|| "-".to_owned(), |id| id.index().to_string());
    let tier2 = if plan.sim_objectives.is_empty() {
        "-".to_owned()
    } else {
        format!(
            "{}@{}",
            plan.sim_objectives
                .iter()
                .map(|o| o.key_token())
                .collect::<Vec<_>>()
                .join(";"),
            plan.survivor_budget
        )
    };
    format!(
        "{KEY_PREFIX}|o={objectives}|c={constraints}|s={sweeps}|af={}|sn={}|cp={}|al={}|b={battery}|mp={},{},{}|kp={}|t2={tier2}",
        fmt_ids(plan.airframes, AirframeId::index),
        fmt_ids(plan.sensors, SensorId::index),
        fmt_ids(plan.computes, ComputeId::index),
        fmt_ids(plan.algorithms, AlgorithmId::index),
        fmt_float(plan.profile.figure_of_merit),
        fmt_float(plan.profile.parasitic_coeff),
        fmt_float(plan.profile.battery_reserve),
        plan.keep_points.key_token(),
    )
}

/// Borrowed view of the fields that define a plan's identity, shared by
/// key construction from both the builder and the built plan.
struct PlanParts<'a> {
    objectives: &'a [Objective],
    constraints: &'a [Constraint],
    sweeps: &'a [KnobSweep],
    airframes: Option<&'a [AirframeId]>,
    sensors: Option<&'a [SensorId]>,
    computes: Option<&'a [ComputeId]>,
    algorithms: Option<&'a [AlgorithmId]>,
    battery: Option<BatteryId>,
    profile: MissionProfile,
    keep_points: KeepPoints,
    sim_objectives: &'a [SimObjective],
    survivor_budget: usize,
}

/// The fixed section order of a canonical key. Enforced on parse:
/// reordered, duplicated, missing or extra sections are all
/// [`SkylineError::PlanKey`] — a key is a cache identity, so exactly
/// one accepted spelling may exist per plan.
const KEY_SECTIONS: [&str; 11] = ["o", "c", "s", "af", "sn", "cp", "al", "b", "mp", "kp", "t2"];

fn parse_key(key: &str) -> Result<PlanBuilder, SkylineError> {
    let mut sections = key.split('|');
    if sections.next() != Some(KEY_PREFIX) {
        return Err(SkylineError::PlanKey {
            reason: format!("expected {KEY_PREFIX:?} prefix"),
        });
    }
    let mut builder = PlanBuilder::new();
    for expected in KEY_SECTIONS {
        let section = sections.next().ok_or_else(|| SkylineError::PlanKey {
            reason: format!("truncated key: missing section {expected:?}"),
        })?;
        let (tag, body) = section
            .split_once('=')
            .ok_or_else(|| SkylineError::PlanKey {
                reason: format!("malformed section {section:?}"),
            })?;
        if tag != expected {
            return Err(SkylineError::PlanKey {
                reason: format!("expected section {expected:?}, found {tag:?}"),
            });
        }
        match tag {
            "o" => {
                for tok in body.split(',').filter(|t| !t.is_empty()) {
                    let objective: Objective = tok
                        .parse()
                        .map_err(|e| SkylineError::PlanKey { reason: e })?;
                    builder = builder.objective(objective);
                }
            }
            "c" => {
                for tok in body.split(';').filter(|t| !t.is_empty()) {
                    builder = builder.constraint(parse_constraint(tok)?);
                }
            }
            "s" => {
                for tok in body.split(';').filter(|t| !t.is_empty()) {
                    let (knob, values) =
                        tok.split_once(':').ok_or_else(|| SkylineError::PlanKey {
                            reason: format!("bad sweep {tok:?}"),
                        })?;
                    let knob = Knob::from_key_token(knob).ok_or_else(|| SkylineError::PlanKey {
                        reason: format!("unknown knob {knob:?}"),
                    })?;
                    let values = values
                        .split(',')
                        .map(|v| parse_float(v, "sweep"))
                        .collect::<Result<Vec<_>, _>>()?;
                    builder = builder.sweep(KnobSweep::new(knob, values));
                }
            }
            "af" => builder.airframes = parse_ids(body, "airframe", AirframeId::from_index)?,
            "sn" => builder.sensors = parse_ids(body, "sensor", SensorId::from_index)?,
            "cp" => builder.computes = parse_ids(body, "compute", ComputeId::from_index)?,
            "al" => builder.algorithms = parse_ids(body, "algorithm", AlgorithmId::from_index)?,
            "b" => {
                builder.battery = if body == "-" {
                    None
                } else {
                    Some(BatteryId::from_index(body.parse().map_err(|_| {
                        SkylineError::PlanKey {
                            reason: format!("bad battery id {body:?}"),
                        }
                    })?))
                };
            }
            "mp" => {
                let parts: Vec<&str> = body.split(',').collect();
                let [fom, parasitic, reserve] = parts.as_slice() else {
                    return Err(SkylineError::PlanKey {
                        reason: format!("mission profile needs 3 fields, got {body:?}"),
                    });
                };
                builder = builder.mission_profile(MissionProfile {
                    figure_of_merit: parse_float(fom, "figure of merit")?,
                    parasitic_coeff: parse_float(parasitic, "parasitic coeff")?,
                    battery_reserve: parse_float(reserve, "battery reserve")?,
                });
            }
            "kp" => {
                builder.keep_points =
                    KeepPoints::from_key_token(body).ok_or_else(|| SkylineError::PlanKey {
                        reason: format!("unknown keep-points policy {body:?}"),
                    })?;
            }
            "t2" => {
                if body != "-" {
                    let (objectives, budget) =
                        body.rsplit_once('@').ok_or_else(|| SkylineError::PlanKey {
                            reason: format!("bad tier-2 section {body:?} (missing @budget)"),
                        })?;
                    for tok in objectives.split(';').filter(|t| !t.is_empty()) {
                        builder = builder.sim_objective(SimObjective::from_key_token(tok)?);
                    }
                    builder = builder.survivor_budget(budget.parse::<usize>().map_err(|_| {
                        SkylineError::PlanKey {
                            reason: format!("bad survivor budget {budget:?}"),
                        }
                    })?);
                }
            }
            // analyze::allow(panic, reason = "the tag was validated against KEY_SECTIONS before dispatch; this arm is dead by construction")
            _ => unreachable!("tag was checked against the expected section"),
        }
    }
    if let Some(extra) = sections.next() {
        return Err(SkylineError::PlanKey {
            reason: format!("trailing section {extra:?}"),
        });
    }
    Ok(builder)
}

/// Builder for [`QueryPlan`]. Mirrors the borrowed
/// [`Query`](crate::query::Query) builder method-for-method, but
/// finishes with a fallible [`build`](Self::build) that front-loads
/// every catalog-independent validation.
#[derive(Debug, Clone, Default)]
pub struct PlanBuilder {
    objectives: Vec<Objective>,
    constraints: Vec<Constraint>,
    sweeps: Vec<KnobSweep>,
    airframes: Option<Vec<AirframeId>>,
    sensors: Option<Vec<SensorId>>,
    computes: Option<Vec<ComputeId>>,
    algorithms: Option<Vec<AlgorithmId>>,
    battery: Option<BatteryId>,
    profile: Option<MissionProfile>,
    keep_points: KeepPoints,
    sim_objectives: Vec<SimObjective>,
    survivor_budget: Option<usize>,
}

impl PlanBuilder {
    fn new() -> Self {
        Self::default()
    }

    /// Appends one objective (the first appended is the primary).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objectives.push(objective);
        self
    }

    /// Replaces the objective list (first entry is the primary).
    #[must_use]
    pub fn objectives(mut self, objectives: &[Objective]) -> Self {
        self.objectives = objectives.to_vec();
        self
    }

    /// Adds a hard constraint.
    #[must_use]
    pub fn constraint(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Adds a knob sweep (cartesian product with any earlier sweeps).
    #[must_use]
    pub fn sweep(mut self, sweep: KnobSweep) -> Self {
        self.sweeps.push(sweep);
        self
    }

    /// Restricts the plan to these airframes (default: all).
    #[must_use]
    pub fn airframes(mut self, ids: &[AirframeId]) -> Self {
        self.airframes = Some(ids.to_vec());
        self
    }

    /// Restricts the plan to these sensors (default: all).
    #[must_use]
    pub fn sensors(mut self, ids: &[SensorId]) -> Self {
        self.sensors = Some(ids.to_vec());
        self
    }

    /// Restricts the plan to these compute platforms (default: all).
    #[must_use]
    pub fn computes(mut self, ids: &[ComputeId]) -> Self {
        self.computes = Some(ids.to_vec());
        self
    }

    /// Restricts the plan to these algorithms (default: all).
    #[must_use]
    pub fn algorithms(mut self, ids: &[AlgorithmId]) -> Self {
        self.algorithms = Some(ids.to_vec());
        self
    }

    /// Mounts a battery on every candidate: its mass joins the payload,
    /// and [`Objective::HoverEnduranceMin`] draws on its capacity.
    #[must_use]
    pub fn battery(mut self, id: BatteryId) -> Self {
        self.battery = Some(id);
        self
    }

    /// Overrides the power-model parameters of the energy objectives.
    #[must_use]
    pub fn mission_profile(mut self, profile: MissionProfile) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Sets the point-materialization policy (default
    /// [`KeepPoints::Auto`]; see [`KeepPoints`]).
    #[must_use]
    pub fn keep_points(mut self, keep_points: KeepPoints) -> Self {
        self.keep_points = keep_points;
        self
    }

    /// Appends a tier-2 (simulation-backed) objective, evaluated on the
    /// tier-1 survivor set after the analytic pass (see
    /// [`SimObjective`]). Duplicate kinds deduplicate at build time,
    /// first occurrence winning.
    #[must_use]
    pub fn sim_objective(mut self, objective: SimObjective) -> Self {
        self.sim_objectives.push(objective);
        self
    }

    /// Caps how many tier-1 survivors the tier-2 pass simulates
    /// (default [`DEFAULT_SURVIVOR_BUDGET`]; must be
    /// `1..=`[`STREAM_TOP_K`](crate::shard::STREAM_TOP_K) so the
    /// survivor set stays addressable in streamed results). Ignored —
    /// and canonicalized away — when the plan has no sim objectives.
    #[must_use]
    pub fn survivor_budget(mut self, budget: usize) -> Self {
        self.survivor_budget = Some(budget);
        self
    }

    /// The objectives the built plan will run under (the default set if
    /// none were specified, deduplicated preserving first occurrence).
    #[must_use]
    pub fn resolved_objectives(&self) -> Vec<Objective> {
        let mut out: Vec<Objective> = Vec::new();
        let source: &[Objective] = if self.objectives.is_empty() {
            &DEFAULT_OBJECTIVES
        } else {
            &self.objectives
        };
        for &o in source {
            if !out.contains(&o) {
                out.push(o);
            }
        }
        out
    }

    /// Validates and compiles the plan: objectives resolved and
    /// deduplicated, constraints canonicalized (sorted, duplicates
    /// removed), subspace id lists deduplicated preserving first
    /// occurrence, mission profile domain-checked, sweep values
    /// domain-checked and expanded into the cartesian product of
    /// [`KnobSetting`]s (duplicate composed settings deduplicated
    /// preserving first occurrence, so e.g. a `[0.5, 0.5]` sweep
    /// evaluates one variant, not two), and the canonical key computed.
    /// Dedup happens *before* the key, so a plan spelled with duplicate
    /// ids shares its cache identity with the clean spelling — and delta
    /// [`refresh`](crate::Session::refresh) stays incremental for it
    /// (repair used to bail to a cold run on duplicates). Catalog-
    /// *dependent* validation (scaled part magnitudes) happens at
    /// execution, still strictly before the parallel pass.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::IncompleteSystem`] when
    /// [`Objective::HoverEnduranceMin`] is requested without a battery,
    /// [`SkylineError::Model`] for invalid sweep values or profile
    /// parameters, and [`SkylineError::KnobVariant`] when composed
    /// payload deltas overflow.
    pub fn build(self) -> Result<QueryPlan, SkylineError> {
        let objectives = self.resolved_objectives();
        let profile = self.profile.unwrap_or_default();
        profile.validate()?;
        if objectives.contains(&Objective::HoverEnduranceMin) && self.battery.is_none() {
            return Err(SkylineError::IncompleteSystem {
                missing: "battery (the hover-endurance objective needs one)",
            });
        }
        // Duplicate values *within* a sweep expand to duplicate composed
        // settings, which the settings dedup below drops — so removing
        // them here cannot change the evaluated space, but it does make
        // the canonical key (built from the sweeps) agree with the clean
        // spelling.
        let sweeps: Vec<KnobSweep> = self
            .sweeps
            .into_iter()
            .map(|s| KnobSweep::new(s.knob(), dedup_first(s.values().to_vec())))
            .collect();
        let settings = dedup_first(expand_settings(&sweeps)?);
        let airframes = self.airframes.map(dedup_first);
        let sensors = self.sensors.map(dedup_first);
        let computes = self.computes.map(dedup_first);
        let algorithms = self.algorithms.map(dedup_first);
        let mut constraints = self.constraints;
        constraints.sort_by(|a, b| {
            let (ra, va) = constraint_rank(a);
            let (rb, vb) = constraint_rank(b);
            ra.cmp(&rb).then_with(|| va.total_cmp(&vb))
        });
        constraints.dedup();
        let mut sim_objectives: Vec<SimObjective> = Vec::new();
        for &so in &self.sim_objectives {
            so.validate()?;
            if !sim_objectives.iter().any(|o| o.kind() == so.kind()) {
                sim_objectives.push(so);
            }
        }
        if let Some(budget) = self.survivor_budget {
            if budget == 0 || budget > crate::shard::STREAM_TOP_K {
                return Err(SkylineError::Tier2 {
                    reason: format!(
                        "survivor budget must be in 1..={}, got {budget}",
                        crate::shard::STREAM_TOP_K
                    ),
                });
            }
        }
        // Without sim objectives the budget is inert, so it collapses to
        // the default — the canonical key (`t2=-`) carries no budget and
        // a round-tripped plan must compare equal.
        let survivor_budget = if sim_objectives.is_empty() {
            DEFAULT_SURVIVOR_BUDGET
        } else {
            self.survivor_budget.unwrap_or(DEFAULT_SURVIVOR_BUDGET)
        };
        let key = build_key(&PlanParts {
            objectives: &objectives,
            constraints: &constraints,
            sweeps: &sweeps,
            airframes: airframes.as_deref(),
            sensors: sensors.as_deref(),
            computes: computes.as_deref(),
            algorithms: algorithms.as_deref(),
            battery: self.battery,
            profile,
            keep_points: self.keep_points,
            sim_objectives: &sim_objectives,
            survivor_budget,
        });
        Ok(QueryPlan {
            objectives,
            constraints,
            sweeps,
            settings,
            airframes,
            sensors,
            computes,
            algorithms,
            battery: self.battery,
            profile,
            keep_points: self.keep_points,
            sim_objectives,
            survivor_budget,
            key,
        })
    }
}

/// Order-preserving first-occurrence dedup; O(n²) on lists that are
/// at most catalog-sized (and typically tiny).
fn dedup_first<T: PartialEq>(list: Vec<T>) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(list.len());
    for item in list {
        if !out.contains(&item) {
            out.push(item);
        }
    }
    out
}

/// Expands a sweep list into the cartesian product of knob settings,
/// validating each sweep's values and every composed setting.
fn expand_settings(sweeps: &[KnobSweep]) -> Result<Vec<KnobSetting>, SkylineError> {
    let mut out = vec![KnobSetting::IDENTITY];
    for sweep in sweeps {
        sweep.validate()?;
        let mut next = Vec::with_capacity(out.len() * sweep.values().len());
        for setting in &out {
            for &value in sweep.values() {
                // Same-knob payload sweeps compose by addition, and two
                // individually valid deltas can sum to +∞ — which would
                // panic in the `Grams` constructor inside `apply`.
                // Scales compose by multiplication on plain f64 fields;
                // an overflowed scale is caught by the variant builder's
                // magnitude guard at execution time.
                if sweep.knob() == Knob::PayloadDelta
                    && !(setting.payload_delta.get() + value).is_finite()
                {
                    return Err(SkylineError::KnobVariant {
                        knob: Knob::PayloadDelta.table2_parameter(),
                        value,
                        source: f1_components::ComponentError::InvalidField {
                            field: "payload_delta",
                            reason: format!(
                                "composed payload delta must be finite, got {}",
                                setting.payload_delta.get() + value
                            ),
                        },
                    });
                }
                next.push(setting.apply(sweep.knob(), value));
            }
        }
        out = next;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_units::Watts;

    fn sample_plan() -> QueryPlan {
        QueryPlan::builder()
            .objectives(&[
                Objective::TotalTdp,
                Objective::SafeVelocity,
                Objective::MissionEnergyWhPerKm,
            ])
            .constraint(Constraint::MaxTotalTdp(Watts::new(20.0)))
            .constraint(Constraint::FeasibleOnly)
            .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
            .sweep(KnobSweep::new(Knob::WeightScale, vec![1.0, 0.8]))
            .airframes(&[AirframeId::from_index(0), AirframeId::from_index(2)])
            .battery(BatteryId::from_index(1))
            .build()
            .unwrap()
    }

    #[test]
    fn plans_are_send_sync_owned_values() {
        fn assert_send_sync<T: Send + Sync + Clone + 'static>() {}
        assert_send_sync::<QueryPlan>();
    }

    #[test]
    fn build_resolves_defaults_and_canonicalizes() {
        let plan = QueryPlan::builder().build().unwrap();
        assert_eq!(plan.objectives(), DEFAULT_OBJECTIVES);
        assert_eq!(plan.settings(), [KnobSetting::IDENTITY]);
        assert!(plan.constraints().is_empty());

        // Constraint order and duplicates do not change the identity.
        let a = QueryPlan::builder()
            .constraint(Constraint::MaxTotalTdp(Watts::new(5.0)))
            .constraint(Constraint::FeasibleOnly)
            .build()
            .unwrap();
        let b = QueryPlan::builder()
            .constraint(Constraint::FeasibleOnly)
            .constraint(Constraint::MaxTotalTdp(Watts::new(5.0)))
            .constraint(Constraint::FeasibleOnly)
            .build()
            .unwrap();
        assert_eq!(a.key(), b.key());
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_plans_have_distinct_keys() {
        let base = QueryPlan::builder().build().unwrap();
        let capped = QueryPlan::builder()
            .constraint(Constraint::MaxTotalTdp(Watts::new(5.0)))
            .build()
            .unwrap();
        let reordered = QueryPlan::builder()
            .objectives(&[Objective::TotalTdp, Objective::SafeVelocity])
            .build()
            .unwrap();
        assert_ne!(base.key(), capped.key());
        assert_ne!(base.key(), reordered.key());
        assert_ne!(capped.key(), reordered.key());
    }

    #[test]
    fn key_round_trips_exactly() {
        let plan = sample_plan();
        let replayed = QueryPlan::from_key(plan.key()).unwrap();
        assert_eq!(plan, replayed);
        assert_eq!(plan.key(), replayed.key());

        // Including awkward float values.
        let tricky = QueryPlan::builder()
            .constraint(Constraint::MinVelocity(MetersPerSecond::new(1e-307)))
            .sweep(KnobSweep::new(Knob::SensorRangeScale, vec![1e-307, 3.5]))
            .build()
            .unwrap();
        assert_eq!(QueryPlan::from_key(tricky.key()).unwrap(), tricky);
    }

    #[test]
    fn malformed_keys_are_rejected() {
        for bad in [
            "",
            "f2.plan.v9|o=velocity",
            "f1.plan.v1|o=velocity", // missing profile
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto", // missing t2
            "f1.plan.v1|o=warp|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=-", // bad objective
            "f1.plan.v1|o=velocity|c=max_tdp=x|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=-",
            "f1.plan.v1|o=velocity|c=|s=warp:1|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=-",
            "f1.plan.v1|o=velocity|c=|s=|af=1,zz|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=-",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=?|mp=0.65,0.08,0.8|kp=auto|t2=-",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08|kp=auto|t2=-",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=sometimes|t2=-",
            // tier-2 section: missing budget, unknown objective, bad
            // trials, bad budget, empty objective list, non-canonical
            // duplicate kind.
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=robustness:8",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=warp@16",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=robustness:x@16",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=p99@zz",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=@16",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=p99;p99@16",
        ] {
            let err = QueryPlan::from_key(bad).unwrap_err();
            assert!(
                matches!(err, SkylineError::PlanKey { .. }),
                "{bad:?} gave {err:?}"
            );
        }
        // A parseable key still re-runs semantic validation.
        let err = QueryPlan::from_key(
            "f1.plan.v1|o=endurance|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=-",
        )
        .unwrap_err();
        assert!(matches!(err, SkylineError::IncompleteSystem { .. }));
        // ...including tier-2 domain validation (trials and budget out
        // of range parse fine but fail the build).
        for bad in [
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=robustness:0@16",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=robustness:99999@16",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=p99@0",
            "f1.plan.v1|o=velocity|c=|s=|af=*|sn=*|cp=*|al=*|b=-|mp=0.65,0.08,0.8|kp=auto|t2=p99@65",
        ] {
            let err = QueryPlan::from_key(bad).unwrap_err();
            assert!(
                matches!(err, SkylineError::Tier2 { .. }),
                "{bad:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn tier2_section_is_part_of_the_key_and_round_trips() {
        let analytic = QueryPlan::builder().build().unwrap();
        assert!(!analytic.has_tier2());
        assert!(analytic.key().ends_with("|t2=-"));
        assert_eq!(analytic.survivor_budget(), DEFAULT_SURVIVOR_BUDGET);

        let two_tier = QueryPlan::builder()
            .sim_objective(SimObjective::MissionRobustness { trials: 32 })
            .sim_objective(SimObjective::PipelineP99Latency)
            .survivor_budget(16)
            .build()
            .unwrap();
        assert!(two_tier.has_tier2());
        assert!(two_tier.key().ends_with("|t2=robustness:32;p99@16"));
        assert_eq!(two_tier.survivor_budget(), 16);
        assert_ne!(two_tier.key(), analytic.key());
        let replayed = QueryPlan::from_key(two_tier.key()).unwrap();
        assert_eq!(replayed, two_tier);
        assert_eq!(replayed.sim_objectives(), two_tier.sim_objectives());

        // Duplicate kinds dedup (first wins), like analytic objectives.
        let dup = QueryPlan::builder()
            .sim_objective(SimObjective::MissionRobustness { trials: 8 })
            .sim_objective(SimObjective::MissionRobustness { trials: 99 })
            .build()
            .unwrap();
        assert_eq!(
            dup.sim_objectives(),
            [SimObjective::MissionRobustness { trials: 8 }]
        );

        // A budget without sim objectives is inert and canonicalizes
        // away: same key, same plan, default budget.
        let budget_only = QueryPlan::builder().survivor_budget(16).build().unwrap();
        assert_eq!(budget_only.key(), analytic.key());
        assert_eq!(budget_only, analytic);
        assert_eq!(budget_only.survivor_budget(), DEFAULT_SURVIVOR_BUDGET);
    }

    #[test]
    fn tier2_build_validation() {
        assert!(matches!(
            QueryPlan::builder()
                .sim_objective(SimObjective::MissionRobustness { trials: 0 })
                .build()
                .unwrap_err(),
            SkylineError::Tier2 { .. }
        ));
        assert!(matches!(
            QueryPlan::builder()
                .sim_objective(SimObjective::PipelineP99Latency)
                .survivor_budget(0)
                .build()
                .unwrap_err(),
            SkylineError::Tier2 { .. }
        ));
        assert!(matches!(
            QueryPlan::builder()
                .sim_objective(SimObjective::PipelineP99Latency)
                .survivor_budget(crate::shard::STREAM_TOP_K + 1)
                .build()
                .unwrap_err(),
            SkylineError::Tier2 { .. }
        ));
    }

    #[test]
    fn keep_points_is_part_of_the_key_and_round_trips() {
        let auto = QueryPlan::builder().build().unwrap();
        assert_eq!(auto.keep_points(), KeepPoints::Auto);
        for kp in [KeepPoints::All, KeepPoints::FrontierOnly] {
            let plan = QueryPlan::builder().keep_points(kp).build().unwrap();
            assert_eq!(plan.keep_points(), kp);
            assert_ne!(plan.key(), auto.key());
            let replayed = QueryPlan::from_key(plan.key()).unwrap();
            assert_eq!(replayed, plan);
            assert_eq!(replayed.keep_points(), kp);
        }
    }

    #[test]
    fn duplicate_subspace_ids_and_settings_canonicalize_at_build() {
        // Duplicate ids collapse to the clean spelling — same key, same
        // cache identity, and repair no longer sees duplicates at all.
        let dup = QueryPlan::builder()
            .airframes(&[
                AirframeId::from_index(1),
                AirframeId::from_index(0),
                AirframeId::from_index(1),
            ])
            .computes(&[ComputeId::from_index(2), ComputeId::from_index(2)])
            .build()
            .unwrap();
        let clean = QueryPlan::builder()
            .airframes(&[AirframeId::from_index(1), AirframeId::from_index(0)])
            .computes(&[ComputeId::from_index(2)])
            .build()
            .unwrap();
        assert_eq!(dup.key(), clean.key());
        assert_eq!(dup, clean);
        // First occurrence wins, order preserved.
        assert_eq!(
            dup.airframes().unwrap(),
            [AirframeId::from_index(1), AirframeId::from_index(0)]
        );

        // Duplicate sweep values dedupe within each sweep (they can
        // only expand to duplicate composed settings), so the sloppy
        // spelling shares its key — and cache entry — with the clean
        // one.
        let swept = QueryPlan::builder()
            .sweep(KnobSweep::new(Knob::TdpScale, vec![0.5, 0.5]))
            .build()
            .unwrap();
        assert_eq!(swept.settings().len(), 1);
        assert_eq!(swept.settings()[0].tdp_scale, 0.5);
        assert_eq!(swept.sweeps().len(), 1);
        assert_eq!(swept.sweeps()[0].values(), [0.5]);
        let clean_swept = QueryPlan::builder()
            .sweep(KnobSweep::new(Knob::TdpScale, vec![0.5]))
            .build()
            .unwrap();
        assert_eq!(swept.key(), clean_swept.key());
        assert_eq!(swept, clean_swept);
    }

    #[test]
    fn build_validates_like_the_borrowed_query() {
        assert!(matches!(
            QueryPlan::builder()
                .objective(Objective::HoverEnduranceMin)
                .build()
                .unwrap_err(),
            SkylineError::IncompleteSystem { .. }
        ));
        assert!(QueryPlan::builder()
            .sweep(KnobSweep::new(Knob::TdpScale, vec![0.0]))
            .build()
            .is_err());
        assert!(QueryPlan::builder()
            .mission_profile(MissionProfile {
                figure_of_merit: 1.5,
                ..MissionProfile::default()
            })
            .build()
            .is_err());
        // Stacked payload deltas summing to +∞ fail at build.
        assert!(matches!(
            QueryPlan::builder()
                .sweep(KnobSweep::new(Knob::PayloadDelta, vec![1e308]))
                .sweep(KnobSweep::new(Knob::PayloadDelta, vec![1e308]))
                .build()
                .unwrap_err(),
            SkylineError::KnobVariant {
                knob: "Payload Weight",
                ..
            }
        ));
    }

    #[test]
    fn settings_expand_as_cartesian_product() {
        let plan = sample_plan();
        // 2 TDP scales × 2 weight scales.
        assert_eq!(plan.settings().len(), 4);
        assert!(plan.settings()[0].is_identity());
        assert_eq!(plan.settings()[3].tdp_scale, 0.5);
        assert_eq!(plan.settings()[3].weight_scale, 0.8);
    }
}
