//! The **execute** half of the compile/execute split: a shared-pass,
//! plan-cached [`Session`] over an `Arc<Catalog>`, and the columnar
//! [`ResultSet`] it produces.
//!
//! A [`Session`] is the serving-side counterpart of
//! [`Engine`](crate::dse::Engine): it owns its catalog (no lifetimes in
//! the public API), is `Send + Sync`, and executes owned
//! [`QueryPlan`]s:
//!
//! * [`Session::run_batch`] fuses a whole batch of plans into **one**
//!   parallel pass — candidates are enumerated and the momentum-theory
//!   outcome evaluated *once*, then each plan's constraint filter and
//!   objective rows are applied in-pass — so eight what-if questions
//!   over a 10⁵-candidate catalog cost barely more than one.
//! * Completed results are memoized under each plan's
//!   [canonical key](crate::plan::QueryPlan::key): a repeated query is a
//!   cache lookup returning the same `Arc<ResultSet>`, not a pass.
//!
//! ```
//! use std::sync::Arc;
//! use f1_components::Catalog;
//! use f1_skyline::plan::QueryPlan;
//! use f1_skyline::query::Objective;
//! use f1_skyline::session::Session;
//!
//! let session = Session::new(Arc::new(Catalog::paper()));
//! let plan = QueryPlan::builder()
//!     .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
//!     .build()?;
//! let result = session.run(&plan)?;          // one fused pass
//! let again = session.run(&plan)?;           // plan-cache hit
//! assert!(Arc::ptr_eq(&result, &again));
//! let top = result.top_k(3);                 // bounded-heap, no full sort
//! assert_eq!(top, &result.ranked()[..3]);
//! # Ok::<(), f1_skyline::SkylineError>(())
//! ```

use std::borrow::Cow;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

use f1_components::{
    Airframe, AirframeId, AlgorithmId, Catalog, CatalogEpoch, CatalogStore, ComponentError,
    ComputeId, ComputePlatform, EpochSnapshot, Sensor, SensorId, ThroughputTable,
};
use f1_model::heatsink::HeatsinkModel;
use f1_model::mission::{hover_endurance, PowerModel};
use f1_model::roofline::Saturation;
use f1_units::{Grams, Hertz, Meters};
use serde::{Deserialize, Serialize};

use crate::dse::{evaluate_parts_with, Candidate, Outcome};
use crate::plan::QueryPlan;
use crate::query::{
    Constraint, Knob, KnobSetting, MissionProfile, Objective, QueryPoint, MAX_OBJECTIVES,
};
use crate::sweep::parallel_map_indices;
use crate::tier2::{SharedTier2, SimBlock, SimStats, Tier2Context};
use crate::{frontier, SkylineError};

// ---------------------------------------------------------------------
// ResultSet
// ---------------------------------------------------------------------

/// The columnar result of executing one plan: every evaluated point that
/// passed the constraints, per-objective value columns, and the Pareto
/// frontier.
///
/// Objective values are stored **column-major** — one contiguous
/// `Vec<f64>` per objective ([`column`](Self::column)) — the layout a
/// serving tier wants for export, streaming top-k selection and
/// columnar analytics. Point identity (airframe, candidate, knob
/// setting, outcome) stays row-wise in [`points`](Self::points).
///
/// Ranked access scales down gracefully: [`top_k`](Self::top_k) selects
/// the best *k* with a bounded heap in O(n log k) without materializing
/// the full ranking, [`pages`](Self::pages) iterates fixed-size windows
/// for paged serving, and [`ranked`](Self::ranked) still materializes
/// everything when asked.
///
/// The serde derives are inert markers today (`crates/ext/serde`); the
/// working export format is [`to_json`](Self::to_json).
///
/// Internally, result sets produced by one shared-pass batch all point
/// into **one** `Arc`-shared store of evaluated points (a plan holds
/// the indices its constraints kept), so an 8-plan batch materializes
/// the heavyweight point rows once, not eight times. [`point`] and the
/// iterators read through the indirection for free;
/// [`points`](Self::points) materializes a contiguous slice lazily on
/// first call.
///
/// # Streamed mode
///
/// Plans whose [`KeepPoints`](crate::plan::KeepPoints) policy resolves
/// to streaming are executed by the sharded streaming executor
/// ([`crate::shard`]), which never materializes the full point store:
/// the result keeps the Pareto frontier, a bounded top-k
/// ([`crate::shard::STREAM_TOP_K`] indices) and the accounting
/// counters, all **bit-identical** to the materializing pass and still
/// addressed by the same global enumeration indices. Accessors that
/// need an arbitrary point ([`points`](Self::points),
/// [`minimized_keys`](Self::minimized_keys), [`point`](Self::point) on
/// a non-stored index) panic with a clear message in streamed mode;
/// [`frontier`](Self::frontier), [`top_k`](Self::top_k),
/// [`best`](Self::best), [`to_json`](Self::to_json) and the counters
/// work in both. [`is_streamed`](Self::is_streamed) and
/// [`stored_indices`](Self::stored_indices) report the mode.
///
/// [`point`]: Self::point
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultSet {
    objectives: Vec<Objective>,
    /// Point storage **segments**. Segment 0 is the producing pass's
    /// store (the points at least one plan of the batch kept, in
    /// enumeration order, shared across the batch); incremental delta
    /// repair splices the slab passes' stores as further segments, so a
    /// repaired result shares the surviving point rows with the result
    /// it was repaired from instead of duplicating tens of megabytes.
    segments: Vec<Arc<Vec<QueryPoint>>>,
    /// References into `segments` this plan kept, in enumeration order
    /// (`None`: segment 0 *is* the point list).
    kept: Option<Vec<PointRef>>,
    /// Lazily materialized contiguous point list for
    /// [`points`](Self::points) when `kept` is `Some`.
    points_cache: std::sync::OnceLock<Vec<QueryPoint>>,
    /// One column per objective, each `len()` long, in each objective's
    /// natural (unnegated) unit.
    columns: Vec<Vec<f64>>,
    frontier: Vec<usize>,
    uncharacterized: usize,
    dropped: usize,
    nonfinite: usize,
    /// `Some` when this result was produced by the streaming executor:
    /// segment 0 holds only the stored (frontier ∪ top-k) points and
    /// `columns` only their rows, while indices everywhere stay global.
    streamed: Option<StreamedMeta>,
    /// The tier-2 simulation block, attached by the session after the
    /// tier-1 pass for plans with sim objectives (see [`crate::tier2`]).
    /// Part of the result's logical identity: memoized, spilled and
    /// equality-compared with everything else.
    sim: Option<SimBlock>,
}

/// The streamed-mode bookkeeping of a [`ResultSet`]: how many points
/// the plan logically kept, which global indices were materialized, and
/// the bounded top-k ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct StreamedMeta {
    /// Logical kept-point count (what `len()` reports).
    pub(crate) total_kept: usize,
    /// Ascending global indices of the stored points — row `r` of
    /// segment 0 and of every column is the point `stored[r]`.
    pub(crate) stored: Vec<usize>,
    /// Global indices of the best-ranked points, in rank order, at most
    /// [`crate::shard::STREAM_TOP_K`] of them. Always a subset of
    /// `stored`.
    pub(crate) topk: Vec<usize>,
}

impl PartialEq for ResultSet {
    /// Logical equality: same objectives, same point sequence (read
    /// through the shared store without materializing), same columns,
    /// frontier and accounting. Streamed results compare their stored
    /// subset (plus the streamed bookkeeping itself); a streamed and a
    /// materializing result are never equal — they answer different
    /// queries even when produced from the same plan shape.
    fn eq(&self, other: &Self) -> bool {
        self.objectives == other.objectives
            && self.len() == other.len()
            && self.columns == other.columns
            && self.frontier == other.frontier
            && self.uncharacterized == other.uncharacterized
            && self.dropped == other.dropped
            && self.nonfinite == other.nonfinite
            && self.streamed == other.streamed
            && self.sim == other.sim
            && match &self.streamed {
                None => (0..self.len()).all(|i| self.point(i) == other.point(i)),
                Some(meta) => meta.stored.iter().all(|&i| self.point(i) == other.point(i)),
            }
    }
}

/// One kept point's location in a [`ResultSet`]'s segmented store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PointRef {
    pub(crate) segment: u32,
    pub(crate) index: u32,
}

impl ResultSet {
    /// Builds a result whose `store` is exactly its kept point list.
    pub(crate) fn from_own_points(
        objectives: Vec<Objective>,
        points: Vec<QueryPoint>,
        columns: Vec<Vec<f64>>,
        frontier: Vec<usize>,
        uncharacterized: usize,
        dropped: usize,
        nonfinite: usize,
    ) -> Self {
        Self {
            objectives,
            segments: vec![Arc::new(points)],
            kept: None,
            points_cache: std::sync::OnceLock::new(),
            columns,
            frontier,
            uncharacterized,
            dropped,
            nonfinite,
            streamed: None,
            sim: None,
        }
    }

    /// Builds a streamed-mode result: `stored_points` (and the column
    /// rows) cover only the frontier ∪ top-k survivors, ascending by
    /// global index; `meta` carries the logical count and rankings.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_streamed(
        objectives: Vec<Objective>,
        stored_points: Vec<QueryPoint>,
        columns: Vec<Vec<f64>>,
        frontier: Vec<usize>,
        meta: StreamedMeta,
        uncharacterized: usize,
        dropped: usize,
        nonfinite: usize,
    ) -> Self {
        debug_assert_eq!(stored_points.len(), meta.stored.len());
        debug_assert!(meta.stored.windows(2).all(|w| w[0] < w[1]));
        Self {
            objectives,
            segments: vec![Arc::new(stored_points)],
            kept: None,
            points_cache: std::sync::OnceLock::new(),
            columns,
            frontier,
            uncharacterized,
            dropped,
            nonfinite,
            streamed: Some(meta),
            sim: None,
        }
    }

    /// Rebuilds a (materializing) result whose point store has grown
    /// many repair-spliced segments into a single contiguous segment.
    /// Logically equal to `self` (same points, columns, frontier and
    /// counters) — only the storage layout changes, trading one copy of
    /// the kept points for O(1)-segment reads afterwards.
    pub(crate) fn compacted(&self) -> Self {
        debug_assert!(self.streamed.is_none(), "streamed results have one segment");
        Self {
            objectives: self.objectives.clone(),
            segments: vec![Arc::new(self.points().to_vec())],
            kept: None,
            points_cache: std::sync::OnceLock::new(),
            columns: self.columns.clone(),
            frontier: self.frontier.clone(),
            uncharacterized: self.uncharacterized,
            dropped: self.dropped,
            nonfinite: self.nonfinite,
            streamed: None,
            sim: self.sim.clone(),
        }
    }

    /// Builds a result over an explicit segmented store — the
    /// incremental-repair constructor: surviving points reference the
    /// repaired result's segments, delta points reference the slab
    /// passes' stores.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_segments(
        objectives: Vec<Objective>,
        segments: Vec<Arc<Vec<QueryPoint>>>,
        kept: Vec<PointRef>,
        columns: Vec<Vec<f64>>,
        frontier: Vec<usize>,
        uncharacterized: usize,
        dropped: usize,
        nonfinite: usize,
    ) -> Self {
        Self {
            objectives,
            segments,
            kept: Some(kept),
            points_cache: std::sync::OnceLock::new(),
            columns,
            frontier,
            uncharacterized,
            dropped,
            nonfinite,
            streamed: None,
            sim: None,
        }
    }

    /// The point storage segments (for the repair path, which splices
    /// new segment lists from old ones).
    pub(crate) fn segments(&self) -> &[Arc<Vec<QueryPoint>>] {
        &self.segments
    }

    /// The segmented-store location of the point at `index`
    /// (materializing results only — repair never splices a streamed
    /// result).
    // analyze::allow(indexing, scope = "fn", reason = "callers pass indices < len(), the kept vec length — crate-internal accessor")
    pub(crate) fn point_ref(&self, index: usize) -> PointRef {
        debug_assert!(self.streamed.is_none());
        match &self.kept {
            None => PointRef {
                segment: 0,
                index: index as u32,
            },
            Some(kept) => kept[index],
        }
    }

    /// Whether this result was produced in streamed mode (frontier +
    /// top-k + accounting only; see the type-level *streamed mode*
    /// section).
    #[must_use]
    pub fn is_streamed(&self) -> bool {
        self.streamed.is_some()
    }

    /// Global indices of the materialized points of a streamed result
    /// (the frontier ∪ top-k survivors), ascending; `None` for a
    /// materializing result, where every index `0..len()` is available.
    #[must_use]
    pub fn stored_indices(&self) -> Option<&[usize]> {
        self.streamed.as_ref().map(|m| m.stored.as_slice())
    }

    /// Number of point-store segments (1 after a cold pass or
    /// compaction; delta repair splices more). Diagnostic — the
    /// accessors hide segmentation entirely.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Maps a global point index to its row position in the stored
    /// columns/points, panicking for an index a streamed result did not
    /// keep.
    // analyze::allow(panic, scope = "fn", reason = "documented `# Panics` contract for unstored streamed indices; serving code routes through try_point")
    fn row_pos(&self, index: usize) -> usize {
        match &self.streamed {
            None => index,
            Some(meta) => meta.stored.binary_search(&index).unwrap_or_else(|_| {
                panic!(
                    "point {index} is not materialized in this streamed result \
                     (only the frontier and top-k are stored; see stored_indices())"
                )
            }),
        }
    }

    /// Number of stored rows (= `len()` for materializing results, the
    /// stored-subset size for streamed ones).
    fn rows_len(&self) -> usize {
        self.streamed
            .as_ref()
            .map_or_else(|| self.len(), |m| m.stored.len())
    }

    /// The global index of stored row `r` (identity when materializing).
    // analyze::allow(indexing, scope = "fn", reason = "r ranges over rows_len() == stored.len() at every call site")
    fn row_global(&self, r: usize) -> usize {
        self.streamed.as_ref().map_or(r, |m| m.stored[r])
    }

    /// The plan's objectives, primary first.
    #[must_use]
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// The point at `index`, in deterministic enumeration order
    /// (airframe-major, then knob setting, then sensor × compute ×
    /// algorithm in name order). Reads through the batch-shared store —
    /// prefer this (or the iterators) over [`points`](Self::points) when
    /// a contiguous slice isn't needed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range, or if a streamed result did
    /// not store the point (only frontier and top-k indices are
    /// addressable then).
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "documented `# Panics` accessor; try_point is the checked sibling the serving tier uses")
    pub fn point(&self, index: usize) -> &QueryPoint {
        if self.streamed.is_some() {
            return &self.segments[0][self.row_pos(index)];
        }
        match &self.kept {
            None => &self.segments[0][index],
            Some(kept) => {
                let r = kept[index];
                &self.segments[r.segment as usize][r.index as usize]
            }
        }
    }

    /// Non-panicking [`point`](Self::point): `None` when `index` is out
    /// of range, or when a streamed result did not materialize the
    /// point (only frontier ∪ top-k indices are stored then). This is
    /// the accessor a serving tier should route client-supplied indices
    /// through — a bad request becomes a structured error, not a dead
    /// worker.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "every index is checked against len() or comes from a binary_search hit")
    pub fn try_point(&self, index: usize) -> Option<&QueryPoint> {
        if index >= self.len() {
            return None;
        }
        match &self.streamed {
            Some(meta) => {
                let r = meta.stored.binary_search(&index).ok()?;
                Some(&self.segments[0][r])
            }
            None => match &self.kept {
                None => Some(&self.segments[0][index]),
                Some(kept) => {
                    let r = kept[index];
                    Some(&self.segments[r.segment as usize][r.index as usize])
                }
            },
        }
    }

    /// Non-panicking [`points`](Self::points): `None` for a streamed
    /// result, whose full point list was never materialized (use
    /// [`stored_indices`](Self::stored_indices) with
    /// [`try_point`](Self::try_point) instead).
    #[must_use]
    pub fn try_points(&self) -> Option<&[QueryPoint]> {
        if self.streamed.is_some() {
            return None;
        }
        Some(self.points())
    }

    /// Non-panicking [`row`](Self::row): the objective values of point
    /// `index` across the columns, `None` when the index is out of
    /// range or unstored in a streamed result.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "row index is a binary_search hit or checked against len(); columns are row-aligned")
    pub fn try_row(&self, index: usize) -> Option<Vec<f64>> {
        if index >= self.len() {
            return None;
        }
        let r = match &self.streamed {
            Some(meta) => meta.stored.binary_search(&index).ok()?,
            None => index,
        };
        Some(self.columns.iter().map(|c| c[r]).collect())
    }

    /// Every kept point as a contiguous slice, in enumeration order.
    /// When this result shares a batch's point store and kept only a
    /// subset, the slice is materialized lazily on first call (and
    /// cached); [`point`](Self::point), [`iter_points`](Self::iter_points)
    /// and the ranked/paged accessors never pay that copy.
    ///
    /// # Panics
    ///
    /// Panics on a streamed result — the full point list was never
    /// materialized. Use [`stored_indices`](Self::stored_indices) with
    /// [`point`](Self::point), or [`iter_points`](Self::iter_points),
    /// which yields the stored subset.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "segment 0 always exists; kept refs were built in-range by the enumeration pass")
    pub fn points(&self) -> &[QueryPoint] {
        assert!(
            self.streamed.is_none(),
            "a streamed result set does not materialize every point; \
             use stored_indices()/point(i) or iter_points()"
        );
        match &self.kept {
            None => &self.segments[0],
            Some(kept) => self.points_cache.get_or_init(|| {
                kept.iter()
                    .map(|r| self.segments[r.segment as usize][r.index as usize])
                    .collect()
            }),
        }
    }

    /// Iterates the stored points in enumeration order, reading through
    /// the shared store. For a materializing result that is every kept
    /// point; for a streamed one, the stored (frontier ∪ top-k) subset.
    pub fn iter_points(&self) -> impl Iterator<Item = &QueryPoint> {
        (0..self.rows_len()).map(|r| self.point(self.row_global(r)))
    }

    /// Number of points the plan kept. In streamed mode this is the
    /// logical count — how many candidates passed the constraints — not
    /// the (much smaller) number of stored points.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "segments is never empty: every constructor seeds segment 0")
    pub fn len(&self) -> usize {
        if let Some(meta) = &self.streamed {
            return meta.total_kept;
        }
        self.kept.as_ref().map_or(self.segments[0].len(), Vec::len)
    }

    /// Whether the result holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The contiguous value column of the objective at `position` in
    /// [`objectives`](Self::objectives). In streamed mode the column
    /// holds only the stored rows, aligned with
    /// [`stored_indices`](Self::stored_indices).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "documented `# Panics` contract; column_for is the checked sibling")
    pub fn column(&self, position: usize) -> &[f64] {
        &self.columns[position]
    }

    /// The value column of `objective`, if the plan carried it.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "position comes from iter().position over the same objectives vec")
    pub fn column_for(&self, objective: Objective) -> Option<&[f64]> {
        self.objectives
            .iter()
            .position(|&o| o == objective)
            .map(|pos| self.columns[pos].as_slice())
    }

    /// The value of point `index` under the objective at `position`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range, or if a streamed result
    /// did not store the point.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "documented `# Panics` contract; the row index is validated by row_pos")
    pub fn value(&self, index: usize, position: usize) -> f64 {
        self.columns[position][self.row_pos(index)]
    }

    /// The objective values of point `index` gathered across the
    /// columns, aligned with [`objectives`](Self::objectives).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range, or if a streamed result did
    /// not store the point.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "row index validated by row_pos; columns are row-aligned")
    pub fn row(&self, index: usize) -> Vec<f64> {
        let r = self.row_pos(index);
        self.columns.iter().map(|c| c[r]).collect()
    }

    /// Indices (into [`points`](Self::points)) of the Pareto frontier
    /// over all objectives jointly, ascending. Only feasible points with
    /// finite objective values participate.
    #[must_use]
    pub fn frontier(&self) -> &[usize] {
        &self.frontier
    }

    /// The frontier as points, in enumeration order.
    pub fn frontier_points(&self) -> impl Iterator<Item = &QueryPoint> {
        self.frontier.iter().map(|&i| self.point(i))
    }

    /// The rank comparator: feasible before infeasible, then by the
    /// primary objective, ties in enumeration order. Total.
    // analyze::allow(indexing, scope = "fn", reason = "comparator only sees indices < len() produced by the ranking loops")
    fn rank_cmp(&self, a: usize, b: usize) -> Ordering {
        self.point(b)
            .outcome
            .feasible
            .cmp(&self.point(a).outcome.feasible)
            .then_with(|| {
                let (va, vb) = (self.columns[0][a], self.columns[0][b]);
                if self.objectives[0].maximize() {
                    vb.total_cmp(&va)
                } else {
                    va.total_cmp(&vb)
                }
            })
            .then_with(|| a.cmp(&b))
    }

    /// Indices of all points ranked best-first: feasible before
    /// infeasible, then by the **primary** (first) objective; ties keep
    /// enumeration order. Materializes and sorts the full index vector —
    /// prefer [`top_k`](Self::top_k) when only the head is needed.
    ///
    /// A streamed result returns its bounded top-k ranking (at most
    /// [`crate::shard::STREAM_TOP_K`] indices) — the exact prefix of
    /// what the full ranking would have been.
    #[must_use]
    pub fn ranked(&self) -> Vec<usize> {
        if let Some(meta) = &self.streamed {
            return meta.topk.clone();
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_unstable_by(|&a, &b| self.rank_cmp(a, b));
        order
    }

    /// The best `k` point indices in rank order, selected with a bounded
    /// heap in O(n log k) — no full sort, no O(n) ranking allocation
    /// beyond the heap. Equals `ranked()[..k]` exactly (including tie
    /// order). `k` larger than the result just returns the full ranking.
    ///
    /// A streamed result serves the prefix of its bounded top-k
    /// ranking; `k` beyond [`crate::shard::STREAM_TOP_K`] clamps to
    /// what was kept.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "slice bound is clamped to the stored top-k length first")
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        if let Some(meta) = &self.streamed {
            return meta.topk[..k.min(meta.topk.len())].to_vec();
        }
        let k = k.min(self.len());
        if k == 0 {
            return Vec::new();
        }
        // Max-heap ordered worst-first via `Reverse`-free trick: the heap
        // key inverts the rank comparator, so `peek` is the worst kept
        // index and a better candidate evicts it.
        struct Key<'a> {
            set: &'a ResultSet,
            index: usize,
        }
        impl PartialEq for Key<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.index == other.index
            }
        }
        impl Eq for Key<'_> {}
        impl PartialOrd for Key<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Key<'_> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Greater = worse, so BinaryHeap's max is the eviction
                // candidate.
                self.set.rank_cmp(self.index, other.index)
            }
        }
        let mut heap: BinaryHeap<Key<'_>> = BinaryHeap::with_capacity(k + 1);
        for index in 0..self.len() {
            let key = Key { set: self, index };
            if heap.len() < k {
                heap.push(key);
            } else if let Some(worst) = heap.peek() {
                if key.cmp(worst) == Ordering::Less {
                    heap.pop();
                    heap.push(key);
                }
            }
        }
        heap.into_sorted_vec()
            .into_iter()
            .map(|k| k.index)
            .collect()
    }

    /// The best feasible point by the primary objective, if any —
    /// bounded-heap selection, no full ranking.
    #[must_use]
    pub fn best(&self) -> Option<&QueryPoint> {
        self.top_k(1)
            .first()
            .map(|&i| self.point(i))
            .filter(|p| p.outcome.feasible)
    }

    /// One fixed-size window of the result, for paged serving.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero (`offset` past the end just yields an
    /// empty page).
    #[must_use]
    pub fn page(&self, offset: usize, limit: usize) -> ResultPage<'_> {
        assert!(limit > 0, "page limit must be positive");
        let start = offset.min(self.len());
        let end = offset.saturating_add(limit).min(self.len());
        ResultPage {
            set: self,
            start,
            end,
        }
    }

    /// Iterates the whole result as consecutive pages of at most
    /// `limit` points, in enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn pages(&self, limit: usize) -> impl Iterator<Item = ResultPage<'_>> {
        assert!(limit > 0, "page limit must be positive");
        (0..self.len().div_ceil(limit)).map(move |p| self.page(p * limit, limit))
    }

    /// Sensor × compute × algorithm combinations skipped **per airframe
    /// and knob setting** because the platform × algorithm pair was never
    /// characterized.
    #[must_use]
    pub fn uncharacterized(&self) -> usize {
        self.uncharacterized
    }

    /// Number of evaluated points rejected by the plan's constraints.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of **feasible** points whose objective row contains a
    /// non-finite value (e.g. [`Objective::MissionEnergyWhPerKm`] at a
    /// vanishing achieved velocity → `+∞`). Such points stay in
    /// [`points`](Self::points) and the ranked report but cannot
    /// participate in the frontier, which is defined over finite keys
    /// only — this counter is the accounting for that exclusion, so no
    /// feasible point ever vanishes silently.
    #[must_use]
    pub fn nonfinite(&self) -> usize {
        self.nonfinite
    }

    /// The tier-2 simulation block, when this result was produced by a
    /// plan with sim objectives on a session with a
    /// [`Tier2Evaluator`](crate::tier2::Tier2Evaluator) installed.
    #[must_use]
    pub fn sim(&self) -> Option<&SimBlock> {
        self.sim.as_ref()
    }

    /// Returns this result with `block` attached as its tier-2 sim
    /// block (session-internal: the block is computed once per
    /// `(plan key, epoch)` and memoized with the result).
    pub(crate) fn with_sim(mut self, block: SimBlock) -> Self {
        self.sim = Some(block);
        self
    }

    /// The tier-1 **survivor set** a tier-2 pass simulates: Pareto
    /// frontier ∪ the best `budget` ranked indices, deduplicated,
    /// ascending. Works identically in materializing and streamed mode
    /// for `budget ≤ `[`STREAM_TOP_K`](crate::shard::STREAM_TOP_K) —
    /// a streamed result stores exactly frontier ∪ top-k, so every
    /// survivor is addressable via [`point`](Self::point)/[`value`](Self::value).
    #[must_use]
    pub fn survivors(&self, budget: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.frontier.clone();
        out.extend(self.top_k(budget));
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The frontier's input domain: minimized objective-key rows
    /// (maximize objectives negated) for every feasible point with
    /// finite values, plus the map from key-row position back to the
    /// index in [`points`](Self::points). This is exactly what
    /// [`frontier`](Self::frontier) was computed from — benchmarks and
    /// tests that compare skyline algorithms against the naive scan
    /// should extract keys through here so they keep measuring the
    /// production path. Feasible points skipped for non-finite rows are
    /// counted by [`nonfinite`](Self::nonfinite).
    ///
    /// # Panics
    ///
    /// Panics on a streamed result: the full key domain was reduced
    /// shard-by-shard and never materialized.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "i < len() and columns are row-aligned with the point list")
    pub fn minimized_keys(&self) -> (Vec<f64>, Vec<usize>) {
        assert!(
            self.streamed.is_none(),
            "a streamed result set never materialized its full frontier key domain"
        );
        let mut keys = Vec::new();
        let mut map = Vec::new();
        'points: for i in 0..self.len() {
            let point = self.point(i);
            if !point.outcome.feasible {
                continue;
            }
            for column in &self.columns {
                if !column[i].is_finite() {
                    continue 'points;
                }
            }
            map.push(i);
            keys.extend(self.columns.iter().zip(&self.objectives).map(|(c, o)| {
                if o.maximize() {
                    -c[i]
                } else {
                    c[i]
                }
            }));
        }
        (keys, map)
    }

    /// Serializes the result for serving: a self-describing JSON
    /// document with the objective schema, the per-objective value
    /// columns (column-major, `null` for non-finite values — JSON has
    /// no `Infinity`), the catalog-resolved build identity of every
    /// point, the frontier indices and the accounting counters. The
    /// catalog must be the one the plan executed against.
    ///
    /// A streamed result exports its stored (frontier ∪ top-k) rows
    /// plus a `"stored"` array mapping each row to its global index
    /// (`"count"` stays the logical kept count), so consumers can tell
    /// the modes apart.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "pos enumerates self.objectives; columns are objective-aligned by construction")
    pub fn to_json(&self, catalog: &Catalog) -> String {
        let mut out = String::with_capacity(64 + self.len() * 96);
        out.push_str("{\n  \"objectives\": [");
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"label\": {}, \"unit\": {}, \"maximize\": {}}}",
                json_string(o.label()),
                json_string(o.unit()),
                o.maximize()
            ));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"count\": {}, \"dropped\": {}, \"uncharacterized\": {}, \"nonfinite\": {},\n",
            self.len(),
            self.dropped,
            self.uncharacterized,
            self.nonfinite
        ));
        if let Some(meta) = &self.streamed {
            out.push_str("  \"stored\": [");
            for (i, g) in meta.stored.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&g.to_string());
            }
            out.push_str("],\n");
        }
        out.push_str("  \"columns\": {");
        for (pos, objective) in self.objectives.iter().enumerate() {
            if pos > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_string(objective.label()));
            out.push_str(": [");
            for (i, v) in self.columns[pos].iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_number(*v));
            }
            out.push(']');
        }
        out.push_str("},\n  \"builds\": [");
        for i in 0..self.rows_len() {
            let point = self.point(self.row_global(i));
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"airframe\": ");
            out.push_str(&json_string(catalog.airframe_by_id(point.airframe).name()));
            out.push_str(", \"sensor\": ");
            out.push_str(&json_string(
                catalog.sensor_by_id(point.candidate.sensor).name(),
            ));
            out.push_str(", \"compute\": ");
            out.push_str(&json_string(
                catalog.compute_by_id(point.candidate.compute).name(),
            ));
            out.push_str(", \"algorithm\": ");
            out.push_str(&json_string(
                catalog.algorithm_by_id(point.candidate.algorithm).name(),
            ));
            out.push_str(&format!(", \"feasible\": {}", point.outcome.feasible));
            if !point.setting.is_identity() {
                let s = &point.setting;
                out.push_str(&format!(
                    ", \"setting\": {{\"tdp_scale\": {}, \"sensor_rate_scale\": {}, \
                     \"sensor_range_scale\": {}, \"payload_delta_g\": {}, \
                     \"weight_scale\": {}, \"rotor_pull_scale\": {}}}",
                    json_number(s.tdp_scale),
                    json_number(s.sensor_rate_scale),
                    json_number(s.sensor_range_scale),
                    json_number(s.payload_delta.get()),
                    json_number(s.weight_scale),
                    json_number(s.rotor_pull_scale),
                ));
            }
            out.push('}');
        }
        out.push_str("\n  ],\n  \"frontier\": [");
        for (i, f) in self.frontier.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_string());
        }
        out.push(']');
        if let Some(sim) = &self.sim {
            out.push_str(",\n  \"sim\": {\n    \"objectives\": [");
            for (i, o) in sim.objectives.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"label\": {}, \"maximize\": {}}}",
                    json_string(o.label()),
                    o.maximize()
                ));
            }
            out.push_str("],\n    \"survivors\": [");
            for (i, row) in sim.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"id\": {}, \"index\": {}, \"values\": [",
                    row.candidate_id, row.index
                ));
                for (j, v) in row.values.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_number(*v));
                }
                out.push_str("]}");
            }
            out.push_str("\n    ],\n    \"report\": [");
            for (i, entry) in sim.report.entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n      {{\"objective\": {}, \"analytic\": {}, \"tau\": {}, \
                     \"agreement\": {}, \"outliers\": [{}]}}",
                    json_string(entry.objective.label()),
                    json_string(entry.analytic.label()),
                    json_number(entry.tau),
                    json_number(entry.agreement),
                    entry
                        .outliers
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
            out.push_str("\n    ]\n  }");
        }
        out.push_str("\n}\n");
        out
    }
}

/// One fixed-size window of a [`ResultSet`], for paged serving.
#[derive(Debug, Clone, Copy)]
pub struct ResultPage<'a> {
    set: &'a ResultSet,
    start: usize,
    end: usize,
}

impl<'a> ResultPage<'a> {
    /// Index of the first point in this page.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.start
    }

    /// Number of points in this page.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the page is empty (offset past the end).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The page's points, in enumeration order (materializes the parent
    /// result's contiguous point list on first access — see
    /// [`ResultSet::points`]).
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "page bounds were clamped to the result length in page()")
    pub fn points(&self) -> &'a [QueryPoint] {
        &self.set.points()[self.start..self.end]
    }

    /// The page's slice of an objective's value column.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    #[must_use]
    // analyze::allow(indexing, scope = "fn", reason = "documented `# Panics` contract; page bounds clamped in page()")
    pub fn column(&self, position: usize) -> &'a [f64] {
        &self.set.columns[position][self.start..self.end]
    }

    /// Iterates `(result index, point)` pairs of the page.
    pub fn rows(self) -> impl Iterator<Item = (usize, &'a QueryPoint)> {
        let start = self.start;
        self.points()
            .iter()
            .enumerate()
            .map(move |(i, p)| (start + i, p))
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

// ---------------------------------------------------------------------
// The fused shared-pass executor
// ---------------------------------------------------------------------

/// Everything a pass needs, borrowed: both [`Engine`](crate::dse::Engine)
/// (catalog by reference) and [`Session`] (catalog behind `Arc`) project
/// themselves into one of these, so the borrowed compatibility query and
/// the owned serving path execute the **same** code.
pub(crate) struct PassContext<'a> {
    pub catalog: &'a Catalog,
    pub airframes: &'a [AirframeId],
    pub sensors: &'a [SensorId],
    pub computes: &'a [ComputeId],
    pub algorithms: &'a [AlgorithmId],
    pub table: &'a ThroughputTable,
    pub heatsink: &'a HeatsinkModel,
    pub saturation: Saturation,
    pub chunk_size: Option<usize>,
}

impl PassContext<'_> {
    pub(crate) fn chunk_size_for(&self, jobs: usize) -> usize {
        self.chunk_size
            .unwrap_or_else(|| crate::sweep::auto_chunk_size(jobs))
    }
}

/// Pre-built component variants for one knob setting, indexed by
/// position in the group's resolved sensor/compute/airframe lists.
/// Shared with the sharded streaming executor ([`crate::shard`]), which
/// resolves settings through the same construction so both executors
/// evaluate byte-identical parts.
pub(crate) struct VariantParts {
    pub(crate) sensors: Vec<Sensor>,
    pub(crate) computes: Vec<ComputePlatform>,
    /// `Some` only when the setting scales an airframe knob (drone
    /// weight / rotor pull); `None` shares the stock catalog airframes.
    pub(crate) airframes: Option<Vec<Airframe>>,
    pub(crate) extra_payload: Grams,
}

/// An indexed candidate: the public [`Candidate`] plus positions into
/// the group's resolved lists (for variant lookup without id → position
/// maps in the hot loop).
#[derive(Clone, Copy)]
struct IndexedCandidate {
    candidate: Candidate,
    sensor_pos: u32,
    compute_pos: u32,
}

/// One odd-profile plan's verdict on one evaluated job. Plans whose
/// mission profile differs from the group's shared profile cannot read
/// the shared per-job value cache, so the pass materializes their rows
/// explicitly (a rare path — co-profiled batches produce no rows at
/// all).
enum PlanRow {
    /// Rejected by a constraint.
    Dropped,
    /// Passed every constraint: objective row (the first
    /// `objectives.len()` slots are meaningful).
    Kept([f64; MAX_OBJECTIVES]),
}

/// Per-job output of the fused pass: the shared outcome, the bitmask of
/// member plans whose constraints admit it, the shared-profile value
/// cache (each objective computed **once** per job, in
/// [`Objective::ALL`] order, `NaN` where no kept plan needs it), and —
/// only when the group has odd-profile members — their materialized
/// rows. Everything is inline except the rare odd-row vector
/// (`Vec::new()` does not allocate), so a batch pass stays as
/// allocation-free per job as the single-plan pass.
type JobOut = (Outcome, u64, [f64; MAX_OBJECTIVES], Vec<PlanRow>);

/// Validates that every id a plan carries is in range for the catalog.
fn validate_plan_ids(ctx: &PassContext<'_>, plan: &QueryPlan) -> Result<(), SkylineError> {
    fn check<T: Copy>(
        ids: Option<&[T]>,
        index: impl Fn(T) -> usize,
        count: usize,
        family: &'static str,
    ) -> Result<(), SkylineError> {
        for &id in ids.unwrap_or_default() {
            if index(id) >= count {
                return Err(SkylineError::PlanCatalog {
                    family,
                    index: index(id),
                    count,
                });
            }
        }
        Ok(())
    }
    let catalog = ctx.catalog;
    check(
        plan.airframes(),
        AirframeId::index,
        catalog.airframe_count(),
        "airframe",
    )?;
    check(
        plan.sensors(),
        SensorId::index,
        catalog.sensor_count(),
        "sensor",
    )?;
    check(
        plan.computes(),
        ComputeId::index,
        catalog.compute_count(),
        "compute",
    )?;
    check(
        plan.algorithms(),
        AlgorithmId::index,
        catalog.algorithm_count(),
        "algorithm",
    )?;
    if let Some(battery) = plan.battery() {
        if battery.index() >= catalog.battery_count() {
            return Err(SkylineError::PlanCatalog {
                family: "battery",
                index: battery.index(),
                count: catalog.battery_count(),
            });
        }
    }
    Ok(())
}

/// Two plans can share one evaluation pass when everything that shapes
/// the evaluated *outcomes* matches: the candidate subspace, the
/// expanded knob settings and the mounted battery (its mass rides on
/// every build). Objectives, constraints and mission profiles are
/// per-plan, applied in-pass.
fn same_pass(a: &QueryPlan, b: &QueryPlan) -> bool {
    a.airframes() == b.airframes()
        && a.sensors() == b.sensors()
        && a.computes() == b.computes()
        && a.algorithms() == b.algorithms()
        && a.settings() == b.settings()
        && a.battery() == b.battery()
}

/// Runs a batch of plans, sharing one fused parallel pass among every
/// subset of plans with the same evaluation signature. Results come
/// back aligned with `plans`.
// analyze::allow(indexing, scope = "fn", reason = "slot indices come from enumerate() over plans and stay < plans.len()")
// analyze::allow(panic, scope = "fn", reason = "the grouping loop assigns every plan index to exactly one group")
pub(crate) fn run_plans(
    ctx: &PassContext<'_>,
    plans: &[&QueryPlan],
    with_frontier: bool,
) -> Result<Vec<ResultSet>, SkylineError> {
    for plan in plans {
        validate_plan_ids(ctx, plan)?;
    }
    let mut out: Vec<Option<ResultSet>> = (0..plans.len()).map(|_| None).collect();
    // Plans whose keep-points policy resolves to streaming run through
    // the sharded streaming executor, one bounded-memory pass each —
    // streaming a 10⁷-candidate member through the materializing batch
    // store would defeat the policy's whole point. The rest share fused
    // batch passes below.
    let mut materializing: Vec<usize> = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        if crate::shard::should_stream(ctx, plan) {
            out[i] = Some(crate::shard::run_stream(ctx, plan, with_frontier)?);
        } else {
            materializing.push(i);
        }
    }
    // Group by pass signature (order-preserving; batches are small, the
    // quadratic scan is noise next to a single evaluation).
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &i in &materializing {
        let plan = plans[i];
        match groups
            .iter_mut()
            .find(|members| same_pass(plans[members[0]], plan))
        {
            Some(members) => members.push(i),
            None => groups.push(vec![i]),
        }
    }
    for members in groups {
        // The per-job kept set is a u64 bitmask; a (pathological) group
        // beyond 64 members re-runs the pass per 64-plan chunk.
        for chunk in members.chunks(64) {
            let group_plans: Vec<&QueryPlan> = chunk.iter().map(|&i| plans[i]).collect();
            let results = run_group(ctx, &group_plans, with_frontier)?;
            for (&slot, result) in chunk.iter().zip(results) {
                out[slot] = Some(result);
            }
        }
    }
    Ok(out
        .into_iter()
        .map(|r| r.expect("every plan belongs to exactly one group"))
        .collect())
}

/// Builds the per-setting component variants for one pass group.
///
/// This is where sweep variants are **validated**: every scaled sensor,
/// compute platform and airframe is constructed (and domain-checked)
/// here, before the batched parallel pass, so an out-of-domain knob
/// value surfaces as [`SkylineError::KnobVariant`] naming the offending
/// knob instead of aborting a running evaluation.
pub(crate) fn build_variants(
    ctx: &PassContext<'_>,
    sensors: &[SensorId],
    computes: &[ComputeId],
    airframes: &[AirframeId],
    settings: &[KnobSetting],
    battery_mass: f64,
) -> Result<Vec<VariantParts>, SkylineError> {
    let catalog = ctx.catalog;
    // A scaled magnitude must stay positive and finite *before* it
    // reaches the unit types (whose constructors panic on non-finite
    // values) or the component constructors.
    let scaled = |base: f64, knob: Knob, scale: f64, field: &'static str| {
        let value = base * scale;
        if value.is_finite() && value > 0.0 {
            Ok(value)
        } else {
            Err(SkylineError::KnobVariant {
                knob: knob.table2_parameter(),
                value: scale,
                source: ComponentError::InvalidField {
                    field,
                    reason: format!("scaled magnitude must be positive and finite, got {value}"),
                },
            })
        }
    };
    settings
        .iter()
        .map(|setting| {
            let sensors = sensors
                .iter()
                .map(|&id| {
                    let s = catalog.sensor_by_id(id);
                    if setting.sensor_rate_scale == 1.0 && setting.sensor_range_scale == 1.0 {
                        Ok(s.clone())
                    } else {
                        let rate = scaled(
                            s.frame_rate().get(),
                            Knob::SensorRateScale,
                            setting.sensor_rate_scale,
                            "frame_rate",
                        )?;
                        let range = scaled(
                            s.range().get(),
                            Knob::SensorRangeScale,
                            setting.sensor_range_scale,
                            "range",
                        )?;
                        // `scaled` has already validated both magnitudes;
                        // any residual constructor error is a
                        // catalog-field problem, not a knob one.
                        Sensor::new(
                            s.name(),
                            s.modality(),
                            Hertz::new(rate),
                            Meters::new(range),
                            s.mass(),
                        )
                        .map_err(SkylineError::from)
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            let computes = computes
                .iter()
                .map(|&id| {
                    let c = catalog.compute_by_id(id);
                    if setting.tdp_scale == 1.0 {
                        Ok(c.clone())
                    } else {
                        // Guards the product: `with_tdp_scaled` only
                        // validates the factor, and an overflowed TDP
                        // would panic inside the Watts constructor.
                        scaled(c.tdp().get(), Knob::TdpScale, setting.tdp_scale, "tdp")?;
                        c.with_tdp_scaled(setting.tdp_scale)
                            .map_err(SkylineError::from)
                    }
                })
                .collect::<Result<Vec<_>, _>>()?;
            let airframes = if setting.weight_scale == 1.0 && setting.rotor_pull_scale == 1.0 {
                None
            } else {
                Some(
                    airframes
                        .iter()
                        .map(|&id| {
                            let a = catalog.airframe_by_id(id);
                            scaled(
                                a.base_mass().get(),
                                Knob::WeightScale,
                                setting.weight_scale,
                                "base_mass",
                            )?;
                            scaled(
                                a.rotor_pull().get(),
                                Knob::RotorPull,
                                setting.rotor_pull_scale,
                                "rotor_pull",
                            )?;
                            let a = if setting.weight_scale == 1.0 {
                                a.clone()
                            } else {
                                a.with_base_mass_scaled(setting.weight_scale)?
                            };
                            if setting.rotor_pull_scale == 1.0 {
                                Ok(a)
                            } else {
                                a.with_rotor_pull_scaled(setting.rotor_pull_scale)
                                    .map_err(SkylineError::from)
                            }
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                )
            };
            Ok(VariantParts {
                sensors,
                computes,
                airframes,
                extra_payload: Grams::new(battery_mass + setting.payload_delta.get()),
            })
        })
        .collect()
}

/// Per-plan execution state precomputed before the pass.
struct PlanExec<'p> {
    plan: &'p QueryPlan,
    /// Positions of the plan's objectives in [`Objective::ALL`] order —
    /// the gather indices into the shared per-job value cache.
    all_indices: Vec<usize>,
    /// Bitmask over [`Objective::ALL`] positions.
    obj_mask: u8,
    /// Whether this plan reads the shared value cache: its objectives
    /// are profile-independent, or its profile equals the group's
    /// shared profile.
    shared: bool,
    /// Dense index into the per-job odd-row vector when `!shared`.
    odd_pos: usize,
}

/// Fills the requested slots (an [`Objective::ALL`]-order bitmask) of
/// one job's value cache. Each objective is computed **once per job**
/// and the momentum-theory power model is derived once, no matter how
/// many plans of the batch read the values.
// analyze::allow(indexing, scope = "fn", reason = "idx enumerates Objective::ALL, whose length is MAX_OBJECTIVES")
fn fill_values(
    mask: u8,
    vals: &mut [f64; MAX_OBJECTIVES],
    airframe: &Airframe,
    outcome: &Outcome,
    battery_wh: Option<f64>,
    profile: MissionProfile,
) -> Result<(), SkylineError> {
    let needs_power = mask & (ENERGY_BIT | ENDURANCE_BIT) != 0;
    let power: Option<PowerModel> = if needs_power && outcome.feasible {
        Some(crate::mission::power_model_for_parts(
            airframe,
            airframe.takeoff_mass(outcome.payload),
            outcome.total_tdp,
            profile.figure_of_merit,
            profile.parasitic_coeff,
        )?)
    } else {
        None
    };
    for (idx, objective) in Objective::ALL.iter().enumerate() {
        if mask & (1 << idx) == 0 {
            continue;
        }
        vals[idx] = match objective {
            Objective::SafeVelocity => outcome.velocity.get(),
            Objective::TotalTdp => outcome.total_tdp.get(),
            Objective::PayloadMass => outcome.payload.get(),
            Objective::MissionEnergyWhPerKm => match &power {
                Some(p) if outcome.velocity.get() > 0.0 => {
                    let v = outcome.velocity;
                    p.power_at(v).get() * (1000.0 / v.get()) / 3600.0
                }
                _ => f64::INFINITY,
            },
            Objective::HoverEnduranceMin => match &power {
                Some(p) => {
                    let wh = battery_wh
                        // analyze::allow(panic, reason = "plan validation rejects endurance objectives without a battery before execution")
                        .expect("plan validation rejects endurance plans without a battery");
                    hover_endurance(p, wh, profile.battery_reserve)?.get()
                }
                None => 0.0,
            },
        };
    }
    Ok(())
}

/// [`Objective::ALL`] bit of [`Objective::MissionEnergyWhPerKm`].
const ENERGY_BIT: u8 = 1 << 3;
/// [`Objective::ALL`] bit of [`Objective::HoverEnduranceMin`].
const ENDURANCE_BIT: u8 = 1 << 4;

/// Whether every constraint of the plan is **downward-closed** with
/// respect to the plan's own minimized objective keys: a cap on a
/// minimized objective, a floor on a maximized one, or plain
/// feasibility (which the frontier domain already implies).
///
/// For such plans the kept set is dominance-downward-closed — if build
/// `b` dominates build `a` and `a` passed the constraints, then `b`
/// passed them too, because each constraint bounds an objective on
/// which `b` is at least as good. Consequently
/// `frontier(kept) = frontier(domain) ∩ kept` **exactly** (membership
/// and tie handling): a dominated point stays dominated by a kept
/// dominator, and no new frontier point can appear. A batch of
/// co-shaped plans (same objective set, e.g. a Table II budget sweep)
/// therefore shares **one** skyline pass plus O(n) intersections,
/// instead of one skyline per plan.
fn frontier_reducible(plan: &QueryPlan) -> bool {
    plan.constraints().iter().all(|c| match c {
        Constraint::FeasibleOnly => true,
        Constraint::MinVelocity(_) => plan.objectives().contains(&Objective::SafeVelocity),
        Constraint::MaxTotalTdp(_) => plan.objectives().contains(&Objective::TotalTdp),
        Constraint::MaxPayload(_) => plan.objectives().contains(&Objective::PayloadMass),
    })
}

/// Runs one pass group: a single fused batched parallel pass over every
/// airframe × knob setting × characterized candidate — evaluation once,
/// then each member plan's constraint filter and objective rows —
/// followed by the per-plan O(n log n) frontiers.
/// Filters a component-id list to the catalog's active (non-retired)
/// ids, borrowing when nothing is filtered — which is always the case
/// for the session/engine default lists (built from active entries) and
/// for explicit plan subspaces on an unretired catalog.
pub(crate) fn active_ids<T: Copy>(list: &[T], is_active: impl Fn(T) -> bool) -> Cow<'_, [T]> {
    if list.iter().all(|&id| is_active(id)) {
        Cow::Borrowed(list)
    } else {
        Cow::Owned(list.iter().copied().filter(|&id| is_active(id)).collect())
    }
}

// analyze::allow(indexing, scope = "fn", reason = "fused-pass kernel: every index derives from enumerate()/chunks over the slices it indexes; per-element re-checks cost measurable throughput here")
fn run_group(
    ctx: &PassContext<'_>,
    plans: &[&QueryPlan],
    with_frontier: bool,
) -> Result<Vec<ResultSet>, SkylineError> {
    let rep = plans[0];
    let catalog = ctx.catalog;
    // Retired components keep their ids but leave the design space:
    // explicit plan subspaces are filtered here, so cold runs and
    // incremental repairs agree on the enumeration at every epoch.
    let airframes = active_ids(rep.airframes().unwrap_or(ctx.airframes), |id| {
        catalog.airframe_is_active(id)
    });
    let sensors = active_ids(rep.sensors().unwrap_or(ctx.sensors), |id| {
        catalog.sensor_is_active(id)
    });
    let computes = active_ids(rep.computes().unwrap_or(ctx.computes), |id| {
        catalog.compute_is_active(id)
    });
    let algorithms = active_ids(rep.algorithms().unwrap_or(ctx.algorithms), |id| {
        catalog.algorithm_is_active(id)
    });
    let (airframes, sensors, computes, algorithms): (
        &[AirframeId],
        &[SensorId],
        &[ComputeId],
        &[AlgorithmId],
    ) = (&airframes, &sensors, &computes, &algorithms);
    let settings = rep.settings();

    // Same nesting order as Engine::candidates, so a default plan
    // enumerates identically to the classic exploration.
    let mut candidates: Vec<IndexedCandidate> = Vec::new();
    for (sensor_pos, &sensor) in sensors.iter().enumerate() {
        for (compute_pos, &compute) in computes.iter().enumerate() {
            for &algorithm in algorithms {
                if let Some(throughput) = ctx.table.get(compute, algorithm) {
                    candidates.push(IndexedCandidate {
                        candidate: Candidate {
                            sensor,
                            compute,
                            algorithm,
                            throughput,
                        },
                        sensor_pos: sensor_pos as u32,
                        compute_pos: compute_pos as u32,
                    });
                }
            }
        }
    }
    let uncharacterized = sensors.len() * computes.len() * algorithms.len() - candidates.len();

    let battery = rep.battery().map(|id| catalog.battery_by_id(id));
    let battery_mass = battery.map_or(0.0, |b| b.mass().get());
    let battery_wh = battery.map(f1_components::Battery::energy_watt_hours);
    let variants = build_variants(ctx, sensors, computes, airframes, settings, battery_mass)?;
    let airframe_refs: Vec<&Airframe> = airframes
        .iter()
        .map(|&id| catalog.airframe_by_id(id))
        .collect();

    // The profile the batch's value cache is computed under: the first
    // power-needing plan's. Plans with profile-independent objectives
    // share the cache regardless; a power-needing plan with a different
    // profile is an "odd" member and materializes its own rows.
    let shared_profile = plans
        .iter()
        .find(|p| p.needs_power())
        .map(|p| p.mission_profile());
    let mut odd_count = 0usize;
    let execs: Vec<PlanExec<'_>> = plans
        .iter()
        .map(|plan| {
            let all_indices: Vec<usize> = plan.objectives().iter().map(|o| o.all_index()).collect();
            let obj_mask = all_indices.iter().fold(0u8, |m, &i| m | (1 << i));
            let shared = !plan.needs_power() || shared_profile == Some(plan.mission_profile());
            let odd_pos = if shared {
                usize::MAX
            } else {
                odd_count += 1;
                odd_count - 1
            };
            PlanExec {
                plan,
                all_indices,
                obj_mask,
                shared,
                odd_pos,
            }
        })
        .collect();

    // Airframe-major job order (then setting, then candidate) — the
    // explore_all compatibility wrapper relies on this layout. Jobs are
    // plain indices into that nesting; the fused pass writes each
    // (outcome, rows) straight into its slot of the output buffer, so
    // input order is output order.
    let per_airframe = settings.len() * candidates.len();
    let job_count = airframes.len() * per_airframe;
    // job_count > 0 implies candidates and settings are non-empty, so
    // the decode divisions are safe whenever a job exists.
    let decode = |job: usize| {
        (
            job / per_airframe,
            (job / candidates.len()) % settings.len(),
            job % candidates.len(),
        )
    };
    let evaluated = parallel_map_indices(job_count, ctx.chunk_size_for(job_count), |job| {
        let (airframe_pos, setting_pos, candidate_pos) = decode(job);
        let indexed = &candidates[candidate_pos];
        let parts = &variants[setting_pos];
        let airframe: &Airframe = parts
            .airframes
            .as_ref()
            .map_or(airframe_refs[airframe_pos], |a| &a[airframe_pos]);
        let outcome = evaluate_parts_with(
            ctx.heatsink,
            ctx.saturation,
            airframe,
            &parts.sensors[indexed.sensor_pos as usize],
            &parts.computes[indexed.compute_pos as usize],
            indexed.candidate.throughput,
            parts.extra_payload,
        )?;
        // Cheap per-plan constraint filter first: objective values are
        // only derived for points at least one plan keeps.
        let mut kept_mask = 0u64;
        for (i, exec) in execs.iter().enumerate() {
            if exec.plan.constraints().iter().all(|c| c.admits(&outcome)) {
                kept_mask |= 1 << i;
            }
        }
        let mut vals = [f64::NAN; MAX_OBJECTIVES];
        let mut odd_rows: Vec<PlanRow> = Vec::new();
        if kept_mask != 0 {
            // One value-cache fill for the union of the keeping shared
            // plans' objectives: the power model and every objective are
            // computed once per job regardless of batch width.
            let mut union_mask = 0u8;
            for (i, exec) in execs.iter().enumerate() {
                if exec.shared && kept_mask & (1 << i) != 0 {
                    union_mask |= exec.obj_mask;
                }
            }
            if union_mask != 0 {
                fill_values(
                    union_mask,
                    &mut vals,
                    airframe,
                    &outcome,
                    battery_wh,
                    shared_profile.unwrap_or_default(),
                )?;
            }
            if odd_count > 0 {
                odd_rows = Vec::with_capacity(odd_count);
                for (i, exec) in execs.iter().enumerate().filter(|(_, e)| !e.shared) {
                    if kept_mask & (1 << i) != 0 {
                        let mut own = [f64::NAN; MAX_OBJECTIVES];
                        fill_values(
                            exec.obj_mask,
                            &mut own,
                            airframe,
                            &outcome,
                            battery_wh,
                            exec.plan.mission_profile(),
                        )?;
                        let mut row = [0.0; MAX_OBJECTIVES];
                        for (slot, &idx) in row.iter_mut().zip(&exec.all_indices) {
                            *slot = own[idx];
                        }
                        odd_rows.push(PlanRow::Kept(row));
                    } else {
                        odd_rows.push(PlanRow::Dropped);
                    }
                }
            }
        }
        Ok::<JobOut, SkylineError>((outcome, kept_mask, vals, odd_rows))
    });
    // Single-plan fast path (the `Engine::query().run()` /
    // `Session::run` hot case): collect and assemble in one serial
    // sweep over the evaluated buffer — no intermediate job vector, no
    // second 10⁵-element traversal. Frontier sharing needs at least
    // two plans, so nothing is lost.
    if execs.len() == 1 {
        let exec = &execs[0];
        let k = exec.all_indices.len();
        let mut points: Vec<QueryPoint> = Vec::with_capacity(evaluated.len());
        let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(evaluated.len()); k];
        let mut dropped = 0usize;
        let mut nonfinite = 0usize;
        for (job, result) in evaluated.into_iter().enumerate() {
            // Propagate the first evaluation error in enumeration order
            // (unreachable for catalog parts and validated variants).
            let (outcome, kept_mask, vals, _) = result?;
            if kept_mask & 1 == 0 {
                dropped += 1;
                continue;
            }
            let mut row = [0.0; MAX_OBJECTIVES];
            for (slot, &idx) in row.iter_mut().zip(&exec.all_indices) {
                *slot = vals[idx];
            }
            if outcome.feasible && row[..k].iter().any(|v| !v.is_finite()) {
                nonfinite += 1;
            }
            let (airframe_pos, setting_pos, candidate_pos) = decode(job);
            points.push(QueryPoint {
                airframe: airframes[airframe_pos],
                candidate: candidates[candidate_pos].candidate,
                setting: settings[setting_pos],
                outcome,
            });
            for (column, &v) in columns.iter_mut().zip(&row[..k]) {
                column.push(v);
            }
        }
        let mut result = ResultSet::from_own_points(
            exec.plan.objectives().to_vec(),
            points,
            columns,
            Vec::new(),
            uncharacterized,
            dropped,
            nonfinite,
        );
        if with_frontier {
            let (keys, map) = result.minimized_keys();
            result.frontier = frontier::pareto_min(k, &keys)
                .into_iter()
                .map(|i| map[i])
                .collect();
        }
        return Ok(vec![result]);
    }

    // Multi-plan batch. Identify the shared-skyline sets up front (see
    // `frontier_reducible`): one skyline over the union domain per
    // distinct objective set with at least two reducible members; each
    // member then intersects in O(n). The union of the members' kept
    // sets is itself downward-closed, so restricting the domain to jobs
    // some member kept is exact.
    let mut share_sets: Vec<(u8, u64)> = Vec::new();
    if with_frontier {
        let mut counted: Vec<(u8, u64, usize)> = Vec::new();
        for (i, exec) in execs.iter().enumerate() {
            if exec.shared && frontier_reducible(exec.plan) {
                match counted.iter_mut().find(|(mask, ..)| *mask == exec.obj_mask) {
                    Some((_, bits, count)) => {
                        *bits |= 1 << i;
                        *count += 1;
                    }
                    None => counted.push((exec.obj_mask, 1 << i, 1)),
                }
            }
        }
        share_sets = counted
            .into_iter()
            .filter(|&(_, _, count)| count >= 2)
            .map(|(mask, bits, _)| (mask, bits))
            .collect();
    }

    // One fused sequential sweep over the evaluated buffer builds every
    // member plan's points, columns and kept-job list plus each share
    // set's skyline domain — the job buffer (tens of MB at 10⁵
    // candidates) is streamed ONCE instead of once per plan, which is
    // what makes an 8-plan batch land near the cost of one query.
    struct PlanAccum {
        columns: Vec<Vec<f64>>,
        kept_jobs: Vec<u32>,
        nonfinite: usize,
    }
    // Exact preallocation from a cheap mask pre-scan: growth
    // reallocations would otherwise rewrite each plan's point and
    // column buffers about once over, interleaved across the batch.
    let mut kept_counts = vec![0usize; execs.len()];
    let mut union_count = 0usize;
    for (_, kept_mask, _, _) in evaluated.iter().flatten() {
        union_count += usize::from(*kept_mask != 0);
        for (i, count) in kept_counts.iter_mut().enumerate() {
            *count += usize::from(kept_mask & (1 << i) != 0);
        }
    }
    let mut accums: Vec<PlanAccum> = execs
        .iter()
        .zip(&kept_counts)
        .map(|(exec, &kept)| PlanAccum {
            columns: vec![Vec::with_capacity(kept); exec.all_indices.len()],
            kept_jobs: Vec::with_capacity(kept),
            nonfinite: 0,
        })
        .collect();
    // The batch-shared point store: the points at least one member
    // plan kept, built ONCE in enumeration order (plans hold indices
    // into it), so the heavyweight point rows are never materialized
    // per plan — and jobs every plan dropped are never retained.
    let mut store: Vec<QueryPoint> = Vec::with_capacity(union_count);
    // (keys, job map) per share set, filled during the sweep.
    let mut domains: Vec<(Vec<f64>, Vec<u32>)> = share_sets
        .iter()
        .map(|_| (Vec::new(), Vec::new()))
        .collect();
    let job_total = evaluated.len();
    for (job, result) in evaluated.into_iter().enumerate() {
        // Propagate the first evaluation error in enumeration order
        // (unreachable for catalog parts and validated variants).
        let (outcome, kept_mask, vals, odd_rows) = result?;
        if kept_mask == 0 {
            continue;
        }
        let (airframe_pos, setting_pos, candidate_pos) = decode(job);
        store.push(QueryPoint {
            airframe: airframes[airframe_pos],
            candidate: candidates[candidate_pos].candidate,
            setting: settings[setting_pos],
            outcome,
        });
        let store_pos = (store.len() - 1) as u32;
        for (plan_pos, (exec, accum)) in execs.iter().zip(&mut accums).enumerate() {
            if kept_mask & (1 << plan_pos) == 0 {
                continue;
            }
            let k = exec.all_indices.len();
            let mut row = [0.0; MAX_OBJECTIVES];
            if exec.shared {
                for (slot, &idx) in row.iter_mut().zip(&exec.all_indices) {
                    *slot = vals[idx];
                }
            } else {
                match &odd_rows[exec.odd_pos] {
                    PlanRow::Kept(r) => row = *r,
                    // analyze::allow(panic, reason = "the kept bit is only set in the same iteration that stored the odd row")
                    PlanRow::Dropped => unreachable!("kept bit set for a dropped odd row"),
                }
            }
            if outcome.feasible && row[..k].iter().any(|v| !v.is_finite()) {
                accum.nonfinite += 1;
            }
            for (column, &v) in accum.columns.iter_mut().zip(&row[..k]) {
                column.push(v);
            }
            accum.kept_jobs.push(store_pos);
        }
        if outcome.feasible {
            'sets: for (&(mask, bits), (keys, map)) in share_sets.iter().zip(&mut domains) {
                if kept_mask & bits == 0 {
                    continue;
                }
                for (idx, v) in vals.iter().enumerate() {
                    if mask & (1 << idx) != 0 && !v.is_finite() {
                        continue 'sets;
                    }
                }
                map.push(store_pos);
                for (idx, objective) in Objective::ALL.iter().enumerate() {
                    if mask & (1 << idx) != 0 {
                        keys.push(if objective.maximize() {
                            -vals[idx]
                        } else {
                            vals[idx]
                        });
                    }
                }
            }
        }
    }

    // One skyline per share set over its union domain.
    let share_frontiers: Vec<Vec<u32>> = share_sets
        .iter()
        .zip(&domains)
        .map(|(&(mask, _), (keys, map))| {
            frontier::pareto_min(mask.count_ones() as usize, keys)
                .iter()
                .map(|&i| map[i])
                .collect()
        })
        .collect();

    // Per-plan frontiers: share-set members intersect (exact by the
    // downward-closure argument), the rest run their own skyline — in
    // parallel, since at 10⁵ points the d≥4 skyline of a non-reducible
    // plan is the per-plan cost that would otherwise serialize a batch.
    let frontiers: Vec<Vec<usize>> = if with_frontier {
        parallel_map_indices(plans.len(), 1, |plan_pos| {
            let exec = &execs[plan_pos];
            let accum = &accums[plan_pos];
            let bit = 1u64 << plan_pos;
            let shared = share_sets
                .iter()
                .position(|&(mask, bits)| mask == exec.obj_mask && bits & bit != 0);
            if let Some(set_pos) = shared {
                // Intersect the shared skyline's store positions with
                // this plan's kept list (both ascending), mapping to
                // kept positions.
                let kept_jobs = &accum.kept_jobs;
                let mut out = Vec::new();
                let mut ki = 0usize;
                for &frontier_pos in &share_frontiers[set_pos] {
                    while ki < kept_jobs.len() && kept_jobs[ki] < frontier_pos {
                        ki += 1;
                    }
                    if ki < kept_jobs.len() && kept_jobs[ki] == frontier_pos {
                        out.push(ki);
                    }
                }
                out
            } else {
                let k = exec.all_indices.len();
                let mut keys = Vec::new();
                let mut map = Vec::new();
                'points: for (i, &job) in accum.kept_jobs.iter().enumerate() {
                    if !store[job as usize].outcome.feasible {
                        continue;
                    }
                    for column in &accum.columns {
                        if !column[i].is_finite() {
                            continue 'points;
                        }
                    }
                    map.push(i);
                    keys.extend(
                        accum
                            .columns
                            .iter()
                            .zip(exec.plan.objectives())
                            .map(|(c, o)| if o.maximize() { -c[i] } else { c[i] }),
                    );
                }
                frontier::pareto_min(k, &keys)
                    .into_iter()
                    .map(|i| map[i])
                    .collect()
            }
        })
    } else {
        vec![Vec::new(); plans.len()]
    };

    let store = Arc::new(store);
    Ok(execs
        .iter()
        .zip(accums)
        .zip(frontiers)
        .map(|((exec, accum), frontier)| ResultSet {
            objectives: exec.plan.objectives().to_vec(),
            dropped: job_total - accum.kept_jobs.len(),
            segments: vec![Arc::clone(&store)],
            // A plan that kept every job reads the store directly —
            // `points()` is then free, not a lazy copy.
            kept: (accum.kept_jobs.len() != store.len()).then_some(
                accum
                    .kept_jobs
                    .into_iter()
                    .map(|index| PointRef { segment: 0, index })
                    .collect(),
            ),
            points_cache: std::sync::OnceLock::new(),
            columns: accum.columns,
            frontier,
            uncharacterized,
            nonfinite: accum.nonfinite,
            streamed: None,
            sim: None,
        })
        .collect())
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// Segment-count threshold past which [`Session::refresh`] compacts a
/// repaired result's spliced point store back into one contiguous
/// segment. Each delta repair adds roughly one segment per slab pass;
/// compaction bounds the indirection long-lived sessions accumulate
/// while keeping the amortized copy cost a small fraction of repairs.
pub const COMPACT_SEGMENT_THRESHOLD: usize = 8;

/// Cache accounting of a [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan lookups served from the memo cache.
    pub hits: u64,
    /// Plan lookups that required a pass.
    pub misses: u64,
    /// Completed results currently held.
    pub entries: usize,
    /// Entries dropped by the LRU size cap (see
    /// [`Session::with_cache_capacity`]).
    pub evictions: u64,
    /// Results produced by incremental delta repair
    /// ([`Session::refresh`]) instead of a cold pass.
    pub repairs: u64,
}

/// One memoized result with its last-used tick (for LRU eviction).
#[derive(Debug)]
struct MemoSlot {
    result: Arc<ResultSet>,
    tick: u64,
}

/// The session memo cache: results keyed by
/// `(canonical plan key, catalog epoch)`, with optional size-capped LRU
/// eviction. Epochs nest under the plan key so
/// [`Session::refresh`] can find the newest older-epoch result to
/// repair from without scanning the whole cache.
#[derive(Debug, Default)]
struct MemoCache {
    plans: HashMap<String, BTreeMap<u64, MemoSlot>>,
    len: usize,
    capacity: Option<usize>,
    tick: u64,
    evictions: u64,
}

impl MemoCache {
    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, key: &str, epoch: u64) -> Option<Arc<ResultSet>> {
        let tick = self.bump();
        let slot = self.plans.get_mut(key)?.get_mut(&epoch)?;
        slot.tick = tick;
        Some(Arc::clone(&slot.result))
    }

    /// The newest cached result of this plan at an epoch strictly before
    /// `epoch` — the repair source for [`Session::refresh`].
    fn newest_before(&mut self, key: &str, epoch: u64) -> Option<(u64, Arc<ResultSet>)> {
        let tick = self.bump();
        let (&found, slot) = self.plans.get_mut(key)?.range_mut(..epoch).next_back()?;
        slot.tick = tick;
        Some((found, Arc::clone(&slot.result)))
    }

    fn insert(&mut self, key: &str, epoch: u64, result: Arc<ResultSet>) {
        let tick = self.bump();
        let by_epoch = self.plans.entry(key.to_owned()).or_default();
        if by_epoch.insert(epoch, MemoSlot { result, tick }).is_none() {
            self.len += 1;
        }
        if let Some(capacity) = self.capacity {
            while self.len > capacity {
                self.evict_lru();
            }
        }
    }

    /// Drops the least-recently-used entry (linear scan: capped caches
    /// are small, and eviction is off the lookup fast path). Only the
    /// victim's plan key is cloned. Tick ties break on `(key, epoch)`
    /// so the victim does not depend on hash iteration order.
    fn evict_lru(&mut self) {
        let victim = self
            .plans
            // analyze::allow(determinism, reason = "min over a total order (tick, key, epoch) — hash iteration order cannot change the victim")
            .iter()
            .flat_map(|(key, by_epoch)| {
                by_epoch
                    .iter()
                    .map(move |(&epoch, slot)| (slot.tick, key, epoch))
            })
            .min_by_key(|&(tick, key, epoch)| (tick, key, epoch))
            .map(|(_, key, epoch)| (key.clone(), epoch));
        if let Some((key, epoch)) = victim {
            // analyze::allow(panic, reason = "victim key was read from this map under &mut self — no concurrent removal possible")
            let by_epoch = self.plans.get_mut(&key).expect("victim key exists");
            by_epoch.remove(&epoch);
            if by_epoch.is_empty() {
                self.plans.remove(&key);
            }
            self.len -= 1;
            self.evictions += 1;
        }
    }

    fn clear(&mut self) {
        self.plans.clear();
        self.len = 0;
    }
}

/// One epoch's execution snapshot: the pinned catalog plus everything a
/// pass derives from it once (active id lists in name order, the dense
/// throughput table). Sessions build one per epoch they touch and share
/// it across runs.
#[derive(Debug)]
pub(crate) struct EpochState {
    pub(crate) snapshot: EpochSnapshot,
    pub(crate) airframes: Vec<AirframeId>,
    pub(crate) sensors: Vec<SensorId>,
    pub(crate) computes: Vec<ComputeId>,
    pub(crate) algorithms: Vec<AlgorithmId>,
    pub(crate) table: ThroughputTable,
}

impl EpochState {
    fn new(snapshot: EpochSnapshot) -> Self {
        let catalog = snapshot.catalog();
        Self {
            airframes: catalog.airframe_entries().map(|(id, _)| id).collect(),
            sensors: catalog.sensor_entries().map(|(id, _)| id).collect(),
            computes: catalog.compute_entries().map(|(id, _)| id).collect(),
            algorithms: catalog.algorithm_entries().map(|(id, _)| id).collect(),
            table: catalog.throughput_table(),
            snapshot,
        }
    }

    pub(crate) fn catalog(&self) -> &Arc<Catalog> {
        self.snapshot.catalog()
    }

    pub(crate) fn epoch(&self) -> CatalogEpoch {
        self.snapshot.epoch()
    }
}

/// A shared, thread-safe query-execution service over a **versioned**
/// catalog store.
///
/// A session binds to a [`CatalogStore`] rather than one catalog: every
/// published [`CatalogEpoch`] is an immutable `Arc<Catalog>` snapshot,
/// and the session derives one execution state per epoch it touches
/// (active id lists in name order, dense throughput table,
/// paper-calibrated heatsink model) — exactly what
/// [`Engine::new`](crate::dse::Engine::new) derives for its borrowed
/// catalog. The session is `Send + Sync` and free of lifetimes: clone
/// the `Arc`s, move it into a server, share it across threads.
///
/// * [`run`](Self::run) executes at the store's **current** epoch;
///   [`run_at`](Self::run_at) pins any published epoch.
/// * Results are memoized by `(plan key, epoch)`, optionally size-capped
///   with LRU eviction ([`with_cache_capacity`](Self::with_cache_capacity)).
/// * [`refresh`](Self::refresh) brings a plan to the current epoch by
///   **incrementally repairing** the newest cached older-epoch result
///   across the catalog delta: only net-new candidates are evaluated,
///   retired candidates are masked out, and the frontier is merged —
///   exactly (bit-identical to a cold run), at a fraction of the cost
///   for small deltas.
///
/// See the [module docs](self) for the shared-pass and caching
/// semantics, and [`QueryPlan`] for the owned request type.
#[derive(Debug)]
pub struct Session {
    store: Arc<CatalogStore>,
    heatsink: HeatsinkModel,
    saturation: Saturation,
    chunk_size: Option<usize>,
    states: Mutex<HashMap<u64, Arc<EpochState>>>,
    cache: Mutex<MemoCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    repairs: AtomicU64,
    /// The tier-2 evaluation hook for plans with sim objectives; `None`
    /// (the default) fails such plans with [`SkylineError::Tier2`].
    tier2: Option<SharedTier2>,
    sim_evaluations: AtomicU64,
    sim_survivors: AtomicU64,
    sim_trials: AtomicU64,
    sim_reused: AtomicU64,
    sim_millis: AtomicU64,
}

impl Session {
    /// Opens a session over a single shared catalog (a private
    /// single-epoch store; use [`over`](Self::over) to share a store —
    /// and its delta stream — between sessions).
    #[must_use]
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self::over(Arc::new(CatalogStore::from_shared(catalog)))
    }

    /// Opens a session bound to a shared versioned catalog store.
    #[must_use]
    pub fn over(store: Arc<CatalogStore>) -> Self {
        Self {
            store,
            heatsink: HeatsinkModel::paper_calibrated(),
            saturation: Saturation::DEFAULT,
            chunk_size: None,
            states: Mutex::new(HashMap::new()),
            cache: Mutex::new(MemoCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            tier2: None,
            sim_evaluations: AtomicU64::new(0),
            sim_survivors: AtomicU64::new(0),
            sim_trials: AtomicU64::new(0),
            sim_reused: AtomicU64::new(0),
            sim_millis: AtomicU64::new(0),
        }
    }

    /// Installs the tier-2 evaluation hook: plans declaring
    /// [`SimObjective`](crate::plan::SimObjective)s have their tier-1
    /// survivor set simulated by `evaluator` and the resulting
    /// [`SimBlock`] merged into the memoized result (see
    /// [`crate::tier2`]). Without an evaluator such plans fail with
    /// [`SkylineError::Tier2`]; pure analytic plans never invoke it.
    #[must_use]
    pub fn with_tier2(mut self, evaluator: SharedTier2) -> Self {
        self.tier2 = Some(evaluator);
        self
    }

    /// Pins the work-stealing chunk size, overriding the default
    /// autotune (see [`crate::sweep::auto_chunk_size`]).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = Some(chunk_size);
        self
    }

    /// Caps the memo cache at `capacity` results, evicting the
    /// least-recently-used entry past the cap
    /// ([`CacheStats::evictions`] counts drops). Uncapped by default.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_cache_capacity(self, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .capacity = Some(capacity);
        self
    }

    /// The versioned catalog store this session executes against.
    #[must_use]
    pub fn store(&self) -> &Arc<CatalogStore> {
        &self.store
    }

    /// The catalog of the store's current epoch.
    #[must_use]
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(self.store.current().catalog())
    }

    /// The store's current epoch.
    #[must_use]
    pub fn epoch(&self) -> CatalogEpoch {
        self.store.current_epoch()
    }

    /// How many per-epoch execution states a session retains. States
    /// are derived data (rebuildable from the store at any time), so a
    /// session following a rolling stream of catalog deltas stays
    /// bounded: the oldest epochs' states are dropped past the cap and
    /// transparently rebuilt if an old epoch is pinned again.
    const MAX_EPOCH_STATES: usize = 8;

    /// The execution state for an epoch snapshot, derived once and
    /// shared across runs (until evicted by [`Self::MAX_EPOCH_STATES`]).
    fn state_for(&self, snapshot: &EpochSnapshot) -> Arc<EpochState> {
        let mut states = self
            .states
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let state = Arc::clone(
            states
                .entry(snapshot.epoch().get())
                .or_insert_with(|| Arc::new(EpochState::new(snapshot.clone()))),
        );
        while states.len() > Self::MAX_EPOCH_STATES {
            // analyze::allow(panic, reason = "an entry was inserted into this map a few lines above")
            let oldest = *states.keys().min().expect("map is non-empty");
            states.remove(&oldest);
        }
        state
    }

    fn current_state(&self) -> Arc<EpochState> {
        self.state_for(&self.store.current())
    }

    fn state_at(&self, epoch: CatalogEpoch) -> Result<Arc<EpochState>, SkylineError> {
        match self.store.at(epoch) {
            Some(snapshot) => Ok(self.state_for(&snapshot)),
            None => Err(SkylineError::UnknownEpoch {
                requested: epoch.get(),
                latest: self.store.current_epoch().get(),
            }),
        }
    }

    fn pass_context<'a>(&'a self, state: &'a EpochState) -> PassContext<'a> {
        PassContext {
            catalog: state.catalog(),
            airframes: &state.airframes,
            sensors: &state.sensors,
            computes: &state.computes,
            algorithms: &state.algorithms,
            table: &state.table,
            heatsink: &self.heatsink,
            saturation: self.saturation,
            chunk_size: self.chunk_size,
        }
    }

    /// Runs the tier-2 hook for a plan with sim objectives and attaches
    /// the returned [`SimBlock`] to `result`; pass-through for pure
    /// analytic plans. `prior` is the cached result a delta repair
    /// started from, letting the evaluator reuse sim rows of survivors
    /// whose tier-1 point is unchanged.
    fn attach_tier2(
        &self,
        plan: &QueryPlan,
        state: &EpochState,
        result: ResultSet,
        prior: Option<&ResultSet>,
    ) -> Result<ResultSet, SkylineError> {
        if !plan.has_tier2() {
            return Ok(result);
        }
        let Some(evaluator) = &self.tier2 else {
            return Err(SkylineError::Tier2 {
                reason: "plan declares sim objectives but this session has no tier-2 \
                         evaluator installed (see Session::with_tier2; the f1-sim crate \
                         provides the flightsim/pipeline-backed implementation)"
                    .to_owned(),
            });
        };
        // Wall-clock feeds only the sim_millis counter, never result bytes.
        let started = std::time::Instant::now();
        let evaluation = evaluator.evaluate(&Tier2Context {
            catalog: state.catalog(),
            plan,
            result: &result,
            prior,
        })?;
        self.sim_evaluations.fetch_add(1, AtomicOrdering::Relaxed);
        self.sim_survivors
            .fetch_add(evaluation.block.rows.len() as u64, AtomicOrdering::Relaxed);
        self.sim_trials
            .fetch_add(evaluation.usage.trials, AtomicOrdering::Relaxed);
        self.sim_reused
            .fetch_add(evaluation.usage.reused_rows, AtomicOrdering::Relaxed);
        self.sim_millis.fetch_add(
            started.elapsed().as_millis() as u64,
            AtomicOrdering::Relaxed,
        );
        Ok(result.with_sim(evaluation.block))
    }

    /// Cache read with no hit/miss accounting.
    fn peek(&self, key: &str, epoch: u64) -> Option<Arc<ResultSet>> {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key, epoch)
    }

    fn insert(&self, key: &str, epoch: u64, result: Arc<ResultSet>) {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, epoch, result);
    }

    /// Executes one plan at the store's **current** epoch: a memo-cache
    /// lookup by `(`[canonical key](QueryPlan::key)`, epoch)` first, one
    /// fused pass on a miss. The cached `Arc` is returned as-is, so
    /// repeated queries are pointer-identical — bit-identical objective
    /// rows and frontier indices by construction.
    ///
    /// # Errors
    ///
    /// [`SkylineError::PlanCatalog`] when the plan's ids don't belong to
    /// this session's catalog, [`SkylineError::KnobVariant`] when a
    /// sweep value produces an out-of-domain part variant (both strictly
    /// before the pass), plus any evaluation error, propagated
    /// deterministically in enumeration order.
    pub fn run(&self, plan: &QueryPlan) -> Result<Arc<ResultSet>, SkylineError> {
        let state = self.current_state();
        self.run_at_state(plan, &state)
    }

    /// Executes one plan pinned at a published epoch — historical
    /// queries stay reproducible after the catalog moves on. Memoized
    /// like [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// [`SkylineError::UnknownEpoch`] when the store never published
    /// `epoch`, plus everything [`run`](Self::run) can produce.
    pub fn run_at(
        &self,
        plan: &QueryPlan,
        epoch: CatalogEpoch,
    ) -> Result<Arc<ResultSet>, SkylineError> {
        let state = self.state_at(epoch)?;
        self.run_at_state(plan, &state)
    }

    fn run_at_state(
        &self,
        plan: &QueryPlan,
        state: &EpochState,
    ) -> Result<Arc<ResultSet>, SkylineError> {
        let epoch = state.epoch().get();
        if let Some(hit) = self.peek(plan.key(), epoch) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Ok(hit);
        }
        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
        let mut results = run_plans(&self.pass_context(state), &[plan], true)?;
        // analyze::allow(panic, reason = "run_plans returns exactly one result per input plan")
        let result = results.pop().expect("one plan in, one result out");
        let result = Arc::new(self.attach_tier2(plan, state, result, None)?);
        self.insert(plan.key(), epoch, Arc::clone(&result));
        Ok(result)
    }

    /// Brings a plan's result to the store's **current** epoch, reusing
    /// work from earlier epochs:
    ///
    /// 1. current-epoch cache hit → returned as-is;
    /// 2. a cached result at an older epoch → **incrementally
    ///    repaired** across the catalog delta: survivors keep their
    ///    evaluated outcomes, retired candidates are masked out, only
    ///    net-new/re-characterized candidates run through the fused
    ///    pass, and the frontier is merged — the result is
    ///    **bit-identical** to a cold run at the current epoch
    ///    (property-tested), and counted in [`CacheStats::repairs`];
    /// 3. otherwise a cold pass.
    ///
    /// The repaired result is memoized at the current epoch like any
    /// other.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn refresh(&self, plan: &QueryPlan) -> Result<Arc<ResultSet>, SkylineError> {
        let state = self.current_state();
        let epoch = state.epoch().get();
        if let Some(hit) = self.peek(plan.key(), epoch) {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
            return Ok(hit);
        }
        let source = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .newest_before(plan.key(), epoch);
        if let Some((old_epoch, cached)) = source {
            // The source epoch is still resolvable (stores retain every
            // epoch) unless the cache outlived a different store — then
            // fall through to a cold run.
            if let Ok(old_state) = self.state_at(CatalogEpoch::from_raw(old_epoch)) {
                match crate::repair::repair_result(
                    &old_state,
                    &state,
                    &self.pass_context(&state),
                    plan,
                    &cached,
                )? {
                    crate::repair::Repair::Unchanged => {
                        // The delta does not intersect the plan's design
                        // space: the cached result IS the current-epoch
                        // answer.
                        self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                        self.insert(plan.key(), epoch, Arc::clone(&cached));
                        return Ok(cached);
                    }
                    crate::repair::Repair::Repaired(result) => {
                        self.repairs.fetch_add(1, AtomicOrdering::Relaxed);
                        self.misses.fetch_add(1, AtomicOrdering::Relaxed);
                        // Chained refreshes splice ~#slabs segments into
                        // the point store per delta; past the threshold,
                        // fold them back into one contiguous segment
                        // (logically equal — only the layout changes) so
                        // long-lived sessions never accumulate unbounded
                        // segment indirection.
                        let result = if result.segment_count() > COMPACT_SEGMENT_THRESHOLD {
                            result.compacted()
                        } else {
                            *result
                        };
                        // Re-attach tier 2 with the prior result in
                        // hand: survivors whose tier-1 point is
                        // unchanged reuse their sim rows, everything
                        // else re-simulates — bit-identical to a cold
                        // run either way (seeds depend only on plan key
                        // and candidate identity).
                        let result =
                            Arc::new(self.attach_tier2(plan, &state, result, Some(&cached))?);
                        self.insert(plan.key(), epoch, Arc::clone(&result));
                        return Ok(result);
                    }
                    crate::repair::Repair::Cold => {}
                }
            }
        }
        self.run_at_state(plan, &state)
    }

    /// Probes the memo cache for a result by **canonical plan key** at
    /// the store's current epoch, without parsing the key or running
    /// anything — the serving fast path: an exact `(key, epoch)` repeat
    /// is answered straight from the cache before the request ever
    /// reaches a scheduler queue. Counts a [`CacheStats::hits`] on
    /// success; a probe miss is not counted (the eventual
    /// [`run`](Self::run)/[`run_batch`](Self::run_batch) will count the
    /// pass it pays).
    #[must_use]
    pub fn cached(&self, key: &str) -> Option<Arc<ResultSet>> {
        self.cached_at(key, self.store.current_epoch())
    }

    /// [`cached`](Self::cached) pinned at a specific epoch — what a
    /// server probes for requests admitted before a catalog delta
    /// landed.
    #[must_use]
    pub fn cached_at(&self, key: &str, epoch: CatalogEpoch) -> Option<Arc<ResultSet>> {
        let hit = self.peek(key, epoch.get());
        if hit.is_some() {
            self.hits.fetch_add(1, AtomicOrdering::Relaxed);
        }
        hit
    }

    /// The distinct canonical plan keys currently memoized (at any
    /// epoch), sorted — cache introspection for a serving tier's
    /// background repair: after a catalog delta, each returned key can
    /// be [`refresh`](Self::refresh)ed to bring the hot entries forward
    /// off the request path. Sorting makes the repair order (and any
    /// log of it) reproducible run-to-run.
    #[must_use]
    pub fn cached_plan_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .plans
            // analyze::allow(determinism, reason = "collected then sorted below — hash order never escapes this fn")
            .keys()
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Exports every memoized result as
    /// `(plan key, epoch, catalog digest, result JSON)`, sorted by
    /// `(plan key, epoch)` — the warm-cache **spill** feed for a durable
    /// serving tier: persisted on shutdown and re-served byte-identically
    /// after a restart without re-running any physics. The digest is the
    /// epoch's [`EpochSnapshot::digest`], letting the restore side trust
    /// an entry only if its recovered catalog reproduces the same
    /// digest. Entries whose epoch is no longer resolvable in the store
    /// are skipped.
    #[must_use]
    pub fn export_cache(&self) -> Vec<(String, u64, u64, String)> {
        let mut entries: Vec<(String, u64, Arc<ResultSet>)> = {
            let cache = self
                .cache
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            cache
                .plans
                // analyze::allow(determinism, reason = "collected then sorted below — hash order never escapes this fn")
                .iter()
                .flat_map(|(key, by_epoch)| {
                    by_epoch
                        .iter()
                        .map(move |(&epoch, slot)| (key.clone(), epoch, Arc::clone(&slot.result)))
                })
                .collect()
        };
        entries.sort_by(|a, b| (a.0.as_str(), a.1).cmp(&(b.0.as_str(), b.1)));
        let mut out = Vec::with_capacity(entries.len());
        for (key, epoch, result) in entries {
            let Some(snapshot) = self.store.at(CatalogEpoch::from_raw(epoch)) else {
                continue;
            };
            out.push((
                key,
                epoch,
                snapshot.digest(),
                result.to_json(snapshot.catalog()),
            ));
        }
        out
    }

    /// Executes a batch of plans (at the current epoch) in as few fused
    /// passes as their evaluation signatures allow — plans over the same
    /// subspace, knob settings and battery share **one** enumeration +
    /// evaluation, with each plan's constraints and objective rows
    /// applied in-pass. Cached plans are served from the memo cache
    /// without joining a pass; duplicate plans within the batch are
    /// deduplicated by canonical key. Results come back aligned with
    /// `plans`.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run); the first error aborts the batch.
    pub fn run_batch(&self, plans: &[QueryPlan]) -> Result<Vec<Arc<ResultSet>>, SkylineError> {
        self.run_batch_state(plans, &self.current_state())
    }

    /// [`run_batch`](Self::run_batch) pinned at a published epoch — the
    /// scheduler-side batch admission hook: a micro-batching server
    /// groups concurrently admitted requests by their admission epoch
    /// and coalesces each group into one shared pass, so a catalog
    /// delta published mid-window never bleeds into results admitted
    /// before it.
    ///
    /// # Errors
    ///
    /// [`SkylineError::UnknownEpoch`] when the store never published
    /// `epoch`, plus everything [`run_batch`](Self::run_batch) can
    /// produce.
    pub fn run_batch_at(
        &self,
        plans: &[QueryPlan],
        epoch: CatalogEpoch,
    ) -> Result<Vec<Arc<ResultSet>>, SkylineError> {
        let state = self.state_at(epoch)?;
        self.run_batch_state(plans, &state)
    }

    // analyze::allow(indexing, scope = "fn", reason = "i and j range over plans.len(); out is built with one slot per plan")
    // analyze::allow(panic, scope = "fn", reason = "every slot is provably filled: cached, computed, or twinned from its pending representative")
    fn run_batch_state(
        &self,
        plans: &[QueryPlan],
        state: &EpochState,
    ) -> Result<Vec<Arc<ResultSet>>, SkylineError> {
        let epoch = state.epoch().get();
        // Cache-served plans count a hit each; deduplicated uncached
        // work counts ONE miss per pass actually run, so the stats keep
        // meaning "lookups served" vs "passes paid".
        let mut out: Vec<Option<Arc<ResultSet>>> = plans
            .iter()
            .map(|p| {
                let hit = self.peek(p.key(), epoch);
                if hit.is_some() {
                    self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                }
                hit
            })
            .collect();
        // Dedup uncached work by canonical key.
        let mut pending: Vec<usize> = Vec::new();
        for i in 0..plans.len() {
            if out[i].is_none() && !pending.iter().any(|&j| plans[j].key() == plans[i].key()) {
                pending.push(i);
            }
        }
        if !pending.is_empty() {
            self.misses
                .fetch_add(pending.len() as u64, AtomicOrdering::Relaxed);
            let refs: Vec<&QueryPlan> = pending.iter().map(|&i| &plans[i]).collect();
            let results = run_plans(&self.pass_context(state), &refs, true)?;
            for (&i, result) in pending.iter().zip(results) {
                let result = Arc::new(self.attach_tier2(&plans[i], state, result, None)?);
                self.insert(plans[i].key(), epoch, Arc::clone(&result));
                out[i] = Some(result);
            }
        }
        // Batch-internal duplicates resolve against the slots this very
        // batch just filled — never back through the shared cache, which
        // another thread may clear concurrently.
        for i in 0..plans.len() {
            if out[i].is_none() {
                let twin = pending
                    .iter()
                    .find(|&&j| plans[j].key() == plans[i].key())
                    .expect("every uncached plan has a pending representative");
                out[i] = out[*twin].clone();
            }
        }
        Ok(out
            .into_iter()
            .map(|slot| slot.expect("every slot was cached, computed, or twinned"))
            .collect())
    }

    /// Cache accounting: lookups served ([`CacheStats::hits`]) vs passes
    /// run ([`CacheStats::misses`]), retained results, LRU evictions and
    /// incremental repairs.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self
            .cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        CacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
            entries: cache.len,
            evictions: cache.evictions,
            repairs: self.repairs.load(AtomicOrdering::Relaxed),
        }
    }

    /// Tier-2 accounting: evaluations invoked, survivors simulated,
    /// trials paid, rows reused across delta repair, and wall-clock
    /// spent — all zero until a plan with sim objectives runs.
    #[must_use]
    pub fn sim_stats(&self) -> SimStats {
        SimStats {
            evaluations: self.sim_evaluations.load(AtomicOrdering::Relaxed),
            survivors: self.sim_survivors.load(AtomicOrdering::Relaxed),
            trials: self.sim_trials.load(AtomicOrdering::Relaxed),
            reused_rows: self.sim_reused.load(AtomicOrdering::Relaxed),
            millis: self.sim_millis.load(AtomicOrdering::Relaxed),
        }
    }

    /// Drops every memoized result (the hit/miss/eviction counters keep
    /// counting).
    pub fn clear_cache(&self) {
        self.cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Constraint, KnobSweep};
    use f1_components::names;
    use f1_units::Watts;

    fn session() -> Session {
        Session::new(Arc::new(Catalog::paper()))
    }

    #[test]
    fn sessions_and_results_are_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<ResultSet>();
    }

    #[test]
    fn session_matches_engine_query() {
        let catalog = Catalog::paper();
        let engine = crate::dse::Engine::new(&catalog);
        let borrowed = engine.query().run().unwrap();
        let owned = session()
            .run(&QueryPlan::builder().build().unwrap())
            .unwrap();
        assert_eq!(*owned, borrowed);
    }

    #[test]
    fn repeated_plans_hit_the_cache_pointer_identically() {
        let session = session();
        let plan = QueryPlan::builder().build().unwrap();
        let first = session.run(&plan).unwrap();
        let second = session.run(&plan).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // A semantically equal plan built separately shares the key,
        // hence the entry.
        let rebuilt = QueryPlan::builder().build().unwrap();
        let third = session.run(&rebuilt).unwrap();
        assert!(Arc::ptr_eq(&first, &third));
        let stats = session.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));

        session.clear_cache();
        let fourth = session.run(&plan).unwrap();
        assert!(!Arc::ptr_eq(&first, &fourth));
        assert_eq!(*first, *fourth, "recomputation is deterministic");
    }

    #[test]
    fn batch_shares_a_pass_and_matches_standalone() {
        let session = session();
        let caps = [20.0, 10.0, 5.0, 2.0];
        let plans: Vec<QueryPlan> = caps
            .iter()
            .map(|&w| {
                QueryPlan::builder()
                    .constraint(Constraint::MaxTotalTdp(Watts::new(w)))
                    .build()
                    .unwrap()
            })
            .collect();
        let batch = session.run_batch(&plans).unwrap();
        assert_eq!(batch.len(), plans.len());
        for (plan, batched) in plans.iter().zip(&batch) {
            let standalone = Session::new(session.catalog()).run(plan).unwrap();
            assert_eq!(**batched, *standalone);
        }
        // The batch memoized every member.
        assert_eq!(session.cache_stats().entries, plans.len());
        for (plan, batched) in plans.iter().zip(&batch) {
            assert!(Arc::ptr_eq(batched, &session.run(plan).unwrap()));
        }
    }

    #[test]
    fn batch_dedups_identical_plans() {
        let session = session();
        let plan = QueryPlan::builder().build().unwrap();
        let twin = QueryPlan::builder().build().unwrap();
        let results = session.run_batch(&[plan, twin]).unwrap();
        assert!(Arc::ptr_eq(&results[0], &results[1]));
        assert_eq!(session.cache_stats().entries, 1);
    }

    #[test]
    fn batch_with_mixed_signatures_still_matches_standalone() {
        let catalog = Arc::new(Catalog::paper());
        let spark = catalog.airframe_id(names::DJI_SPARK).unwrap();
        let session = Session::new(Arc::clone(&catalog));
        let plans = vec![
            QueryPlan::builder().build().unwrap(),
            QueryPlan::builder().airframes(&[spark]).build().unwrap(),
            QueryPlan::builder()
                .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
                .build()
                .unwrap(),
        ];
        let batch = session.run_batch(&plans).unwrap();
        for (plan, batched) in plans.iter().zip(&batch) {
            let standalone = Session::new(Arc::clone(&catalog)).run(plan).unwrap();
            assert_eq!(**batched, *standalone);
        }
    }

    #[test]
    fn foreign_ids_are_rejected_not_panicking() {
        let session = session();
        let plan = QueryPlan::builder()
            .airframes(&[AirframeId::from_index(10_000)])
            .build()
            .unwrap();
        match session.run(&plan).unwrap_err() {
            SkylineError::PlanCatalog {
                family,
                index,
                count,
            } => {
                assert_eq!(family, "airframe");
                assert_eq!(index, 10_000);
                assert_eq!(count, session.catalog().airframe_count());
            }
            other => panic!("expected PlanCatalog, got {other:?}"),
        }
        let plan = QueryPlan::builder()
            .battery(f1_components::BatteryId::from_index(9_999))
            .build()
            .unwrap();
        assert!(matches!(
            session.run(&plan).unwrap_err(),
            SkylineError::PlanCatalog {
                family: "battery",
                ..
            }
        ));
    }

    #[test]
    fn top_k_equals_ranked_prefix() {
        let result = session()
            .run(&QueryPlan::builder().build().unwrap())
            .unwrap();
        let ranked = result.ranked();
        for k in [0, 1, 2, 7, ranked.len(), ranked.len() + 5] {
            assert_eq!(result.top_k(k), &ranked[..k.min(ranked.len())], "k={k}");
        }
        assert_eq!(
            result.best().map(|p| p.candidate),
            ranked
                .first()
                .map(|&i| result.points()[i])
                .filter(|p| p.outcome.feasible)
                .map(|p| p.candidate)
        );
    }

    #[test]
    fn pages_tile_the_result_exactly() {
        let result = session()
            .run(&QueryPlan::builder().build().unwrap())
            .unwrap();
        let n = result.len();
        for limit in [1, 7, 64, n, n + 3] {
            let pages: Vec<_> = result.pages(limit).collect();
            assert_eq!(pages.len(), n.div_ceil(limit), "limit={limit}");
            let mut seen = 0usize;
            for page in &pages {
                assert_eq!(page.offset(), seen);
                assert!(page.len() <= limit);
                assert_eq!(page.points().len(), page.len());
                assert_eq!(page.column(0).len(), page.len());
                for (index, point) in page.rows() {
                    assert_eq!(point, &result.points()[index]);
                }
                seen += page.len();
            }
            assert_eq!(seen, n);
        }
        // Out-of-range page is empty, not a panic.
        assert!(result.page(n + 10, 5).is_empty());
    }

    #[test]
    fn json_export_is_well_formed() {
        let session = session();
        let plan = QueryPlan::builder()
            .objectives(&[Objective::SafeVelocity, Objective::MissionEnergyWhPerKm])
            .build()
            .unwrap();
        let result = session.run(&plan).unwrap();
        let json = result.to_json(&session.catalog());
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"objectives\""));
        assert!(json.contains("\"velocity\": ["));
        assert!(json.contains("\"frontier\": ["));
        assert!(json.contains(&format!("\"count\": {}", result.len())));
        // Non-finite energies (infeasible builds) must be null, never
        // bare `inf`.
        assert!(!json.contains("inf"));
        // Balanced braces/brackets (cheap well-formedness check; no JSON
        // parser in the offline stub set).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "{open}{close}"
            );
        }
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\u000a\"");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn column_access_matches_rows() {
        let result = session()
            .run(
                &QueryPlan::builder()
                    .objectives(&[Objective::TotalTdp, Objective::SafeVelocity])
                    .build()
                    .unwrap(),
            )
            .unwrap();
        assert_eq!(result.column(0).len(), result.len());
        assert_eq!(
            result.column_for(Objective::SafeVelocity).unwrap(),
            result.column(1)
        );
        assert!(result.column_for(Objective::PayloadMass).is_none());
        for i in 0..result.len().min(50) {
            assert_eq!(result.row(i), vec![result.value(i, 0), result.value(i, 1)]);
        }
    }
}
