//! The composable DSE query API: typed objectives, constraints and knob
//! sweeps over the exploration engine.
//!
//! [`Engine::explore_all`](crate::dse::Engine::explore_all) hardcodes one
//! objective set — the (safe velocity, TDP, payload) Pareto. This module
//! makes the exploration *expressible*: a [`Query`] names what to
//! optimize ([`Objective`]), what to filter ([`Constraint`]), and which
//! continuous Table II knob ranges to sweep around each discrete
//! candidate ([`KnobSweep`]).
//!
//! Since the compile/execute split, [`Query`] is a thin borrowed facade:
//! [`Query::run`] compiles the request into an owned
//! [`QueryPlan`] and executes it through the
//! same fused shared-pass core that backs [`Session`](crate::Session) —
//! use [`Query::plan`] to keep the compiled plan and hand it to a
//! session for caching, batching and multi-threaded serving.
//!
//! ```
//! use f1_components::{names, Catalog};
//! use f1_skyline::dse::Engine;
//! use f1_skyline::query::{Constraint, Knob, KnobSweep, Objective};
//! use f1_units::Watts;
//!
//! let catalog = Catalog::paper();
//! let engine = Engine::new(&catalog);
//! let result = engine
//!     .query()
//!     .objectives(&[
//!         Objective::SafeVelocity,
//!         Objective::TotalTdp,
//!         Objective::PayloadMass,
//!         Objective::MissionEnergyWhPerKm,
//!     ])
//!     .constraint(Constraint::MaxTotalTdp(Watts::new(20.0)))
//!     .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
//!     .run()?;
//! assert!(!result.frontier().is_empty());
//! # Ok::<(), f1_skyline::SkylineError>(())
//! ```

use std::collections::BTreeMap;

use f1_components::{AirframeId, AlgorithmId, BatteryId, ComputeId, SensorId};
use f1_model::ModelError;
use f1_units::{Grams, MetersPerSecond, Watts};

use crate::dse::{Candidate, DseOutcome, DseResult, Engine, Outcome};
use crate::plan::{PlanBuilder, QueryPlan};
use crate::session::{run_plans, ResultSet};
use crate::SkylineError;

pub use crate::mission::SENSOR_STACK_POWER_W;

/// One optimization axis of a query.
///
/// The first objective of a query is its **primary** objective: ranked
/// reports ([`ResultSet::ranked`], [`Engine::describe_query`]) sort by
/// it. Frontiers treat all objectives simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Objective {
    /// F-1 safe velocity (m/s) — maximize.
    SafeVelocity,
    /// Combined compute TDP (W) — minimize.
    TotalTdp,
    /// Total payload mass including heatsink (g) — minimize.
    PayloadMass,
    /// Cruise energy per kilometre (Wh/km) at the achieved safe velocity,
    /// from the momentum-theory power model of [`crate::mission`] —
    /// minimize. Infeasible builds score `+∞` and never reach a frontier.
    MissionEnergyWhPerKm,
    /// Hover endurance (minutes) on the query's battery — maximize.
    /// Requires a mounted battery; infeasible builds score zero.
    HoverEnduranceMin,
}

impl Objective {
    /// Every objective, in the order used by reports.
    pub const ALL: [Self; 5] = [
        Self::SafeVelocity,
        Self::TotalTdp,
        Self::PayloadMass,
        Self::MissionEnergyWhPerKm,
        Self::HoverEnduranceMin,
    ];

    /// Whether bigger values are better (`false`: smaller is better).
    #[must_use]
    pub fn maximize(self) -> bool {
        matches!(self, Self::SafeVelocity | Self::HoverEnduranceMin)
    }

    /// Position of this objective in [`Objective::ALL`] — the slot it
    /// occupies in the shared-pass executor's per-job value cache.
    pub(crate) fn all_index(self) -> usize {
        match self {
            Self::SafeVelocity => 0,
            Self::TotalTdp => 1,
            Self::PayloadMass => 2,
            Self::MissionEnergyWhPerKm => 3,
            Self::HoverEnduranceMin => 4,
        }
    }

    /// Short human label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SafeVelocity => "velocity",
            Self::TotalTdp => "tdp",
            Self::PayloadMass => "payload",
            Self::MissionEnergyWhPerKm => "energy",
            Self::HoverEnduranceMin => "endurance",
        }
    }

    /// The unit the objective's values are reported in.
    #[must_use]
    pub fn unit(self) -> &'static str {
        match self {
            Self::SafeVelocity => "m/s",
            Self::TotalTdp => "W",
            Self::PayloadMass => "g",
            Self::MissionEnergyWhPerKm => "Wh/km",
            Self::HoverEnduranceMin => "min",
        }
    }
}

impl core::fmt::Display for Objective {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Objective {
    type Err = String;

    /// Parses the CLI spellings: `velocity`/`vsafe`, `tdp`/`power`,
    /// `payload`/`mass`, `energy`, `endurance`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "velocity" | "vsafe" | "safe-velocity" => Ok(Self::SafeVelocity),
            "tdp" | "power" => Ok(Self::TotalTdp),
            "payload" | "mass" => Ok(Self::PayloadMass),
            "energy" | "wh-per-km" => Ok(Self::MissionEnergyWhPerKm),
            "endurance" | "hover-endurance" => Ok(Self::HoverEnduranceMin),
            other => Err(format!(
                "unknown objective {other:?} (try velocity, tdp, payload, energy, endurance)"
            )),
        }
    }
}

/// A hard filter applied to every evaluated candidate before ranking and
/// frontier computation. Filtered candidates are counted in
/// [`ResultSet::dropped`], not returned.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Constraint {
    /// Keep builds achieving at least this safe velocity (also drops
    /// infeasible builds, whose velocity is zero).
    MinVelocity(MetersPerSecond),
    /// Keep builds whose combined compute TDP is at most this.
    MaxTotalTdp(Watts),
    /// Keep builds whose payload (incl. heatsink) is at most this.
    MaxPayload(Grams),
    /// Keep only builds that can hover.
    FeasibleOnly,
}

impl Constraint {
    /// Does this outcome satisfy the constraint?
    #[must_use]
    pub fn admits(&self, outcome: &Outcome) -> bool {
        match *self {
            Self::MinVelocity(v) => outcome.velocity >= v,
            Self::MaxTotalTdp(w) => outcome.total_tdp <= w,
            Self::MaxPayload(g) => outcome.payload <= g,
            Self::FeasibleOnly => outcome.feasible,
        }
    }
}

/// A continuous knob from paper Table II, swept *around* each discrete
/// catalog candidate (the §VI-A "what-if" generalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Knob {
    /// Multiply the platform TDP (throughput unchanged, heatsink resized
    /// — the paper's AGX 30 W → 15 W study is `TdpScale` at 0.5).
    TdpScale,
    /// Multiply the sensor frame rate.
    SensorRateScale,
    /// Multiply the sensor range.
    SensorRangeScale,
    /// Add extra payload mass in grams (cargo, ballast). Values must be
    /// ≥ 0: the build's own parts and the mounted battery cannot be
    /// shed by a sweep (shedding battery mass while its energy still
    /// backs the endurance objective would fabricate impossible
    /// frontier points; use [`Knob::TdpScale`] for the
    /// heatsink-shedding what-if).
    PayloadDelta,
    /// Multiply the airframe's base (frame + motors + ESC) mass —
    /// Table II's "Drone Weight". Evaluated through per-setting airframe
    /// variant tables; a lighter frame buys acceleration headroom.
    WeightScale,
    /// Multiply the per-rotor pull (thrust) — Table II's "Rotor Pull".
    /// Evaluated through per-setting airframe variant tables.
    RotorPull,
}

impl Knob {
    /// The paper Table II parameter this knob corresponds to.
    #[must_use]
    pub fn table2_parameter(self) -> &'static str {
        match self {
            Self::TdpScale => "Compute TDP",
            Self::SensorRateScale => "Sensor Framerate",
            Self::SensorRangeScale => "Sensor Range",
            Self::PayloadDelta => "Payload Weight",
            Self::WeightScale => "Drone Weight",
            Self::RotorPull => "Rotor Pull",
        }
    }

    /// The token naming this knob in canonical plan keys.
    pub(crate) fn key_token(self) -> &'static str {
        match self {
            Self::TdpScale => "tdp_scale",
            Self::SensorRateScale => "sensor_rate_scale",
            Self::SensorRangeScale => "sensor_range_scale",
            Self::PayloadDelta => "payload_delta",
            Self::WeightScale => "weight_scale",
            Self::RotorPull => "rotor_pull",
        }
    }

    /// Inverse of [`key_token`](Self::key_token).
    pub(crate) fn from_key_token(token: &str) -> Option<Self> {
        match token {
            "tdp_scale" => Some(Self::TdpScale),
            "sensor_rate_scale" => Some(Self::SensorRateScale),
            "sensor_range_scale" => Some(Self::SensorRangeScale),
            "payload_delta" => Some(Self::PayloadDelta),
            "weight_scale" => Some(Self::WeightScale),
            "rotor_pull" => Some(Self::RotorPull),
            _ => None,
        }
    }
}

/// One swept knob with its values. Multiple sweeps combine as a
/// cartesian product; sweeps of the same knob compose (scales multiply,
/// deltas add).
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSweep {
    knob: Knob,
    values: Vec<f64>,
}

impl KnobSweep {
    /// A sweep over explicit values (scale factors, or gram deltas for
    /// [`Knob::PayloadDelta`]). Include `1.0` (or `0.0` for deltas) to
    /// keep the unmodified candidate in the result set.
    #[must_use]
    pub fn new(knob: Knob, values: Vec<f64>) -> Self {
        Self { knob, values }
    }

    /// A sweep over `steps` evenly spaced values in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` or the interval is not ordered.
    #[must_use]
    pub fn linear(knob: Knob, lo: f64, hi: f64, steps: usize) -> Self {
        assert!(steps >= 2, "need at least two sweep steps");
        assert!(lo < hi, "sweep interval must be ordered");
        let values = (0..steps)
            .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
            .collect();
        Self { knob, values }
    }

    /// The swept knob.
    #[must_use]
    pub fn knob(&self) -> Knob {
        self.knob
    }

    /// The swept values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    pub(crate) fn validate(&self) -> Result<(), SkylineError> {
        let out_of_domain = |value: f64, expected: &'static str| {
            SkylineError::Model(ModelError::OutOfDomain {
                parameter: "knob sweep value",
                value,
                expected,
            })
        };
        if self.values.is_empty() {
            return Err(out_of_domain(f64::NAN, "at least one sweep value"));
        }
        for &v in &self.values {
            match self.knob {
                Knob::TdpScale
                | Knob::SensorRateScale
                | Knob::SensorRangeScale
                | Knob::WeightScale
                | Knob::RotorPull => {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(out_of_domain(v, "finite scale factor > 0"));
                    }
                }
                Knob::PayloadDelta => {
                    // Negative deltas are rejected outright: there is no
                    // baseline cargo to shed, so a negative value could
                    // only erase part or battery mass while objectives
                    // (hover endurance) kept crediting the full battery
                    // energy — a physically impossible frontier point.
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(out_of_domain(v, "finite payload delta >= 0 (g)"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The resolved knob values one evaluated point was produced under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnobSetting {
    /// TDP scale factor (1 = stock).
    pub tdp_scale: f64,
    /// Sensor frame-rate scale factor (1 = stock).
    pub sensor_rate_scale: f64,
    /// Sensor range scale factor (1 = stock).
    pub sensor_range_scale: f64,
    /// Extra payload mass (0 = stock; the query's battery, if any, is
    /// accounted separately).
    pub payload_delta: Grams,
    /// Airframe base-mass scale factor (1 = stock).
    pub weight_scale: f64,
    /// Per-rotor pull scale factor (1 = stock).
    pub rotor_pull_scale: f64,
}

impl KnobSetting {
    /// The stock, unswept setting.
    pub const IDENTITY: Self = Self {
        tdp_scale: 1.0,
        sensor_rate_scale: 1.0,
        sensor_range_scale: 1.0,
        payload_delta: Grams::ZERO,
        weight_scale: 1.0,
        rotor_pull_scale: 1.0,
    };

    /// Is this the stock setting?
    #[must_use]
    pub fn is_identity(&self) -> bool {
        *self == Self::IDENTITY
    }

    /// Compact human description of the non-stock knobs, e.g.
    /// `"tdp×0.50 weight×0.80"`; empty for the identity setting.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        let mut scale = |label: &str, v: f64| {
            if v != 1.0 {
                parts.push(format!("{label}×{v:.2}"));
            }
        };
        scale("tdp", self.tdp_scale);
        scale("rate", self.sensor_rate_scale);
        scale("range", self.sensor_range_scale);
        scale("weight", self.weight_scale);
        scale("pull", self.rotor_pull_scale);
        if self.payload_delta != Grams::ZERO {
            parts.push(format!("load+{:.0}g", self.payload_delta.get()));
        }
        parts.join(" ")
    }

    pub(crate) fn apply(mut self, knob: Knob, value: f64) -> Self {
        match knob {
            Knob::TdpScale => self.tdp_scale *= value,
            Knob::SensorRateScale => self.sensor_rate_scale *= value,
            Knob::SensorRangeScale => self.sensor_range_scale *= value,
            Knob::PayloadDelta => {
                self.payload_delta = Grams::new(self.payload_delta.get() + value);
            }
            Knob::WeightScale => self.weight_scale *= value,
            Knob::RotorPull => self.rotor_pull_scale *= value,
        }
        self
    }
}

/// Parameters of the cruise/hover power model used by the energy
/// objectives; defaults match [`crate::mission::MissionSpec::over`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionProfile {
    /// Hover figure of merit for the momentum-theory power estimate.
    pub figure_of_merit: f64,
    /// Parasitic power coefficient, W/(m/s)³.
    pub parasitic_coeff: f64,
    /// Usable battery fraction (depth-of-discharge guard).
    pub battery_reserve: f64,
}

impl Default for MissionProfile {
    fn default() -> Self {
        Self {
            figure_of_merit: crate::mission::DEFAULT_FIGURE_OF_MERIT,
            parasitic_coeff: crate::mission::DEFAULT_PARASITIC_COEFF,
            battery_reserve: crate::mission::DEFAULT_BATTERY_RESERVE,
        }
    }
}

impl MissionProfile {
    pub(crate) fn validate(&self) -> Result<(), SkylineError> {
        let out_of_domain = |parameter, value, expected| {
            SkylineError::Model(ModelError::OutOfDomain {
                parameter,
                value,
                expected,
            })
        };
        if !(self.figure_of_merit.is_finite()
            && self.figure_of_merit > 0.0
            && self.figure_of_merit <= 1.0)
        {
            return Err(out_of_domain(
                "figure of merit",
                self.figure_of_merit,
                "0 < FoM <= 1",
            ));
        }
        if !(self.parasitic_coeff.is_finite() && self.parasitic_coeff >= 0.0) {
            return Err(out_of_domain(
                "parasitic coeff",
                self.parasitic_coeff,
                "finite and >= 0",
            ));
        }
        if !(self.battery_reserve.is_finite()
            && self.battery_reserve > 0.0
            && self.battery_reserve <= 1.0)
        {
            return Err(out_of_domain(
                "battery reserve",
                self.battery_reserve,
                "0 < reserve <= 1",
            ));
        }
        Ok(())
    }
}

/// One evaluated point of a query: a discrete candidate, the knob
/// setting it was evaluated under, and its outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPoint {
    /// The airframe the build flies on.
    pub airframe: AirframeId,
    /// The discrete catalog candidate (stock throughput/ids; the knob
    /// setting describes how the parts were modified).
    pub candidate: Candidate,
    /// The knob setting this point was evaluated under.
    pub setting: KnobSetting,
    /// The F-1 outcome.
    pub outcome: Outcome,
}

/// The number of distinct objectives a query can carry
/// ([`Objective::ALL`] — objective lists are deduplicated), which bounds
/// the fused per-job objective row at a stack array.
pub(crate) const MAX_OBJECTIVES: usize = Objective::ALL.len();

/// A builder-style, composable design-space query over an [`Engine`].
///
/// Construct with [`Engine::query`]; see the [module docs](self) for a
/// full example. With no explicit objectives, constraints or sweeps, a
/// query reproduces the engine's classic 3-objective exploration —
/// [`Engine::explore_all`] is literally a default query.
///
/// A `Query` borrows the engine; [`Query::plan`] compiles the identical
/// request into an owned [`QueryPlan`] for the
/// [`Session`](crate::Session) serving path.
#[derive(Debug, Clone)]
pub struct Query<'e, 'c> {
    engine: &'e Engine<'c>,
    builder: PlanBuilder,
}

/// The objectives a query with none specified runs under — the engine's
/// classic (velocity ↑, TDP ↓, payload ↓) Pareto.
pub const DEFAULT_OBJECTIVES: [Objective; 3] = [
    Objective::SafeVelocity,
    Objective::TotalTdp,
    Objective::PayloadMass,
];

impl<'e, 'c> Query<'e, 'c> {
    pub(crate) fn new(engine: &'e Engine<'c>) -> Self {
        Self {
            engine,
            builder: QueryPlan::builder(),
        }
    }

    /// Appends one objective (the first appended is the primary).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.builder = self.builder.objective(objective);
        self
    }

    /// Replaces the objective list (first entry is the primary).
    #[must_use]
    pub fn objectives(mut self, objectives: &[Objective]) -> Self {
        self.builder = self.builder.objectives(objectives);
        self
    }

    /// Adds a hard constraint.
    #[must_use]
    pub fn constraint(mut self, constraint: Constraint) -> Self {
        self.builder = self.builder.constraint(constraint);
        self
    }

    /// Adds a knob sweep (cartesian product with any earlier sweeps).
    #[must_use]
    pub fn sweep(mut self, sweep: KnobSweep) -> Self {
        self.builder = self.builder.sweep(sweep);
        self
    }

    /// Restricts the query to these airframes (default: all).
    #[must_use]
    pub fn airframes(mut self, ids: &[AirframeId]) -> Self {
        self.builder = self.builder.airframes(ids);
        self
    }

    /// Restricts the query to these sensors (default: all).
    #[must_use]
    pub fn sensors(mut self, ids: &[SensorId]) -> Self {
        self.builder = self.builder.sensors(ids);
        self
    }

    /// Restricts the query to these compute platforms (default: all).
    #[must_use]
    pub fn computes(mut self, ids: &[ComputeId]) -> Self {
        self.builder = self.builder.computes(ids);
        self
    }

    /// Restricts the query to these algorithms (default: all).
    #[must_use]
    pub fn algorithms(mut self, ids: &[AlgorithmId]) -> Self {
        self.builder = self.builder.algorithms(ids);
        self
    }

    /// Mounts a battery on every candidate: its mass joins the payload,
    /// and [`Objective::HoverEnduranceMin`] draws on its capacity.
    #[must_use]
    pub fn battery(mut self, id: BatteryId) -> Self {
        self.builder = self.builder.battery(id);
        self
    }

    /// Overrides the power-model parameters of the energy objectives.
    #[must_use]
    pub fn mission_profile(mut self, profile: MissionProfile) -> Self {
        self.builder = self.builder.mission_profile(profile);
        self
    }

    /// Sets the point-materialization policy (see
    /// [`KeepPoints`](crate::KeepPoints)): `Auto` (default) streams
    /// only past [`crate::shard::STREAM_AUTO_THRESHOLD`] candidates,
    /// `All` always materializes, `FrontierOnly` always streams.
    #[must_use]
    pub fn keep_points(mut self, keep_points: crate::KeepPoints) -> Self {
        self.builder = self.builder.keep_points(keep_points);
        self
    }

    /// The objectives this query will run under (the default set if none
    /// were specified, deduplicated preserving first occurrence).
    #[must_use]
    pub fn resolved_objectives(&self) -> Vec<Objective> {
        self.builder.resolved_objectives()
    }

    /// Compiles this query into an owned, engine-free [`QueryPlan`] —
    /// the value to cache, batch and serve through a
    /// [`Session`](crate::Session).
    ///
    /// # Errors
    ///
    /// Same validation as [`PlanBuilder::build`].
    pub fn plan(&self) -> Result<QueryPlan, SkylineError> {
        self.builder.clone().build()
    }

    /// Compiles and runs the query: one fused batched parallel pass over
    /// every airframe × knob setting × characterized candidate —
    /// evaluation, constraint filtering **and** objective extraction all
    /// happen inside the pass — followed by the O(n log n) frontier.
    ///
    /// This is a compatibility wrapper over [`plan`](Self::plan) plus
    /// the shared-pass executor that backs
    /// [`Session::run`](crate::Session::run); unlike a session it
    /// caches nothing.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::IncompleteSystem`] when
    /// [`Objective::HoverEnduranceMin`] is requested without a
    /// [`battery`](Self::battery), [`SkylineError::Model`] for invalid
    /// sweep values or mission-profile parameters, and
    /// [`SkylineError::KnobVariant`] — naming the offending knob — when
    /// a sweep value produces an out-of-domain component variant. All of
    /// these surface **before** the parallel pass; an evaluation error
    /// raised mid-pass (unreachable for catalog parts and validated
    /// variants) is propagated deterministically in enumeration order.
    /// Infeasible builds are outcomes, not errors.
    pub fn run(&self) -> Result<ResultSet, SkylineError> {
        self.run_impl(true)
    }

    /// [`run`](Self::run) without the frontier pass, for the classic
    /// `explore_*` wrappers that only re-rank points and would discard
    /// it ([`Exploration::pareto_frontier`](crate::dse::Exploration)
    /// computes its own on demand). The returned result's `frontier()`
    /// is empty.
    pub(crate) fn run_without_frontier(&self) -> Result<ResultSet, SkylineError> {
        self.run_impl(false)
    }

    fn run_impl(&self, with_frontier: bool) -> Result<ResultSet, SkylineError> {
        let plan = self.plan()?;
        let mut results = run_plans(&self.engine.pass_context(), &[&plan], with_frontier)?;
        Ok(results.pop().expect("one plan in, one result out"))
    }
}

impl<'c> Engine<'c> {
    /// Starts a composable design-space query over this engine's catalog.
    /// See the [`query`](self) module docs for the full API.
    #[must_use]
    pub fn query(&self) -> Query<'_, 'c> {
        Query::new(self)
    }

    /// Renders a query result into the string-keyed [`DseResult`]
    /// compatibility view, one per airframe (in airframe-name order),
    /// each ranked by the query's **primary objective** — feasible
    /// first, ties in enumeration order.
    #[must_use]
    pub fn describe_query(&self, result: &ResultSet) -> Vec<DseResult> {
        let catalog = self.catalog();
        let mut groups: BTreeMap<AirframeId, Vec<usize>> = BTreeMap::new();
        for index in result.ranked() {
            groups
                .entry(result.point(index).airframe)
                .or_default()
                .push(index);
        }
        self.airframe_ids()
            .iter()
            .filter_map(|id| groups.get(id).map(|indices| (id, indices)))
            .map(|(&airframe, indices)| DseResult {
                airframe: catalog.airframe_by_id(airframe).name().to_owned(),
                ranked: indices
                    .iter()
                    .map(|&i| {
                        let point = result.point(i);
                        DseOutcome {
                            sensor: catalog
                                .sensor_by_id(point.candidate.sensor)
                                .name()
                                .to_owned(),
                            compute: catalog
                                .compute_by_id(point.candidate.compute)
                                .name()
                                .to_owned(),
                            algorithm: catalog
                                .algorithm_by_id(point.candidate.algorithm)
                                .name()
                                .to_owned(),
                            velocity: point.outcome.velocity,
                            bound: point.outcome.bound,
                            feasible: point.outcome.feasible,
                        }
                    })
                    .collect(),
                uncharacterized: result.uncharacterized(),
                // Per-airframe slice of the query-wide count, so the
                // reports sum back to `result.nonfinite()`.
                nonfinite: indices
                    .iter()
                    .filter(|&&i| {
                        result.point(i).outcome.feasible
                            && (0..result.objectives().len())
                                .any(|p| !result.value(i, p).is_finite())
                    })
                    .count(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::{names, Catalog};

    #[test]
    fn default_query_matches_classic_exploration() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine.query().run().unwrap();
        let classic = engine.explore_all().unwrap();
        assert_eq!(result.points().len(), classic.evaluated_count());
        assert_eq!(result.objectives(), DEFAULT_OBJECTIVES);
        // Identical frontier membership (order differs: the classic API
        // reports in (airframe, rank) order, the query in enumeration
        // order).
        let classic_frontier = classic.pareto_frontier();
        assert_eq!(result.frontier().len(), classic_frontier.len());
        for point in result.frontier_points() {
            assert!(classic_frontier.iter().any(|p| {
                p.airframe == point.airframe
                    && *p.evaluated
                        == crate::dse::Evaluated {
                            candidate: point.candidate,
                            outcome: point.outcome,
                        }
            }));
        }
    }

    #[test]
    fn constraints_filter_and_count() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let all = engine.query().run().unwrap();
        let constrained = engine
            .query()
            .constraint(Constraint::MaxTotalTdp(Watts::new(5.0)))
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert!(constrained.points().len() < all.points().len());
        assert_eq!(
            constrained.points().len() + constrained.dropped(),
            all.points().len()
        );
        for point in constrained.points() {
            assert!(point.outcome.feasible);
            assert!(point.outcome.total_tdp.get() <= 5.0);
        }
    }

    #[test]
    fn min_velocity_drops_infeasible() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .constraint(Constraint::MinVelocity(MetersPerSecond::new(0.1)))
            .run()
            .unwrap();
        assert!(result.points().iter().all(|p| p.outcome.feasible));
    }

    #[test]
    fn tdp_sweep_reproduces_parts_level_what_if() {
        // The §VI-A AGX 30 W → 15 W study as a knob sweep: identical
        // arithmetic to the hand-built evaluate_parts path.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let spark = catalog.airframe_id(names::DJI_SPARK).unwrap();
        let result = engine
            .query()
            .airframes(&[spark])
            .sensors(&[catalog.sensor_id(names::RGB_60).unwrap()])
            .computes(&[catalog.compute_id(names::AGX).unwrap()])
            .algorithms(&[catalog.algorithm_id(names::DRONET).unwrap()])
            .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
            .run()
            .unwrap();
        assert_eq!(result.points().len(), 2);
        let stock = &result.points()[0];
        let halved = &result.points()[1];
        assert!(stock.setting.is_identity());
        assert_eq!(halved.setting.tdp_scale, 0.5);
        let manual = engine
            .evaluate_parts(
                catalog.airframe(names::DJI_SPARK).unwrap(),
                catalog.sensor(names::RGB_60).unwrap(),
                &catalog
                    .compute(names::AGX)
                    .unwrap()
                    .with_tdp_scaled(0.5)
                    .unwrap(),
                catalog.throughput(names::AGX, names::DRONET).unwrap(),
            )
            .unwrap();
        assert_eq!(halved.outcome, manual);
        assert!(halved.outcome.payload < stock.outcome.payload);
    }

    #[test]
    fn payload_delta_and_range_sweeps_shift_outcomes() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
        let result = engine
            .query()
            .airframes(&[pelican])
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![0.0, 200.0]))
            .sweep(KnobSweep::new(Knob::SensorRangeScale, vec![1.0, 2.0]))
            .run()
            .unwrap();
        // 4 settings per candidate.
        let per_candidate = 4;
        assert_eq!(result.points().len() % per_candidate, 0);
        // Extra payload can only lower (or keep) velocity; extra range
        // can only raise (or keep) it.
        let base = result
            .points()
            .iter()
            .find(|p| p.setting.is_identity())
            .unwrap();
        let heavy = result
            .points()
            .iter()
            .find(|p| {
                p.candidate == base.candidate
                    && p.setting.payload_delta.get() == 200.0
                    && p.setting.sensor_range_scale == 1.0
            })
            .unwrap();
        assert!(heavy.outcome.payload > base.outcome.payload);
        assert!(heavy.outcome.velocity <= base.outcome.velocity);
        let far = result
            .points()
            .iter()
            .find(|p| {
                p.candidate == base.candidate
                    && p.setting.payload_delta.get() == 0.0
                    && p.setting.sensor_range_scale == 2.0
            })
            .unwrap();
        assert!(far.outcome.velocity >= base.outcome.velocity);
    }

    #[test]
    fn airframe_knob_sweeps_shift_outcomes_through_variant_tables() {
        // Table II's drone-weight / rotor-pull knobs: a lighter frame or
        // stronger rotors can only help (more acceleration headroom ⇒
        // velocity up, or unchanged when another stage binds); the
        // payload objective must be untouched (the *frame* changed, not
        // the carried mass).
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
        let result = engine
            .query()
            .airframes(&[pelican])
            .sweep(KnobSweep::new(Knob::WeightScale, vec![1.0, 0.7]))
            .sweep(KnobSweep::new(Knob::RotorPull, vec![1.0, 1.3]))
            .run()
            .unwrap();
        let base = result
            .points()
            .iter()
            .find(|p| p.setting.is_identity())
            .unwrap();
        let light = result
            .points()
            .iter()
            .find(|p| {
                p.candidate == base.candidate
                    && p.setting.weight_scale == 0.7
                    && p.setting.rotor_pull_scale == 1.0
            })
            .unwrap();
        let strong = result
            .points()
            .iter()
            .find(|p| {
                p.candidate == base.candidate
                    && p.setting.weight_scale == 1.0
                    && p.setting.rotor_pull_scale == 1.3
            })
            .unwrap();
        assert!(light.outcome.velocity >= base.outcome.velocity);
        assert!(strong.outcome.velocity >= base.outcome.velocity);
        assert_eq!(light.outcome.payload, base.outcome.payload);
        assert_eq!(strong.outcome.payload, base.outcome.payload);
        // Somewhere in the catalog the physics roof must actually move.
        assert!(
            result
                .points()
                .iter()
                .filter(|p| p.setting.weight_scale == 0.7)
                .zip(result.points().iter().filter(|p| p.setting.is_identity()))
                .any(|(l, b)| l.outcome.roof > b.outcome.roof),
            "weight scale 0.7 never raised a physics roof"
        );

        // A heavier frame can tip marginal builds into infeasibility.
        let heavy = engine
            .query()
            .airframes(&[pelican])
            .sweep(KnobSweep::new(Knob::WeightScale, vec![3.0]))
            .run()
            .unwrap();
        let infeasible_heavy = heavy
            .points()
            .iter()
            .filter(|p| !p.outcome.feasible)
            .count();
        let infeasible_base = result
            .points()
            .iter()
            .filter(|p| p.setting.is_identity() && !p.outcome.feasible)
            .count();
        assert!(infeasible_heavy >= infeasible_base);
    }

    #[test]
    fn airframe_knob_sweeps_match_manual_variants() {
        // The variant-table path must equal hand-built airframe variants
        // bit for bit.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let spark_id = catalog.airframe_id(names::DJI_SPARK).unwrap();
        let result = engine
            .query()
            .airframes(&[spark_id])
            .sensors(&[catalog.sensor_id(names::RGB_60).unwrap()])
            .computes(&[catalog.compute_id(names::NCS).unwrap()])
            .algorithms(&[catalog.algorithm_id(names::DRONET).unwrap()])
            .sweep(KnobSweep::new(Knob::WeightScale, vec![0.8]))
            .sweep(KnobSweep::new(Knob::RotorPull, vec![1.2]))
            .run()
            .unwrap();
        assert_eq!(result.points().len(), 1);
        let variant = catalog
            .airframe(names::DJI_SPARK)
            .unwrap()
            .with_base_mass_scaled(0.8)
            .unwrap()
            .with_rotor_pull_scaled(1.2)
            .unwrap();
        let manual = engine
            .evaluate_parts(
                &variant,
                catalog.sensor(names::RGB_60).unwrap(),
                catalog.compute(names::NCS).unwrap(),
                catalog.throughput(names::NCS, names::DRONET).unwrap(),
            )
            .unwrap();
        assert_eq!(result.points()[0].outcome, manual);
    }

    #[test]
    fn negative_payload_delta_is_rejected_and_cannot_erase_mass() {
        // Sweeps cannot shed part or battery mass: negative deltas are
        // rejected up front (there is no baseline cargo to remove, and
        // partially erasing a mounted battery's mass while endurance
        // credits its full energy would fabricate impossible frontier
        // points).
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
        let battery = catalog.battery_id(names::BATTERY_PELICAN).unwrap();
        let err = engine
            .query()
            .airframes(&[pelican])
            .battery(battery)
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![-10.0]))
            .run()
            .unwrap_err();
        assert!(matches!(err, SkylineError::Model(_)));

        // Direct callers of evaluate_parts_loaded get the same floor:
        // negative extra payload contributes nothing, never less.
        let spark = catalog.airframe(names::DJI_SPARK).unwrap();
        let sensor = catalog.sensor(names::RGB_60).unwrap();
        let ncs = catalog.compute(names::NCS).unwrap();
        let rate = catalog.throughput(names::NCS, names::DRONET).unwrap();
        let stock = engine.evaluate_parts(spark, sensor, ncs, rate).unwrap();
        let shed = engine
            .evaluate_parts_loaded(spark, sensor, ncs, rate, Grams::new(-10_000.0))
            .unwrap();
        assert_eq!(shed.payload, stock.payload);
    }

    #[test]
    fn energy_objective_ranks_and_is_finite_for_feasible() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .objectives(&[Objective::MissionEnergyWhPerKm, Objective::SafeVelocity])
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert!(!result.points().is_empty());
        for i in 0..result.points().len() {
            let energy = result.value(i, 0);
            assert!(energy.is_finite() && energy > 0.0);
        }
        // Ranked ascending by energy (primary objective, minimized).
        let ranked = result.ranked();
        for pair in ranked.windows(2) {
            assert!(result.value(pair[0], 0) <= result.value(pair[1], 0));
        }
    }

    #[test]
    fn endurance_objective_needs_and_uses_a_battery() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let err = engine
            .query()
            .objective(Objective::HoverEnduranceMin)
            .run()
            .unwrap_err();
        assert!(matches!(err, SkylineError::IncompleteSystem { .. }));

        let battery = catalog.battery_id(names::BATTERY_PELICAN).unwrap();
        let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
        let result = engine
            .query()
            .airframes(&[pelican])
            .objective(Objective::HoverEnduranceMin)
            .battery(battery)
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert!(!result.points().is_empty());
        for i in 0..result.points().len() {
            let endurance = result.value(i, 0);
            assert!(endurance.is_finite() && endurance > 0.0);
            // A Pelican-sized pack hovers a research quad for minutes,
            // not hours.
            assert!(endurance < 120.0, "endurance {endurance} min");
        }
        // The battery's mass rides along as payload.
        let unloaded = engine
            .query()
            .airframes(&[pelican])
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        let battery_mass = catalog.battery_by_id(battery).mass().get();
        let loaded_first = &result.points()[0];
        let unloaded_match = unloaded
            .points()
            .iter()
            .find(|p| p.candidate == loaded_first.candidate)
            .unwrap();
        assert!(
            (loaded_first.outcome.payload.get()
                - unloaded_match.outcome.payload.get()
                - battery_mass)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn four_objective_frontier_contains_three_objective_frontier_candidates() {
        // Adding an objective can only grow (or keep) the frontier set:
        // a point undominated on (v, tdp, payload) stays undominated when
        // energy is added.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let three = engine.query().run().unwrap();
        let four = engine
            .query()
            .objectives(&[
                Objective::SafeVelocity,
                Objective::TotalTdp,
                Objective::PayloadMass,
                Objective::MissionEnergyWhPerKm,
            ])
            .run()
            .unwrap();
        assert!(four.frontier().len() >= three.frontier().len());
        for &i in three.frontier() {
            assert!(
                four.frontier().contains(&i),
                "3-objective frontier point {i} missing from 4-objective frontier"
            );
        }
    }

    #[test]
    fn describe_query_ranks_by_primary_objective() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        // Primary = TDP: every airframe's report must be ascending in
        // TDP among feasible entries, not descending in velocity.
        let result = engine
            .query()
            .objectives(&[Objective::TotalTdp, Objective::SafeVelocity])
            .run()
            .unwrap();
        let reports = engine.describe_query(&result);
        assert_eq!(reports.len(), catalog.airframe_count());
        for report in &reports {
            let tdps: Vec<f64> = report
                .ranked
                .iter()
                .filter(|o| o.feasible)
                .map(|o| catalog.compute(&o.compute).unwrap().tdp().get())
                .collect();
            for pair in tdps.windows(2) {
                assert!(pair[0] <= pair[1], "{}: {tdps:?}", report.airframe);
            }
            // Feasible entries precede infeasible ones.
            let first_infeasible = report.ranked.iter().position(|o| !o.feasible);
            if let Some(pos) = first_infeasible {
                assert!(report.ranked[pos..].iter().all(|o| !o.feasible));
            }
        }
    }

    #[test]
    fn duplicate_objectives_are_deduplicated() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .objectives(&[
                Objective::SafeVelocity,
                Objective::SafeVelocity,
                Objective::TotalTdp,
            ])
            .run()
            .unwrap();
        assert_eq!(
            result.objectives(),
            [Objective::SafeVelocity, Objective::TotalTdp]
        );
    }

    #[test]
    fn invalid_sweeps_and_profiles_are_rejected() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        for knob in [Knob::TdpScale, Knob::WeightScale, Knob::RotorPull] {
            assert!(
                engine
                    .query()
                    .sweep(KnobSweep::new(knob, vec![0.0]))
                    .run()
                    .is_err(),
                "{knob:?}"
            );
        }
        assert!(engine
            .query()
            .sweep(KnobSweep::new(Knob::TdpScale, vec![]))
            .run()
            .is_err());
        assert!(engine
            .query()
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![f64::NAN]))
            .run()
            .is_err());
        let profile = MissionProfile {
            figure_of_merit: 1.5,
            ..MissionProfile::default()
        };
        assert!(engine.query().mission_profile(profile).run().is_err());
    }

    #[test]
    fn nonfinite_energy_points_are_counted_not_silently_dropped() {
        // Regression: a sensor-range scale of 1e-307 crushes the sensing
        // range toward the smallest normal float. Builds stay feasible
        // (they can hover) but the achieved velocity collapses toward
        // zero, so the Wh/km energy objective overflows to +∞. Those
        // points used to vanish from the frontier with no accounting;
        // they must be counted.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .objectives(&[Objective::SafeVelocity, Objective::MissionEnergyWhPerKm])
            .constraint(Constraint::FeasibleOnly)
            .sweep(KnobSweep::new(Knob::SensorRangeScale, vec![1e-307]))
            .run()
            .unwrap();
        assert!(!result.points().is_empty());
        assert!(result.points().iter().all(|p| p.outcome.feasible));
        // Every kept point is feasible with +∞ energy: all counted.
        assert_eq!(result.nonfinite(), result.points().len());
        // Excluded from the frontier domain, but never lost from points.
        let (keys, map) = result.minimized_keys();
        assert!(keys.is_empty() && map.is_empty());
        assert!(result.frontier().is_empty());
        // A finite-valued query counts zero.
        let finite = engine
            .query()
            .objectives(&[Objective::SafeVelocity, Objective::MissionEnergyWhPerKm])
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert_eq!(finite.nonfinite(), 0);
        assert!(!finite.frontier().is_empty());
        // The per-airframe reports carry their slice of the count and
        // sum back to the query-wide total.
        let reports = engine.describe_query(&result);
        assert_eq!(
            reports.iter().map(|r| r.nonfinite).sum::<usize>(),
            result.nonfinite()
        );
        assert!(reports.iter().any(|r| r.nonfinite > 0));
    }

    #[test]
    fn out_of_domain_knob_variants_fail_before_the_pass_naming_the_knob() {
        // 1e308 passes the sweep-value validation (finite, positive) but
        // scales the catalog rates/ranges/masses to infinity: the
        // variant build must reject it before any evaluation runs,
        // naming the knob.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        for (knob, expected) in [
            (Knob::SensorRateScale, "Sensor Framerate"),
            (Knob::SensorRangeScale, "Sensor Range"),
            (Knob::TdpScale, "Compute TDP"),
            (Knob::WeightScale, "Drone Weight"),
            (Knob::RotorPull, "Rotor Pull"),
        ] {
            let err = engine
                .query()
                .sweep(KnobSweep::new(knob, vec![1e308]))
                .run()
                .unwrap_err();
            match err {
                SkylineError::KnobVariant { knob, value, .. } => {
                    assert_eq!(knob, expected);
                    assert_eq!(value, 1e308);
                }
                other => panic!("expected KnobVariant, got {other:?}"),
            }
        }
        // Stacked payload deltas compose by addition: two individually
        // valid values summing to +∞ must fail the same way, not panic
        // in the units layer.
        let err = engine
            .query()
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![1e308]))
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![1e308]))
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            SkylineError::KnobVariant {
                knob: "Payload Weight",
                ..
            }
        ));
    }

    #[test]
    fn objective_parsing_round_trips() {
        for objective in Objective::ALL {
            let parsed: Objective = objective.label().parse().unwrap();
            assert_eq!(parsed, objective);
        }
        assert!("warp-drive".parse::<Objective>().is_err());
    }

    #[test]
    fn knob_tokens_round_trip() {
        for knob in [
            Knob::TdpScale,
            Knob::SensorRateScale,
            Knob::SensorRangeScale,
            Knob::PayloadDelta,
            Knob::WeightScale,
            Knob::RotorPull,
        ] {
            assert_eq!(Knob::from_key_token(knob.key_token()), Some(knob));
        }
        assert_eq!(Knob::from_key_token("warp"), None);
    }

    #[test]
    fn knob_setting_describe_is_compact() {
        assert_eq!(KnobSetting::IDENTITY.describe(), "");
        let setting = KnobSetting::IDENTITY
            .apply(Knob::TdpScale, 0.5)
            .apply(Knob::WeightScale, 0.8)
            .apply(Knob::PayloadDelta, 150.0);
        let text = setting.describe();
        assert!(text.contains("tdp×0.50"));
        assert!(text.contains("weight×0.80"));
        assert!(text.contains("load+150g"));
    }

    #[test]
    fn queries_are_deterministic() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let build = || {
            engine
                .query()
                .objectives(&[
                    Objective::SafeVelocity,
                    Objective::TotalTdp,
                    Objective::MissionEnergyWhPerKm,
                ])
                .sweep(KnobSweep::linear(Knob::TdpScale, 0.5, 1.0, 3))
                .run()
                .unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn query_plan_compiles_the_same_request() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let query = engine
            .query()
            .objectives(&[Objective::TotalTdp, Objective::SafeVelocity])
            .constraint(Constraint::FeasibleOnly)
            .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]));
        let plan = query.plan().unwrap();
        assert_eq!(
            plan.objectives(),
            [Objective::TotalTdp, Objective::SafeVelocity]
        );
        // The borrowed run and the owned plan through a session agree.
        let borrowed = query.run().unwrap();
        let session = crate::session::Session::new(std::sync::Arc::new(Catalog::paper()));
        let owned = session.run(&plan).unwrap();
        assert_eq!(*owned, borrowed);
    }
}
