//! The composable DSE query API: typed objectives, constraints and knob
//! sweeps over the exploration engine.
//!
//! [`Engine::explore_all`](crate::dse::Engine::explore_all) hardcodes one
//! objective set — the (safe velocity, TDP, payload) Pareto. This module
//! makes the exploration *expressible*: a [`Query`] names what to
//! optimize ([`Objective`]), what to filter ([`Constraint`]), and which
//! continuous Table II knob ranges to sweep around each discrete
//! candidate ([`KnobSweep`]), then compiles to a single batched pass over
//! the engine's id-interned enumeration. Frontiers come from
//! [`crate::frontier`]'s O(n log n) skyline, so synthetic 10⁵–10⁶-part
//! catalogs ([`Catalog::synthesize`](f1_components::Catalog::synthesize))
//! are explored in seconds.
//!
//! ```
//! use f1_components::{names, Catalog};
//! use f1_skyline::dse::Engine;
//! use f1_skyline::query::{Constraint, Knob, KnobSweep, Objective};
//! use f1_units::Watts;
//!
//! let catalog = Catalog::paper();
//! let engine = Engine::new(&catalog);
//! let result = engine
//!     .query()
//!     .objectives(&[
//!         Objective::SafeVelocity,
//!         Objective::TotalTdp,
//!         Objective::PayloadMass,
//!         Objective::MissionEnergyWhPerKm,
//!     ])
//!     .constraint(Constraint::MaxTotalTdp(Watts::new(20.0)))
//!     .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
//!     .run()?;
//! assert!(!result.frontier().is_empty());
//! # Ok::<(), f1_skyline::SkylineError>(())
//! ```

use std::collections::BTreeMap;

use f1_components::{
    Airframe, AirframeId, AlgorithmId, BatteryId, ComponentError, ComputeId, ComputePlatform,
    Sensor, SensorId,
};
use f1_model::mission::hover_endurance;
use f1_model::ModelError;
use f1_units::{Grams, Hertz, Meters, MetersPerSecond, Watts};

use crate::dse::{Candidate, DseOutcome, DseResult, Engine, Outcome};
use crate::frontier;
use crate::sweep::parallel_map_indices;
use crate::SkylineError;

pub use crate::mission::SENSOR_STACK_POWER_W;

/// One optimization axis of a query.
///
/// The first objective of a query is its **primary** objective: ranked
/// reports ([`QueryResult::ranked`], [`Engine::describe_query`]) sort by
/// it. Frontiers treat all objectives simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Objective {
    /// F-1 safe velocity (m/s) — maximize.
    SafeVelocity,
    /// Combined compute TDP (W) — minimize.
    TotalTdp,
    /// Total payload mass including heatsink (g) — minimize.
    PayloadMass,
    /// Cruise energy per kilometre (Wh/km) at the achieved safe velocity,
    /// from the momentum-theory power model of [`crate::mission`] —
    /// minimize. Infeasible builds score `+∞` and never reach a frontier.
    MissionEnergyWhPerKm,
    /// Hover endurance (minutes) on the query's battery — maximize.
    /// Requires [`Query::battery`]; infeasible builds score zero.
    HoverEnduranceMin,
}

impl Objective {
    /// Every objective, in the order used by reports.
    pub const ALL: [Self; 5] = [
        Self::SafeVelocity,
        Self::TotalTdp,
        Self::PayloadMass,
        Self::MissionEnergyWhPerKm,
        Self::HoverEnduranceMin,
    ];

    /// Whether bigger values are better (`false`: smaller is better).
    #[must_use]
    pub fn maximize(self) -> bool {
        matches!(self, Self::SafeVelocity | Self::HoverEnduranceMin)
    }

    /// Short human label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::SafeVelocity => "velocity",
            Self::TotalTdp => "tdp",
            Self::PayloadMass => "payload",
            Self::MissionEnergyWhPerKm => "energy",
            Self::HoverEnduranceMin => "endurance",
        }
    }

    /// The unit the objective's values are reported in.
    #[must_use]
    pub fn unit(self) -> &'static str {
        match self {
            Self::SafeVelocity => "m/s",
            Self::TotalTdp => "W",
            Self::PayloadMass => "g",
            Self::MissionEnergyWhPerKm => "Wh/km",
            Self::HoverEnduranceMin => "min",
        }
    }
}

impl core::fmt::Display for Objective {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Objective {
    type Err = String;

    /// Parses the CLI spellings: `velocity`/`vsafe`, `tdp`/`power`,
    /// `payload`/`mass`, `energy`, `endurance`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "velocity" | "vsafe" | "safe-velocity" => Ok(Self::SafeVelocity),
            "tdp" | "power" => Ok(Self::TotalTdp),
            "payload" | "mass" => Ok(Self::PayloadMass),
            "energy" | "wh-per-km" => Ok(Self::MissionEnergyWhPerKm),
            "endurance" | "hover-endurance" => Ok(Self::HoverEnduranceMin),
            other => Err(format!(
                "unknown objective {other:?} (try velocity, tdp, payload, energy, endurance)"
            )),
        }
    }
}

/// A hard filter applied to every evaluated candidate before ranking and
/// frontier computation. Filtered candidates are counted in
/// [`QueryResult::dropped`], not returned.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Constraint {
    /// Keep builds achieving at least this safe velocity (also drops
    /// infeasible builds, whose velocity is zero).
    MinVelocity(MetersPerSecond),
    /// Keep builds whose combined compute TDP is at most this.
    MaxTotalTdp(Watts),
    /// Keep builds whose payload (incl. heatsink) is at most this.
    MaxPayload(Grams),
    /// Keep only builds that can hover.
    FeasibleOnly,
}

impl Constraint {
    /// Does this outcome satisfy the constraint?
    #[must_use]
    pub fn admits(&self, outcome: &Outcome) -> bool {
        match *self {
            Self::MinVelocity(v) => outcome.velocity >= v,
            Self::MaxTotalTdp(w) => outcome.total_tdp <= w,
            Self::MaxPayload(g) => outcome.payload <= g,
            Self::FeasibleOnly => outcome.feasible,
        }
    }
}

/// A continuous knob from paper Table II, swept *around* each discrete
/// catalog candidate (the §VI-A "what-if" generalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Knob {
    /// Multiply the platform TDP (throughput unchanged, heatsink resized
    /// — the paper's AGX 30 W → 15 W study is `TdpScale` at 0.5).
    TdpScale,
    /// Multiply the sensor frame rate.
    SensorRateScale,
    /// Multiply the sensor range.
    SensorRangeScale,
    /// Add extra payload mass in grams (cargo, ballast). Values must be
    /// ≥ 0: the build's own parts and the mounted battery cannot be
    /// shed by a sweep (shedding battery mass while its energy still
    /// backs the endurance objective would fabricate impossible
    /// frontier points; use [`Knob::TdpScale`] for the
    /// heatsink-shedding what-if).
    PayloadDelta,
}

impl Knob {
    /// The paper Table II parameter this knob corresponds to.
    #[must_use]
    pub fn table2_parameter(self) -> &'static str {
        match self {
            Self::TdpScale => "Compute TDP",
            Self::SensorRateScale => "Sensor Framerate",
            Self::SensorRangeScale => "Sensor Range",
            Self::PayloadDelta => "Payload Weight",
        }
    }
}

/// One swept knob with its values. Multiple sweeps combine as a
/// cartesian product; sweeps of the same knob compose (scales multiply,
/// deltas add).
#[derive(Debug, Clone, PartialEq)]
pub struct KnobSweep {
    knob: Knob,
    values: Vec<f64>,
}

impl KnobSweep {
    /// A sweep over explicit values (scale factors, or gram deltas for
    /// [`Knob::PayloadDelta`]). Include `1.0` (or `0.0` for deltas) to
    /// keep the unmodified candidate in the result set.
    #[must_use]
    pub fn new(knob: Knob, values: Vec<f64>) -> Self {
        Self { knob, values }
    }

    /// A sweep over `steps` evenly spaced values in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` or the interval is not ordered.
    #[must_use]
    pub fn linear(knob: Knob, lo: f64, hi: f64, steps: usize) -> Self {
        assert!(steps >= 2, "need at least two sweep steps");
        assert!(lo < hi, "sweep interval must be ordered");
        let values = (0..steps)
            .map(|i| lo + (hi - lo) * i as f64 / (steps - 1) as f64)
            .collect();
        Self { knob, values }
    }

    /// The swept knob.
    #[must_use]
    pub fn knob(&self) -> Knob {
        self.knob
    }

    /// The swept values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    fn validate(&self) -> Result<(), SkylineError> {
        let out_of_domain = |value: f64, expected: &'static str| {
            SkylineError::Model(ModelError::OutOfDomain {
                parameter: "knob sweep value",
                value,
                expected,
            })
        };
        if self.values.is_empty() {
            return Err(out_of_domain(f64::NAN, "at least one sweep value"));
        }
        for &v in &self.values {
            match self.knob {
                Knob::TdpScale | Knob::SensorRateScale | Knob::SensorRangeScale => {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(out_of_domain(v, "finite scale factor > 0"));
                    }
                }
                Knob::PayloadDelta => {
                    // Negative deltas are rejected outright: there is no
                    // baseline cargo to shed, so a negative value could
                    // only erase part or battery mass while objectives
                    // (hover endurance) kept crediting the full battery
                    // energy — a physically impossible frontier point.
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(out_of_domain(v, "finite payload delta >= 0 (g)"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The resolved knob values one evaluated point was produced under.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnobSetting {
    /// TDP scale factor (1 = stock).
    pub tdp_scale: f64,
    /// Sensor frame-rate scale factor (1 = stock).
    pub sensor_rate_scale: f64,
    /// Sensor range scale factor (1 = stock).
    pub sensor_range_scale: f64,
    /// Extra payload mass (0 = stock; the query's battery, if any, is
    /// accounted separately).
    pub payload_delta: Grams,
}

impl KnobSetting {
    /// The stock, unswept setting.
    pub const IDENTITY: Self = Self {
        tdp_scale: 1.0,
        sensor_rate_scale: 1.0,
        sensor_range_scale: 1.0,
        payload_delta: Grams::ZERO,
    };

    /// Is this the stock setting?
    #[must_use]
    pub fn is_identity(&self) -> bool {
        *self == Self::IDENTITY
    }

    fn apply(mut self, knob: Knob, value: f64) -> Self {
        match knob {
            Knob::TdpScale => self.tdp_scale *= value,
            Knob::SensorRateScale => self.sensor_rate_scale *= value,
            Knob::SensorRangeScale => self.sensor_range_scale *= value,
            Knob::PayloadDelta => {
                self.payload_delta = Grams::new(self.payload_delta.get() + value);
            }
        }
        self
    }
}

/// Parameters of the cruise/hover power model used by the energy
/// objectives; defaults match [`crate::mission::MissionSpec::over`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MissionProfile {
    /// Hover figure of merit for the momentum-theory power estimate.
    pub figure_of_merit: f64,
    /// Parasitic power coefficient, W/(m/s)³.
    pub parasitic_coeff: f64,
    /// Usable battery fraction (depth-of-discharge guard).
    pub battery_reserve: f64,
}

impl Default for MissionProfile {
    fn default() -> Self {
        Self {
            figure_of_merit: crate::mission::DEFAULT_FIGURE_OF_MERIT,
            parasitic_coeff: crate::mission::DEFAULT_PARASITIC_COEFF,
            battery_reserve: crate::mission::DEFAULT_BATTERY_RESERVE,
        }
    }
}

impl MissionProfile {
    fn validate(&self) -> Result<(), SkylineError> {
        let out_of_domain = |parameter, value, expected| {
            SkylineError::Model(ModelError::OutOfDomain {
                parameter,
                value,
                expected,
            })
        };
        if !(self.figure_of_merit.is_finite()
            && self.figure_of_merit > 0.0
            && self.figure_of_merit <= 1.0)
        {
            return Err(out_of_domain(
                "figure of merit",
                self.figure_of_merit,
                "0 < FoM <= 1",
            ));
        }
        if !(self.parasitic_coeff.is_finite() && self.parasitic_coeff >= 0.0) {
            return Err(out_of_domain(
                "parasitic coeff",
                self.parasitic_coeff,
                "finite and >= 0",
            ));
        }
        if !(self.battery_reserve.is_finite()
            && self.battery_reserve > 0.0
            && self.battery_reserve <= 1.0)
        {
            return Err(out_of_domain(
                "battery reserve",
                self.battery_reserve,
                "0 < reserve <= 1",
            ));
        }
        Ok(())
    }
}

/// One evaluated point of a query: a discrete candidate, the knob
/// setting it was evaluated under, and its outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryPoint {
    /// The airframe the build flies on.
    pub airframe: AirframeId,
    /// The discrete catalog candidate (stock throughput/ids; the knob
    /// setting describes how the parts were modified).
    pub candidate: Candidate,
    /// The knob setting this point was evaluated under.
    pub setting: KnobSetting,
    /// The F-1 outcome.
    pub outcome: Outcome,
}

/// The number of distinct objectives a query can carry
/// ([`Objective::ALL`] — objective lists are deduplicated), which bounds
/// the fused per-job objective row at a stack array.
const MAX_OBJECTIVES: usize = Objective::ALL.len();

/// The result of running a [`Query`]: every evaluated point that passed
/// the constraints, its objective values, and the Pareto frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    objectives: Vec<Objective>,
    points: Vec<QueryPoint>,
    /// Row-major `points.len() × objectives.len()` objective values, in
    /// each objective's natural (unnegated) unit.
    values: Vec<f64>,
    frontier: Vec<usize>,
    uncharacterized: usize,
    dropped: usize,
    nonfinite: usize,
}

impl QueryResult {
    /// The query's objectives, primary first.
    #[must_use]
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Every evaluated point that passed the constraints, in
    /// deterministic enumeration order (airframe-major, then knob
    /// setting, then sensor × compute × algorithm in name order).
    #[must_use]
    pub fn points(&self) -> &[QueryPoint] {
        &self.points
    }

    /// The objective values of point `index`, aligned with
    /// [`objectives`](Self::objectives).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn values(&self, index: usize) -> &[f64] {
        let k = self.objectives.len();
        &self.values[index * k..(index + 1) * k]
    }

    /// Indices (into [`points`](Self::points)) of the Pareto frontier
    /// over all objectives jointly, ascending. Only feasible points with
    /// finite objective values participate.
    #[must_use]
    pub fn frontier(&self) -> &[usize] {
        &self.frontier
    }

    /// The frontier as points, in enumeration order.
    pub fn frontier_points(&self) -> impl Iterator<Item = &QueryPoint> {
        self.frontier.iter().map(|&i| &self.points[i])
    }

    /// Indices of all points ranked best-first: feasible before
    /// infeasible, then by the **primary** (first) objective; ties keep
    /// enumeration order.
    #[must_use]
    pub fn ranked(&self) -> Vec<usize> {
        let primary = self.objectives[0];
        let k = self.objectives.len();
        let mut order: Vec<usize> = (0..self.points.len()).collect();
        order.sort_by(|&a, &b| {
            self.points[b]
                .outcome
                .feasible
                .cmp(&self.points[a].outcome.feasible)
                .then_with(|| {
                    let (va, vb) = (self.values[a * k], self.values[b * k]);
                    if primary.maximize() {
                        vb.total_cmp(&va)
                    } else {
                        va.total_cmp(&vb)
                    }
                })
        });
        order
    }

    /// The best feasible point by the primary objective, if any.
    #[must_use]
    pub fn best(&self) -> Option<&QueryPoint> {
        self.ranked()
            .first()
            .map(|&i| &self.points[i])
            .filter(|p| p.outcome.feasible)
    }

    /// Sensor × compute × algorithm combinations skipped **per airframe
    /// and knob setting** because the platform × algorithm pair was never
    /// characterized.
    #[must_use]
    pub fn uncharacterized(&self) -> usize {
        self.uncharacterized
    }

    /// Number of evaluated points rejected by the query's constraints.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Number of **feasible** points whose objective row contains a
    /// non-finite value (e.g. [`Objective::MissionEnergyWhPerKm`] at a
    /// vanishing achieved velocity → `+∞`). Such points stay in
    /// [`points`](Self::points) and the ranked report but cannot
    /// participate in the frontier, which is defined over finite keys
    /// only — this counter is the accounting for that exclusion, so no
    /// feasible point ever vanishes silently.
    #[must_use]
    pub fn nonfinite(&self) -> usize {
        self.nonfinite
    }

    /// The frontier's input domain: minimized objective-key rows
    /// (maximize objectives negated) for every feasible point with
    /// finite values, plus the map from key-row position back to the
    /// index in [`points`](Self::points). This is exactly what
    /// [`frontier`](Self::frontier) was computed from — benchmarks and
    /// tests that compare skyline algorithms against the naive scan
    /// should extract keys through here so they keep measuring the
    /// production path. Feasible points skipped for non-finite rows are
    /// counted by [`nonfinite`](Self::nonfinite).
    #[must_use]
    pub fn minimized_keys(&self) -> (Vec<f64>, Vec<usize>) {
        let k = self.objectives.len();
        let mut keys = Vec::new();
        let mut map = Vec::new();
        for (i, point) in self.points.iter().enumerate() {
            if !point.outcome.feasible {
                continue;
            }
            let row = &self.values[i * k..(i + 1) * k];
            if row.iter().any(|v| !v.is_finite()) {
                continue;
            }
            map.push(i);
            keys.extend(
                row.iter()
                    .zip(&self.objectives)
                    .map(|(&v, o)| if o.maximize() { -v } else { v }),
            );
        }
        (keys, map)
    }
}

/// Pre-built component variants for one knob setting, indexed by
/// position in the query's resolved sensor/compute lists.
struct VariantParts {
    sensors: Vec<Sensor>,
    computes: Vec<ComputePlatform>,
    extra_payload: Grams,
}

/// An indexed candidate: the public [`Candidate`] plus positions into
/// the query's resolved lists (for variant lookup without id → position
/// maps in the hot loop).
#[derive(Clone, Copy)]
struct IndexedCandidate {
    candidate: Candidate,
    sensor_pos: u32,
    compute_pos: u32,
}

/// A builder-style, composable design-space query over an [`Engine`].
///
/// Construct with [`Engine::query`]; see the [module docs](self) for a
/// full example. With no explicit objectives, constraints or sweeps, a
/// query reproduces the engine's classic 3-objective exploration —
/// [`Engine::explore_all`] is literally a default query.
#[derive(Debug, Clone)]
pub struct Query<'e, 'c> {
    engine: &'e Engine<'c>,
    objectives: Vec<Objective>,
    constraints: Vec<Constraint>,
    sweeps: Vec<KnobSweep>,
    airframes: Option<Vec<AirframeId>>,
    sensors: Option<Vec<SensorId>>,
    computes: Option<Vec<ComputeId>>,
    algorithms: Option<Vec<AlgorithmId>>,
    battery: Option<BatteryId>,
    profile: MissionProfile,
}

/// The objectives a query with none specified runs under — the engine's
/// classic (velocity ↑, TDP ↓, payload ↓) Pareto.
pub const DEFAULT_OBJECTIVES: [Objective; 3] = [
    Objective::SafeVelocity,
    Objective::TotalTdp,
    Objective::PayloadMass,
];

impl<'e, 'c> Query<'e, 'c> {
    pub(crate) fn new(engine: &'e Engine<'c>) -> Self {
        Self {
            engine,
            objectives: Vec::new(),
            constraints: Vec::new(),
            sweeps: Vec::new(),
            airframes: None,
            sensors: None,
            computes: None,
            algorithms: None,
            battery: None,
            profile: MissionProfile::default(),
        }
    }

    /// Appends one objective (the first appended is the primary).
    #[must_use]
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objectives.push(objective);
        self
    }

    /// Replaces the objective list (first entry is the primary).
    #[must_use]
    pub fn objectives(mut self, objectives: &[Objective]) -> Self {
        self.objectives = objectives.to_vec();
        self
    }

    /// Adds a hard constraint.
    #[must_use]
    pub fn constraint(mut self, constraint: Constraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Adds a knob sweep (cartesian product with any earlier sweeps).
    #[must_use]
    pub fn sweep(mut self, sweep: KnobSweep) -> Self {
        self.sweeps.push(sweep);
        self
    }

    /// Restricts the query to these airframes (default: all).
    #[must_use]
    pub fn airframes(mut self, ids: &[AirframeId]) -> Self {
        self.airframes = Some(ids.to_vec());
        self
    }

    /// Restricts the query to these sensors (default: all).
    #[must_use]
    pub fn sensors(mut self, ids: &[SensorId]) -> Self {
        self.sensors = Some(ids.to_vec());
        self
    }

    /// Restricts the query to these compute platforms (default: all).
    #[must_use]
    pub fn computes(mut self, ids: &[ComputeId]) -> Self {
        self.computes = Some(ids.to_vec());
        self
    }

    /// Restricts the query to these algorithms (default: all).
    #[must_use]
    pub fn algorithms(mut self, ids: &[AlgorithmId]) -> Self {
        self.algorithms = Some(ids.to_vec());
        self
    }

    /// Mounts a battery on every candidate: its mass joins the payload,
    /// and [`Objective::HoverEnduranceMin`] draws on its capacity.
    #[must_use]
    pub fn battery(mut self, id: BatteryId) -> Self {
        self.battery = Some(id);
        self
    }

    /// Overrides the power-model parameters of the energy objectives.
    #[must_use]
    pub fn mission_profile(mut self, profile: MissionProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The objectives this query will run under (the default set if none
    /// were specified, deduplicated preserving first occurrence).
    #[must_use]
    pub fn resolved_objectives(&self) -> Vec<Objective> {
        let mut out: Vec<Objective> = Vec::new();
        let source: &[Objective] = if self.objectives.is_empty() {
            &DEFAULT_OBJECTIVES
        } else {
            &self.objectives
        };
        for &o in source {
            if !out.contains(&o) {
                out.push(o);
            }
        }
        out
    }

    fn expand_settings(&self) -> Result<Vec<KnobSetting>, SkylineError> {
        let mut out = vec![KnobSetting::IDENTITY];
        for sweep in &self.sweeps {
            sweep.validate()?;
            let mut next = Vec::with_capacity(out.len() * sweep.values.len());
            for setting in &out {
                for &value in &sweep.values {
                    // Same-knob payload sweeps compose by addition, and
                    // two individually valid deltas can sum to +∞ —
                    // which would panic in the `Grams` constructor
                    // inside `apply`. Scales compose by multiplication
                    // on plain f64 fields; an overflowed scale is
                    // caught by `build_variants`' magnitude guard.
                    if sweep.knob == Knob::PayloadDelta
                        && !(setting.payload_delta.get() + value).is_finite()
                    {
                        return Err(SkylineError::KnobVariant {
                            knob: Knob::PayloadDelta.table2_parameter(),
                            value,
                            source: ComponentError::InvalidField {
                                field: "payload_delta",
                                reason: format!(
                                    "composed payload delta must be finite, got {}",
                                    setting.payload_delta.get() + value
                                ),
                            },
                        });
                    }
                    next.push(setting.apply(sweep.knob, value));
                }
            }
            out = next;
        }
        Ok(out)
    }

    /// Builds the per-setting component variants.
    ///
    /// This is where sweep variants are **validated**: every scaled
    /// sensor and compute platform is constructed (and domain-checked)
    /// here, before the batched parallel pass, so an out-of-domain knob
    /// value surfaces as [`SkylineError::KnobVariant`] naming the
    /// offending knob instead of aborting a running evaluation.
    fn build_variants(
        &self,
        sensors: &[SensorId],
        computes: &[ComputeId],
        settings: &[KnobSetting],
    ) -> Result<Vec<VariantParts>, SkylineError> {
        let catalog = self.engine.catalog();
        let battery_mass = self
            .battery
            .map_or(0.0, |id| catalog.battery_by_id(id).mass().get());
        // A scaled magnitude must stay positive and finite *before* it
        // reaches the unit types (whose constructors panic on
        // non-finite values) or the component constructors.
        let scaled = |base: f64, knob: Knob, scale: f64, field: &'static str| {
            let value = base * scale;
            if value.is_finite() && value > 0.0 {
                Ok(value)
            } else {
                Err(SkylineError::KnobVariant {
                    knob: knob.table2_parameter(),
                    value: scale,
                    source: ComponentError::InvalidField {
                        field,
                        reason: format!(
                            "scaled magnitude must be positive and finite, got {value}"
                        ),
                    },
                })
            }
        };
        settings
            .iter()
            .map(|setting| {
                let sensors = sensors
                    .iter()
                    .map(|&id| {
                        let s = catalog.sensor_by_id(id);
                        if setting.sensor_rate_scale == 1.0 && setting.sensor_range_scale == 1.0 {
                            Ok(s.clone())
                        } else {
                            let rate = scaled(
                                s.frame_rate().get(),
                                Knob::SensorRateScale,
                                setting.sensor_rate_scale,
                                "frame_rate",
                            )?;
                            let range = scaled(
                                s.range().get(),
                                Knob::SensorRangeScale,
                                setting.sensor_range_scale,
                                "range",
                            )?;
                            // `scaled` has already validated both
                            // magnitudes; any residual constructor error
                            // is a catalog-field problem, not a knob one.
                            Sensor::new(
                                s.name(),
                                s.modality(),
                                Hertz::new(rate),
                                Meters::new(range),
                                s.mass(),
                            )
                            .map_err(SkylineError::from)
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                let computes = computes
                    .iter()
                    .map(|&id| {
                        let c = catalog.compute_by_id(id);
                        if setting.tdp_scale == 1.0 {
                            Ok(c.clone())
                        } else {
                            // Guards the product: `with_tdp_scaled` only
                            // validates the factor, and an overflowed TDP
                            // would panic inside the Watts constructor.
                            scaled(c.tdp().get(), Knob::TdpScale, setting.tdp_scale, "tdp")?;
                            c.with_tdp_scaled(setting.tdp_scale)
                                .map_err(SkylineError::from)
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(VariantParts {
                    sensors,
                    computes,
                    extra_payload: Grams::new(battery_mass + setting.payload_delta.get()),
                })
            })
            .collect()
    }

    /// The fused per-point objective extraction, run **inside** the
    /// batched parallel pass: derives the momentum-theory power model
    /// (the same parts-level derivation that backs
    /// [`crate::mission::derive_power_model`]) when an energy objective
    /// needs it, then fills one objective row.
    fn objective_row(
        &self,
        objectives: &[Objective],
        needs_power: bool,
        airframe: &Airframe,
        outcome: &Outcome,
        battery_wh: Option<f64>,
    ) -> Result<[f64; MAX_OBJECTIVES], SkylineError> {
        let power = if needs_power && outcome.feasible {
            Some(crate::mission::power_model_for_parts(
                airframe,
                airframe.takeoff_mass(outcome.payload),
                outcome.total_tdp,
                self.profile.figure_of_merit,
                self.profile.parasitic_coeff,
            )?)
        } else {
            None
        };
        let mut row = [0.0; MAX_OBJECTIVES];
        for (slot, &objective) in row.iter_mut().zip(objectives) {
            *slot = match objective {
                Objective::SafeVelocity => outcome.velocity.get(),
                Objective::TotalTdp => outcome.total_tdp.get(),
                Objective::PayloadMass => outcome.payload.get(),
                Objective::MissionEnergyWhPerKm => match &power {
                    Some(p) if outcome.velocity.get() > 0.0 => {
                        let v = outcome.velocity;
                        p.power_at(v).get() * (1000.0 / v.get()) / 3600.0
                    }
                    _ => f64::INFINITY,
                },
                Objective::HoverEnduranceMin => match &power {
                    Some(p) => {
                        let wh =
                            battery_wh.expect("run() rejects endurance queries without a battery");
                        hover_endurance(p, wh, self.profile.battery_reserve)?.get()
                    }
                    None => 0.0,
                },
            };
        }
        Ok(row)
    }

    /// Compiles and runs the query: one fused batched parallel pass over
    /// every airframe × knob setting × characterized candidate —
    /// evaluation, constraint filtering **and** objective extraction all
    /// happen inside the pass — followed by the O(n log n) frontier.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::IncompleteSystem`] when
    /// [`Objective::HoverEnduranceMin`] is requested without a
    /// [`battery`](Self::battery), [`SkylineError::Model`] for invalid
    /// sweep values or mission-profile parameters, and
    /// [`SkylineError::KnobVariant`] — naming the offending knob — when
    /// a sweep value produces an out-of-domain component variant. All of
    /// these surface **before** the parallel pass; an evaluation error
    /// raised mid-pass (unreachable for catalog parts and validated
    /// variants) is propagated deterministically in enumeration order.
    /// Infeasible builds are outcomes, not errors.
    pub fn run(&self) -> Result<QueryResult, SkylineError> {
        self.run_impl(true)
    }

    /// [`run`](Self::run) without the frontier pass, for the classic
    /// `explore_*` wrappers that only re-rank points and would discard
    /// it ([`Exploration::pareto_frontier`](crate::dse::Exploration)
    /// computes its own on demand). The returned result's `frontier()`
    /// is empty.
    pub(crate) fn run_without_frontier(&self) -> Result<QueryResult, SkylineError> {
        self.run_impl(false)
    }

    fn run_impl(&self, with_frontier: bool) -> Result<QueryResult, SkylineError> {
        let objectives = self.resolved_objectives();
        self.profile.validate()?;
        if objectives.contains(&Objective::HoverEnduranceMin) && self.battery.is_none() {
            return Err(SkylineError::IncompleteSystem {
                missing: "battery (the hover-endurance objective needs one)",
            });
        }
        let settings = self.expand_settings()?;
        let catalog = self.engine.catalog();

        let airframes = self
            .airframes
            .clone()
            .unwrap_or_else(|| self.engine.airframe_ids().to_vec());
        let sensors = self
            .sensors
            .clone()
            .unwrap_or_else(|| self.engine.sensor_ids().to_vec());
        let computes = self
            .computes
            .clone()
            .unwrap_or_else(|| self.engine.compute_ids().to_vec());
        let algorithms = self
            .algorithms
            .clone()
            .unwrap_or_else(|| self.engine.algorithm_ids().to_vec());

        // Same nesting order as Engine::candidates, so a default query
        // enumerates identically to the classic exploration.
        let mut candidates: Vec<IndexedCandidate> = Vec::new();
        for (sensor_pos, &sensor) in sensors.iter().enumerate() {
            for (compute_pos, &compute) in computes.iter().enumerate() {
                for &algorithm in &algorithms {
                    if let Some(throughput) = self.engine.table().get(compute, algorithm) {
                        candidates.push(IndexedCandidate {
                            candidate: Candidate {
                                sensor,
                                compute,
                                algorithm,
                                throughput,
                            },
                            sensor_pos: sensor_pos as u32,
                            compute_pos: compute_pos as u32,
                        });
                    }
                }
            }
        }
        let uncharacterized = sensors.len() * computes.len() * algorithms.len() - candidates.len();

        let variants = self.build_variants(&sensors, &computes, &settings)?;
        let airframe_refs: Vec<&Airframe> = airframes
            .iter()
            .map(|&id| catalog.airframe_by_id(id))
            .collect();

        let needs_power = objectives.iter().any(|o| {
            matches!(
                o,
                Objective::MissionEnergyWhPerKm | Objective::HoverEnduranceMin
            )
        });
        let battery_wh = self
            .battery
            .map(|id| catalog.battery_by_id(id).energy_watt_hours());
        let k = objectives.len();

        // Airframe-major job order (then setting, then candidate) — the
        // explore_all compatibility wrapper relies on this layout. Jobs
        // are plain indices into that nesting; the fused pass writes
        // each (outcome, objective row) straight into its slot of the
        // output buffer, so input order is output order.
        let per_airframe = settings.len() * candidates.len();
        let job_count = airframes.len() * per_airframe;
        // job_count > 0 implies candidates and settings are non-empty,
        // so the decode divisions are safe whenever a job exists.
        let decode = |job: usize| {
            (
                job / per_airframe,
                (job / candidates.len()) % settings.len(),
                job % candidates.len(),
            )
        };
        let evaluated =
            parallel_map_indices(job_count, self.engine.chunk_size_for(job_count), |job| {
                let (airframe_pos, setting_pos, candidate_pos) = decode(job);
                let indexed = &candidates[candidate_pos];
                let parts = &variants[setting_pos];
                let outcome = match self.engine.evaluate_parts_loaded(
                    airframe_refs[airframe_pos],
                    &parts.sensors[indexed.sensor_pos as usize],
                    &parts.computes[indexed.compute_pos as usize],
                    indexed.candidate.throughput,
                    parts.extra_payload,
                ) {
                    Ok(outcome) => outcome,
                    Err(e) => return JobOut::Failed(e),
                };
                if !self.constraints.iter().all(|c| c.admits(&outcome)) {
                    return JobOut::Dropped;
                }
                match self.objective_row(
                    &objectives,
                    needs_power,
                    airframe_refs[airframe_pos],
                    &outcome,
                    battery_wh,
                ) {
                    Ok(row) => JobOut::Kept(outcome, row),
                    Err(e) => JobOut::Failed(e),
                }
            });

        let mut points = Vec::with_capacity(evaluated.len());
        let mut values = Vec::with_capacity(evaluated.len() * k);
        let mut dropped = 0usize;
        let mut nonfinite = 0usize;
        for (job, out) in evaluated.into_iter().enumerate() {
            match out {
                JobOut::Kept(outcome, row) => {
                    if outcome.feasible && row[..k].iter().any(|v| !v.is_finite()) {
                        nonfinite += 1;
                    }
                    let (airframe_pos, setting_pos, candidate_pos) = decode(job);
                    points.push(QueryPoint {
                        airframe: airframes[airframe_pos],
                        candidate: candidates[candidate_pos].candidate,
                        setting: settings[setting_pos],
                        outcome,
                    });
                    values.extend_from_slice(&row[..k]);
                }
                JobOut::Dropped => dropped += 1,
                JobOut::Failed(e) => return Err(e),
            }
        }

        let mut result = QueryResult {
            objectives,
            points,
            values,
            frontier: Vec::new(),
            uncharacterized,
            dropped,
            nonfinite,
        };
        if with_frontier {
            let (keys, map) = result.minimized_keys();
            result.frontier = frontier::pareto_min(result.objectives.len(), &keys)
                .into_iter()
                .map(|i| map[i])
                .collect();
        }
        Ok(result)
    }
}

/// One fused evaluation job's result: the batched pass evaluates,
/// filters and extracts objectives in a single parallel sweep.
enum JobOut {
    /// Passed every constraint: outcome plus objective row (the first
    /// `objectives.len()` slots are meaningful).
    Kept(Outcome, [f64; MAX_OBJECTIVES]),
    /// Rejected by a constraint (counted, not returned).
    Dropped,
    /// Evaluation or extraction failed. Unreachable for catalog parts
    /// and build-time-validated sweep variants; propagated
    /// deterministically in enumeration order if it ever happens.
    Failed(SkylineError),
}

impl<'c> Engine<'c> {
    /// Starts a composable design-space query over this engine's catalog.
    /// See the [`query`](self) module docs for the full API.
    #[must_use]
    pub fn query(&self) -> Query<'_, 'c> {
        Query::new(self)
    }

    /// Renders a query result into the string-keyed [`DseResult`]
    /// compatibility view, one per airframe (in airframe-name order),
    /// each ranked by the query's **primary objective** — feasible
    /// first, ties in enumeration order.
    #[must_use]
    pub fn describe_query(&self, result: &QueryResult) -> Vec<DseResult> {
        let catalog = self.catalog();
        let mut groups: BTreeMap<AirframeId, Vec<usize>> = BTreeMap::new();
        for index in result.ranked() {
            groups
                .entry(result.points()[index].airframe)
                .or_default()
                .push(index);
        }
        self.airframe_ids()
            .iter()
            .filter_map(|id| groups.get(id).map(|indices| (id, indices)))
            .map(|(&airframe, indices)| DseResult {
                airframe: catalog.airframe_by_id(airframe).name().to_owned(),
                ranked: indices
                    .iter()
                    .map(|&i| {
                        let point = &result.points()[i];
                        DseOutcome {
                            sensor: catalog
                                .sensor_by_id(point.candidate.sensor)
                                .name()
                                .to_owned(),
                            compute: catalog
                                .compute_by_id(point.candidate.compute)
                                .name()
                                .to_owned(),
                            algorithm: catalog
                                .algorithm_by_id(point.candidate.algorithm)
                                .name()
                                .to_owned(),
                            velocity: point.outcome.velocity,
                            bound: point.outcome.bound,
                            feasible: point.outcome.feasible,
                        }
                    })
                    .collect(),
                uncharacterized: result.uncharacterized(),
                // Per-airframe slice of the query-wide count, so the
                // reports sum back to `result.nonfinite()`.
                nonfinite: indices
                    .iter()
                    .filter(|&&i| {
                        result.points()[i].outcome.feasible
                            && result.values(i).iter().any(|v| !v.is_finite())
                    })
                    .count(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_components::{names, Catalog};

    #[test]
    fn default_query_matches_classic_exploration() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine.query().run().unwrap();
        let classic = engine.explore_all().unwrap();
        assert_eq!(result.points().len(), classic.evaluated_count());
        assert_eq!(result.objectives(), DEFAULT_OBJECTIVES);
        // Identical frontier membership (order differs: the classic API
        // reports in (airframe, rank) order, the query in enumeration
        // order).
        let classic_frontier = classic.pareto_frontier();
        assert_eq!(result.frontier().len(), classic_frontier.len());
        for point in result.frontier_points() {
            assert!(classic_frontier.iter().any(|p| {
                p.airframe == point.airframe
                    && *p.evaluated
                        == crate::dse::Evaluated {
                            candidate: point.candidate,
                            outcome: point.outcome,
                        }
            }));
        }
    }

    #[test]
    fn constraints_filter_and_count() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let all = engine.query().run().unwrap();
        let constrained = engine
            .query()
            .constraint(Constraint::MaxTotalTdp(Watts::new(5.0)))
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert!(constrained.points().len() < all.points().len());
        assert_eq!(
            constrained.points().len() + constrained.dropped(),
            all.points().len()
        );
        for point in constrained.points() {
            assert!(point.outcome.feasible);
            assert!(point.outcome.total_tdp.get() <= 5.0);
        }
    }

    #[test]
    fn min_velocity_drops_infeasible() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .constraint(Constraint::MinVelocity(MetersPerSecond::new(0.1)))
            .run()
            .unwrap();
        assert!(result.points().iter().all(|p| p.outcome.feasible));
    }

    #[test]
    fn tdp_sweep_reproduces_parts_level_what_if() {
        // The §VI-A AGX 30 W → 15 W study as a knob sweep: identical
        // arithmetic to the hand-built evaluate_parts path.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let spark = catalog.airframe_id(names::DJI_SPARK).unwrap();
        let result = engine
            .query()
            .airframes(&[spark])
            .sensors(&[catalog.sensor_id(names::RGB_60).unwrap()])
            .computes(&[catalog.compute_id(names::AGX).unwrap()])
            .algorithms(&[catalog.algorithm_id(names::DRONET).unwrap()])
            .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
            .run()
            .unwrap();
        assert_eq!(result.points().len(), 2);
        let stock = &result.points()[0];
        let halved = &result.points()[1];
        assert!(stock.setting.is_identity());
        assert_eq!(halved.setting.tdp_scale, 0.5);
        let manual = engine
            .evaluate_parts(
                catalog.airframe(names::DJI_SPARK).unwrap(),
                catalog.sensor(names::RGB_60).unwrap(),
                &catalog
                    .compute(names::AGX)
                    .unwrap()
                    .with_tdp_scaled(0.5)
                    .unwrap(),
                catalog.throughput(names::AGX, names::DRONET).unwrap(),
            )
            .unwrap();
        assert_eq!(halved.outcome, manual);
        assert!(halved.outcome.payload < stock.outcome.payload);
    }

    #[test]
    fn payload_delta_and_range_sweeps_shift_outcomes() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
        let result = engine
            .query()
            .airframes(&[pelican])
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![0.0, 200.0]))
            .sweep(KnobSweep::new(Knob::SensorRangeScale, vec![1.0, 2.0]))
            .run()
            .unwrap();
        // 4 settings per candidate.
        let per_candidate = 4;
        assert_eq!(result.points().len() % per_candidate, 0);
        // Extra payload can only lower (or keep) velocity; extra range
        // can only raise (or keep) it.
        let base = result
            .points()
            .iter()
            .find(|p| p.setting.is_identity())
            .unwrap();
        let heavy = result
            .points()
            .iter()
            .find(|p| {
                p.candidate == base.candidate
                    && p.setting.payload_delta.get() == 200.0
                    && p.setting.sensor_range_scale == 1.0
            })
            .unwrap();
        assert!(heavy.outcome.payload > base.outcome.payload);
        assert!(heavy.outcome.velocity <= base.outcome.velocity);
        let far = result
            .points()
            .iter()
            .find(|p| {
                p.candidate == base.candidate
                    && p.setting.payload_delta.get() == 0.0
                    && p.setting.sensor_range_scale == 2.0
            })
            .unwrap();
        assert!(far.outcome.velocity >= base.outcome.velocity);
    }

    #[test]
    fn negative_payload_delta_is_rejected_and_cannot_erase_mass() {
        // Sweeps cannot shed part or battery mass: negative deltas are
        // rejected up front (there is no baseline cargo to remove, and
        // partially erasing a mounted battery's mass while endurance
        // credits its full energy would fabricate impossible frontier
        // points).
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
        let battery = catalog.battery_id(names::BATTERY_PELICAN).unwrap();
        let err = engine
            .query()
            .airframes(&[pelican])
            .battery(battery)
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![-10.0]))
            .run()
            .unwrap_err();
        assert!(matches!(err, SkylineError::Model(_)));

        // Direct callers of evaluate_parts_loaded get the same floor:
        // negative extra payload contributes nothing, never less.
        let spark = catalog.airframe(names::DJI_SPARK).unwrap();
        let sensor = catalog.sensor(names::RGB_60).unwrap();
        let ncs = catalog.compute(names::NCS).unwrap();
        let rate = catalog.throughput(names::NCS, names::DRONET).unwrap();
        let stock = engine.evaluate_parts(spark, sensor, ncs, rate).unwrap();
        let shed = engine
            .evaluate_parts_loaded(spark, sensor, ncs, rate, Grams::new(-10_000.0))
            .unwrap();
        assert_eq!(shed.payload, stock.payload);
    }

    #[test]
    fn energy_objective_ranks_and_is_finite_for_feasible() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .objectives(&[Objective::MissionEnergyWhPerKm, Objective::SafeVelocity])
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert!(!result.points().is_empty());
        for i in 0..result.points().len() {
            let energy = result.values(i)[0];
            assert!(energy.is_finite() && energy > 0.0);
        }
        // Ranked ascending by energy (primary objective, minimized).
        let ranked = result.ranked();
        for pair in ranked.windows(2) {
            assert!(result.values(pair[0])[0] <= result.values(pair[1])[0]);
        }
    }

    #[test]
    fn endurance_objective_needs_and_uses_a_battery() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let err = engine
            .query()
            .objective(Objective::HoverEnduranceMin)
            .run()
            .unwrap_err();
        assert!(matches!(err, SkylineError::IncompleteSystem { .. }));

        let battery = catalog.battery_id(names::BATTERY_PELICAN).unwrap();
        let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
        let result = engine
            .query()
            .airframes(&[pelican])
            .objective(Objective::HoverEnduranceMin)
            .battery(battery)
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert!(!result.points().is_empty());
        for i in 0..result.points().len() {
            let endurance = result.values(i)[0];
            assert!(endurance.is_finite() && endurance > 0.0);
            // A Pelican-sized pack hovers a research quad for minutes,
            // not hours.
            assert!(endurance < 120.0, "endurance {endurance} min");
        }
        // The battery's mass rides along as payload.
        let unloaded = engine
            .query()
            .airframes(&[pelican])
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        let battery_mass = catalog.battery_by_id(battery).mass().get();
        let loaded_first = &result.points()[0];
        let unloaded_match = unloaded
            .points()
            .iter()
            .find(|p| p.candidate == loaded_first.candidate)
            .unwrap();
        assert!(
            (loaded_first.outcome.payload.get()
                - unloaded_match.outcome.payload.get()
                - battery_mass)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn four_objective_frontier_contains_three_objective_frontier_candidates() {
        // Adding an objective can only grow (or keep) the frontier set:
        // a point undominated on (v, tdp, payload) stays undominated when
        // energy is added.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let three = engine.query().run().unwrap();
        let four = engine
            .query()
            .objectives(&[
                Objective::SafeVelocity,
                Objective::TotalTdp,
                Objective::PayloadMass,
                Objective::MissionEnergyWhPerKm,
            ])
            .run()
            .unwrap();
        assert!(four.frontier().len() >= three.frontier().len());
        for &i in three.frontier() {
            assert!(
                four.frontier().contains(&i),
                "3-objective frontier point {i} missing from 4-objective frontier"
            );
        }
    }

    #[test]
    fn describe_query_ranks_by_primary_objective() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        // Primary = TDP: every airframe's report must be ascending in
        // TDP among feasible entries, not descending in velocity.
        let result = engine
            .query()
            .objectives(&[Objective::TotalTdp, Objective::SafeVelocity])
            .run()
            .unwrap();
        let reports = engine.describe_query(&result);
        assert_eq!(reports.len(), catalog.airframe_count());
        for report in &reports {
            let tdps: Vec<f64> = report
                .ranked
                .iter()
                .filter(|o| o.feasible)
                .map(|o| catalog.compute(&o.compute).unwrap().tdp().get())
                .collect();
            for pair in tdps.windows(2) {
                assert!(pair[0] <= pair[1], "{}: {tdps:?}", report.airframe);
            }
            // Feasible entries precede infeasible ones.
            let first_infeasible = report.ranked.iter().position(|o| !o.feasible);
            if let Some(pos) = first_infeasible {
                assert!(report.ranked[pos..].iter().all(|o| !o.feasible));
            }
        }
    }

    #[test]
    fn duplicate_objectives_are_deduplicated() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .objectives(&[
                Objective::SafeVelocity,
                Objective::SafeVelocity,
                Objective::TotalTdp,
            ])
            .run()
            .unwrap();
        assert_eq!(
            result.objectives(),
            [Objective::SafeVelocity, Objective::TotalTdp]
        );
    }

    #[test]
    fn invalid_sweeps_and_profiles_are_rejected() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        assert!(engine
            .query()
            .sweep(KnobSweep::new(Knob::TdpScale, vec![0.0]))
            .run()
            .is_err());
        assert!(engine
            .query()
            .sweep(KnobSweep::new(Knob::TdpScale, vec![]))
            .run()
            .is_err());
        assert!(engine
            .query()
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![f64::NAN]))
            .run()
            .is_err());
        let profile = MissionProfile {
            figure_of_merit: 1.5,
            ..MissionProfile::default()
        };
        assert!(engine.query().mission_profile(profile).run().is_err());
    }

    #[test]
    fn nonfinite_energy_points_are_counted_not_silently_dropped() {
        // Regression: a sensor-range scale of 1e-307 crushes the sensing
        // range toward the smallest normal float. Builds stay feasible
        // (they can hover) but the achieved velocity collapses toward
        // zero, so the Wh/km energy objective overflows to +∞. Those
        // points used to vanish from the frontier with no accounting;
        // they must be counted.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let result = engine
            .query()
            .objectives(&[Objective::SafeVelocity, Objective::MissionEnergyWhPerKm])
            .constraint(Constraint::FeasibleOnly)
            .sweep(KnobSweep::new(Knob::SensorRangeScale, vec![1e-307]))
            .run()
            .unwrap();
        assert!(!result.points().is_empty());
        assert!(result.points().iter().all(|p| p.outcome.feasible));
        // Every kept point is feasible with +∞ energy: all counted.
        assert_eq!(result.nonfinite(), result.points().len());
        // Excluded from the frontier domain, but never lost from points.
        let (keys, map) = result.minimized_keys();
        assert!(keys.is_empty() && map.is_empty());
        assert!(result.frontier().is_empty());
        // A finite-valued query counts zero.
        let finite = engine
            .query()
            .objectives(&[Objective::SafeVelocity, Objective::MissionEnergyWhPerKm])
            .constraint(Constraint::FeasibleOnly)
            .run()
            .unwrap();
        assert_eq!(finite.nonfinite(), 0);
        assert!(!finite.frontier().is_empty());
        // The per-airframe reports carry their slice of the count and
        // sum back to the query-wide total.
        let reports = engine.describe_query(&result);
        assert_eq!(
            reports.iter().map(|r| r.nonfinite).sum::<usize>(),
            result.nonfinite()
        );
        assert!(reports.iter().any(|r| r.nonfinite > 0));
    }

    #[test]
    fn out_of_domain_knob_variants_fail_before_the_pass_naming_the_knob() {
        // 1e308 passes the sweep-value validation (finite, positive) but
        // scales the catalog rates/ranges to infinity: the variant build
        // must reject it before any evaluation runs, naming the knob.
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        for (knob, expected) in [
            (Knob::SensorRateScale, "Sensor Framerate"),
            (Knob::SensorRangeScale, "Sensor Range"),
            (Knob::TdpScale, "Compute TDP"),
        ] {
            let err = engine
                .query()
                .sweep(KnobSweep::new(knob, vec![1e308]))
                .run()
                .unwrap_err();
            match err {
                SkylineError::KnobVariant { knob, value, .. } => {
                    assert_eq!(knob, expected);
                    assert_eq!(value, 1e308);
                }
                other => panic!("expected KnobVariant, got {other:?}"),
            }
        }
        // Stacked payload deltas compose by addition: two individually
        // valid values summing to +∞ must fail the same way, not panic
        // in the units layer.
        let err = engine
            .query()
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![1e308]))
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![1e308]))
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            SkylineError::KnobVariant {
                knob: "Payload Weight",
                ..
            }
        ));
    }

    #[test]
    fn objective_parsing_round_trips() {
        for objective in Objective::ALL {
            let parsed: Objective = objective.label().parse().unwrap();
            assert_eq!(parsed, objective);
        }
        assert!("warp-drive".parse::<Objective>().is_err());
    }

    #[test]
    fn queries_are_deterministic() {
        let catalog = Catalog::paper();
        let engine = Engine::new(&catalog);
        let build = || {
            engine
                .query()
                .objectives(&[
                    Objective::SafeVelocity,
                    Objective::TotalTdp,
                    Objective::MissionEnergyWhPerKm,
                ])
                .sweep(KnobSweep::linear(Knob::TdpScale, 0.5, 1.0, 3))
                .run()
                .unwrap()
        };
        assert_eq!(build(), build());
    }
}
