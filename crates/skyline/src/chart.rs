//! Roofline chart construction (the Skyline "visualization area").

use f1_model::roofline::Roofline;
use f1_plot::{Annotation, Chart, Scale, Series};
use f1_units::{Hertz, MetersPerSecond};

use crate::SkylineError;

/// A labelled operating point to overlay on the chart (e.g.
/// "DroNet + TX2" at 178 Hz).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Display label.
    pub label: String,
    /// Action throughput of the point.
    pub rate: Hertz,
    /// Safe velocity at the point.
    pub velocity: MetersPerSecond,
}

/// Builds the F-1 roofline chart for one or more systems, with knee
/// markers and operating-point overlays — the layout of the paper's
/// Fig. 11b/13b/15b.
///
/// # Errors
///
/// Returns [`SkylineError::Model`] domain errors for an empty rate range
/// (cannot occur with the defaults).
pub fn roofline_chart(
    title: &str,
    rooflines: &[(String, Roofline)],
    points: &[OperatingPoint],
    f_lo: Hertz,
    f_hi: Hertz,
) -> Result<Chart, SkylineError> {
    let mut chart = Chart::new(title)
        .x_label("Action Throughput (Hz)")
        .y_label("Safe Velocity (m/s)")
        .x_scale(Scale::Log10);
    for (label, roofline) in rooflines {
        let curve: Vec<(f64, f64)> = roofline
            .sample_log(f_lo, f_hi, 120)
            .into_iter()
            .map(|(f, v)| (f.get(), v.get()))
            .collect();
        chart = chart.series(Series::line(label.clone(), curve));
        let knee = roofline.knee();
        chart = chart.annotation(Annotation::marked(
            knee.rate.get(),
            knee.velocity.get(),
            format!("knee {:.0} Hz", knee.rate.get()),
        ));
    }
    if !points.is_empty() {
        let scatter: Vec<(f64, f64)> = points
            .iter()
            .map(|p| (p.rate.get(), p.velocity.get()))
            .collect();
        chart = chart.series(Series::scatter("operating points", scatter));
        for p in points {
            chart = chart.annotation(Annotation::text(
                p.rate.get(),
                p.velocity.get(),
                p.label.clone(),
            ));
        }
    }
    Ok(chart)
}

/// Builds the complete single-system chart: the roofline, the operating
/// point, the knee, and the Fig. 4a stage ceilings for every pipeline
/// stage running below the knee.
///
/// # Errors
///
/// Propagates analysis errors ([`SkylineError::CannotHover`] for
/// infeasible builds).
pub fn system_chart(system: &crate::UavSystem) -> Result<Chart, SkylineError> {
    let roofline = system.roofline()?;
    let rates = system.stage_rates()?;
    let f_action = rates.action_throughput();
    let mut chart = roofline_chart(
        system.name(),
        &[(system.airframe().name().to_owned(), roofline)],
        &[OperatingPoint {
            label: format!("{} @ {:.1}", system.algorithm().name(), f_action),
            rate: f_action,
            velocity: roofline.velocity_at(f_action),
        }],
        Hertz::new((f_action.get() * 0.05).max(0.05)),
        Hertz::new(1000.0),
    )?;
    for (stage, rate, ceiling) in roofline.stage_ceilings(&rates) {
        chart = chart.hline(ceiling.get(), format!("{stage}-bound ceiling ({rate:.1})"));
    }
    Ok(chart)
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_model::roofline::Saturation;
    use f1_model::safety::SafetyModel;
    use f1_units::{Meters, MetersPerSecondSquared};

    fn sample_roofline() -> Roofline {
        Roofline::with_saturation(
            SafetyModel::new(MetersPerSecondSquared::new(6.8), Meters::new(4.5)).unwrap(),
            Saturation::DEFAULT,
        )
    }

    #[test]
    fn chart_renders_both_backends() {
        let r = sample_roofline();
        let v = r.velocity_at(Hertz::new(178.0));
        let chart = roofline_chart(
            "AscTec Pelican",
            &[("Pelican".into(), r)],
            &[OperatingPoint {
                label: "DroNet + TX2".into(),
                rate: Hertz::new(178.0),
                velocity: v,
            }],
            Hertz::new(0.5),
            Hertz::new(1000.0),
        )
        .unwrap();
        let svg = chart.render_svg(640, 480).unwrap();
        assert!(svg.contains("DroNet + TX2"));
        assert!(svg.contains("knee"));
        let ascii = chart.render_ascii(100, 30).unwrap();
        assert!(ascii.contains("knee"));
    }

    #[test]
    fn system_chart_draws_ceilings_when_bound() {
        use f1_components::{names, Catalog};
        let catalog = Catalog::paper();
        // SPA on TX2 is deeply compute-bound ⇒ a compute ceiling appears.
        let system = crate::UavSystem::from_catalog(
            &catalog,
            names::ASCTEC_PELICAN,
            names::RGBD_60,
            names::TX2,
            names::MAVBENCH_PD,
        )
        .unwrap();
        let svg = system_chart(&system).unwrap().render_svg(800, 520).unwrap();
        assert!(svg.contains("compute-bound ceiling"), "missing ceiling");

        // DroNet is physics-bound ⇒ no ceilings.
        let fast = crate::UavSystem::from_catalog(
            &catalog,
            names::ASCTEC_PELICAN,
            names::RGBD_60,
            names::TX2,
            names::DRONET,
        )
        .unwrap();
        let svg2 = system_chart(&fast).unwrap().render_svg(800, 520).unwrap();
        assert!(!svg2.contains("ceiling"));
    }

    #[test]
    fn multiple_rooflines_render() {
        let a = sample_roofline();
        let b = Roofline::with_saturation(
            SafetyModel::new(MetersPerSecondSquared::new(2.0), Meters::new(4.5)).unwrap(),
            Saturation::DEFAULT,
        );
        let chart = roofline_chart(
            "two UAVs",
            &[("fast".into(), a), ("slow".into(), b)],
            &[],
            Hertz::new(1.0),
            Hertz::new(500.0),
        )
        .unwrap();
        assert_eq!(chart.series_list().len(), 2);
    }
}
