//! The sharded streaming executor — 10⁷-candidate queries with bounded
//! memory.
//!
//! The fused pass in [`crate::session`] materializes every evaluated
//! point: at 10⁵ candidates that is the right call (the result *is* the
//! product), but interesting catalogs are 10⁷–10⁸ candidates and almost
//! all of those points are dominated, out-ranked, and never looked at.
//! This module restructures the same evaluation into **(airframe × knob
//! setting)-aligned shards** streamed through per-worker reducers:
//!
//! * **Lazy enumeration.** A candidate is a `sensor × characterized
//!   (compute, algorithm) pair` coordinate decoded on the fly from the
//!   pair list
//!   ([`ThroughputTable::characterized_pairs`](f1_components::ThroughputTable::characterized_pairs)
//!   order) — the 10⁷ cross-product is never held in memory.
//! * **Pair hoisting.** Shards never cross an (airframe, setting)
//!   block, and candidates within a block are sensor-major over the
//!   compute-major pair list, so the algorithm-independent
//!   `pair_stage` — payload, dynamics,
//!   safety roofline — and the mission power model are computed once
//!   per (sensor, compute) pair instead of once per candidate.
//! * **Struct-of-arrays slabs.** Within a shard, objective values land
//!   in contiguous per-column `f64` slabs and feasibility in a flat
//!   mask, so the finite/accounting sweeps are branch-light column
//!   scans over dense memory.
//! * **Streaming reduction.** Each shard keeps only its local Pareto
//!   frontier, a bounded top-[`STREAM_TOP_K`] ranking and the
//!   dropped/nonfinite counters. Peak memory is O(shard + frontier +
//!   k), not O(n).
//!
//! The serial merge is **exact**, not approximate:
//!
//! * frontier(S ∪ D) = frontier(frontier(S) ∪ frontier(D)) — the same
//!   identity delta repair relies on — so one final
//!   [`frontier::pareto_min`] over the concatenated shard frontiers
//!   reproduces the materializing frontier index-for-index (global kept
//!   indices come from a prefix sum over per-shard kept counts, and
//!   both paths emit survivors in ascending order).
//! * The rank order (feasible first, then the primary objective, ties
//!   by enumeration index) restricted to one shard *is* the shard's
//!   local rank order, so the global top-K is a subset of the union of
//!   per-shard top-Ks and a single merge-sort-and-truncate of that
//!   union is the exact prefix of the full ranking.
//!
//! Bit-identity with the materializing pass is property-tested
//! (`tests/stream_properties.rs`); the scale target is pinned by
//! `tests/stream_scale.rs`.

use std::borrow::Cow;

use f1_components::{Airframe, AirframeId, AlgorithmId, ComputeId, SensorId};
use f1_model::mission::{hover_endurance, PowerModel};
use f1_units::Hertz;

use crate::dse::{algo_stage, pair_stage, Candidate, PairStage};
use crate::frontier;
use crate::plan::{KeepPoints, QueryPlan};
use crate::query::{Objective, QueryPoint, MAX_OBJECTIVES};
use crate::session::{active_ids, build_variants, PassContext, ResultSet, StreamedMeta};
use crate::sweep::parallel_map_indices;
use crate::SkylineError;

/// Maximum candidates per shard. Shards never cross an (airframe ×
/// knob-setting) block boundary, so a block smaller than this is one
/// shard. 65536 four-objective rows are ~2 MB of slab — still a small,
/// bounded working set, while big enough that intra-shard domination
/// (the window prefilter plus one exact local skyline) culls most
/// points before the cross-shard merge: smaller shards shift work into
/// the merge's concatenated-frontier skyline, which measures slower at
/// 10⁷ candidates. Still yields ~150 shards per 10⁷ for work stealing.
pub const SHARD_SIZE: usize = 65536;

/// How many best-ranked points a streamed result retains. The stored
/// prefix equals `ranked()[..STREAM_TOP_K]` of the materializing path
/// exactly (including tie order).
pub const STREAM_TOP_K: usize = 64;

/// How many recent prefilter survivors each eligible row is probed
/// against before the exact local skyline. Purely a constant-factor
/// dial: any value yields identical results (the prefilter only drops
/// rows a retained row dominates).
const PREFILTER_WINDOW: usize = 16;

/// Job count above which a [`KeepPoints::Auto`] plan streams instead of
/// materializing. Below this the full point store costs a few hundred
/// MB at most and callers keep random access; above it, materializing
/// is what makes 10⁷ queries impossible, so streaming wins.
pub const STREAM_AUTO_THRESHOLD: usize = 2_000_000;

/// One characterized (compute, algorithm) pair of the resolved
/// subspace, with the compute's position for variant lookup.
struct PairEntry {
    compute_pos: u32,
    compute: ComputeId,
    algorithm: AlgorithmId,
    throughput: Hertz,
}

/// The resolved (active-filtered) component subspace of a plan plus its
/// characterized pair list — everything needed to decode a flat job
/// index into parts without materializing candidates.
struct Space<'a> {
    airframes: Cow<'a, [AirframeId]>,
    sensors: Cow<'a, [SensorId]>,
    computes: Cow<'a, [ComputeId]>,
    algorithms: Cow<'a, [AlgorithmId]>,
    pairs: Vec<PairEntry>,
}

impl Space<'_> {
    /// Candidates per (airframe, setting) block.
    fn cand_count(&self) -> usize {
        self.sensors.len() * self.pairs.len()
    }

    /// Sensor × compute × algorithm combinations skipped because the
    /// pair was never characterized — counted once per subspace, the
    /// same convention as the materializing pass.
    fn uncharacterized(&self) -> usize {
        self.sensors.len() * self.computes.len() * self.algorithms.len() - self.cand_count()
    }
}

/// Resolves a plan's subspace exactly as the materializing pass does
/// (explicit plan lists or session defaults, retired components
/// filtered), then snapshots the characterized pair list in the shared
/// compute-major order.
fn resolve_space<'a>(ctx: &PassContext<'a>, plan: &'a QueryPlan) -> Space<'a> {
    let catalog = ctx.catalog;
    let airframes = active_ids(plan.airframes().unwrap_or(ctx.airframes), |id| {
        catalog.airframe_is_active(id)
    });
    let sensors = active_ids(plan.sensors().unwrap_or(ctx.sensors), |id| {
        catalog.sensor_is_active(id)
    });
    let computes = active_ids(plan.computes().unwrap_or(ctx.computes), |id| {
        catalog.compute_is_active(id)
    });
    let algorithms = active_ids(plan.algorithms().unwrap_or(ctx.algorithms), |id| {
        catalog.algorithm_is_active(id)
    });
    let mut pairs = Vec::new();
    for (compute_pos, &compute) in computes.iter().enumerate() {
        for (_, algorithm, throughput) in ctx
            .table
            .characterized_pairs(std::slice::from_ref(&compute), &algorithms)
        {
            pairs.push(PairEntry {
                compute_pos: compute_pos as u32,
                compute,
                algorithm,
                throughput,
            });
        }
    }
    Space {
        airframes,
        sensors,
        computes,
        algorithms,
        pairs,
    }
}

/// Whether a plan takes the streaming path: [`KeepPoints::All`] never,
/// [`KeepPoints::FrontierOnly`] always, [`KeepPoints::Auto`] when the
/// resolved job count exceeds [`STREAM_AUTO_THRESHOLD`].
pub(crate) fn should_stream(ctx: &PassContext<'_>, plan: &QueryPlan) -> bool {
    match plan.keep_points() {
        KeepPoints::All => false,
        KeepPoints::FrontierOnly => true,
        KeepPoints::Auto => {
            let space = resolve_space(ctx, plan);
            space.airframes.len() * plan.settings().len() * space.cand_count()
                > STREAM_AUTO_THRESHOLD
        }
    }
}

/// A survivor row a shard reducer retained: its local kept index plus
/// everything needed to emit the stored point without re-walking the
/// shard.
struct Survivor {
    local: u32,
    point: QueryPoint,
    row: [f64; MAX_OBJECTIVES],
    feasible: bool,
}

/// One shard's reduction: accounting plus the bounded survivor sets.
struct ShardOut {
    kept: usize,
    dropped: usize,
    nonfinite: usize,
    /// Local Pareto frontier, ascending local index.
    frontier: Vec<Survivor>,
    /// Local bounded top-k, rank order.
    topk: Vec<Survivor>,
}

/// Runs one plan through the sharded streaming executor, producing a
/// streamed [`ResultSet`]: exact frontier, exact bounded top-k, exact
/// accounting, only frontier ∪ top-k points materialized.
///
/// # Errors
///
/// Propagates evaluation-kernel model errors as the materializing pass
/// would ([`SkylineError::Model`]); catalog parts and validated
/// variants never produce them.
// analyze::allow(indexing, scope = "fn", reason = "streaming kernel: positions index the part lists and tables they were enumerated from")
pub(crate) fn run_stream(
    ctx: &PassContext<'_>,
    plan: &QueryPlan,
    with_frontier: bool,
) -> Result<ResultSet, SkylineError> {
    let catalog = ctx.catalog;
    let space = resolve_space(ctx, plan);
    let settings = plan.settings();
    let objectives: Vec<Objective> = plan.objectives().to_vec();
    let k = objectives.len();
    let uncharacterized = space.uncharacterized();

    let cand_count = space.cand_count();
    let job_count = space.airframes.len() * settings.len() * cand_count;
    if job_count == 0 {
        return Ok(ResultSet::from_streamed(
            objectives,
            Vec::new(),
            vec![Vec::new(); k],
            Vec::new(),
            StreamedMeta {
                total_kept: 0,
                stored: Vec::new(),
                topk: Vec::new(),
            },
            uncharacterized,
            0,
            0,
        ));
    }
    assert!(
        cand_count <= u32::MAX as usize,
        "per-block candidate space exceeds the shard executor's u32 coordinates"
    );

    let battery = plan.battery().map(|id| catalog.battery_by_id(id));
    let battery_mass = battery.map_or(0.0, |b| b.mass().get());
    let battery_wh = battery.map(f1_components::Battery::energy_watt_hours);
    let variants = build_variants(
        ctx,
        &space.sensors,
        &space.computes,
        &space.airframes,
        settings,
        battery_mass,
    )?;
    let airframe_refs: Vec<&Airframe> = space
        .airframes
        .iter()
        .map(|&id| catalog.airframe_by_id(id))
        .collect();

    let shards_per_block = cand_count.div_ceil(SHARD_SIZE);
    let shard_count = space.airframes.len() * settings.len() * shards_per_block;
    let pair_count = space.pairs.len();
    let constraints = plan.constraints();
    let needs_power = plan.needs_power();
    let wants_endurance = objectives.contains(&Objective::HoverEnduranceMin);
    let profile = plan.mission_profile();
    let primary_max = objectives[0].maximize();

    let eval_shard = |shard: usize| -> Result<ShardOut, SkylineError> {
        let block = shard / shards_per_block;
        let airframe_pos = block / settings.len();
        let setting_pos = block % settings.len();
        let start = (shard % shards_per_block) * SHARD_SIZE;
        let end = (start + SHARD_SIZE).min(cand_count);
        let parts = &variants[setting_pos];
        let airframe: &Airframe = parts
            .airframes
            .as_ref()
            .map_or(airframe_refs[airframe_pos], |a| &a[airframe_pos]);

        // Struct-of-arrays slabs over this shard's kept rows.
        let cap = end - start;
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(cap); k];
        let mut feasible: Vec<bool> = Vec::with_capacity(cap);
        let mut kept_cand: Vec<u32> = Vec::with_capacity(cap);
        let mut dropped = 0usize;

        // Per-(sensor, compute) hoisted state: the pair stage, and —
        // deferred to the pair's first *kept* candidate so a fully
        // dropped pair builds exactly what the materializing pass
        // would — the mission power model and the pair-constant hover
        // endurance.
        let mut cur_pair = (usize::MAX, u32::MAX);
        let mut pair = None::<PairStage>;
        let mut power: Option<PowerModel> = None;
        let mut power_ready = false;
        let mut endurance = 0.0f64;

        for c in start..end {
            let sensor_pos = c / pair_count;
            let entry = &space.pairs[c % pair_count];
            if cur_pair != (sensor_pos, entry.compute_pos) {
                cur_pair = (sensor_pos, entry.compute_pos);
                pair = Some(pair_stage(
                    ctx.heatsink,
                    ctx.saturation,
                    airframe,
                    &parts.sensors[sensor_pos],
                    &parts.computes[entry.compute_pos as usize],
                    parts.extra_payload,
                )?);
                power = None;
                power_ready = false;
                endurance = 0.0;
            }
            // analyze::allow(panic, reason = "the loop sets `pair` on the first candidate of every (sensor, compute) block")
            let stage = pair.as_ref().expect("pair stage set on first candidate");
            let outcome = algo_stage(
                stage,
                airframe,
                &parts.sensors[sensor_pos],
                entry.throughput,
            )?;
            if !constraints.iter().all(|con| con.admits(&outcome)) {
                dropped += 1;
                continue;
            }
            if needs_power && !power_ready {
                power_ready = true;
                // Identical construction (and argument expressions) to
                // the materializing pass's per-job `fill_values`; every
                // argument is pair-level, which is what lets it hoist.
                power = if stage.feasible() {
                    Some(crate::mission::power_model_for_parts(
                        airframe,
                        airframe.takeoff_mass(stage.payload()),
                        stage.total_tdp(),
                        profile.figure_of_merit,
                        profile.parasitic_coeff,
                    )?)
                } else {
                    None
                };
                if wants_endurance {
                    endurance = match &power {
                        Some(p) => {
                            // analyze::allow(panic, reason = "plan validation rejects endurance plans without a battery")
                            let wh = battery_wh.expect(
                                "plan validation rejects endurance plans without a battery",
                            );
                            hover_endurance(p, wh, profile.battery_reserve)?.get()
                        }
                        None => 0.0,
                    };
                }
            }
            for (col, &objective) in cols.iter_mut().zip(&objectives) {
                col.push(match objective {
                    Objective::SafeVelocity => outcome.velocity.get(),
                    Objective::TotalTdp => outcome.total_tdp.get(),
                    Objective::PayloadMass => outcome.payload.get(),
                    Objective::MissionEnergyWhPerKm => match &power {
                        Some(p) if outcome.velocity.get() > 0.0 => {
                            let v = outcome.velocity;
                            p.power_at(v).get() * (1000.0 / v.get()) / 3600.0
                        }
                        _ => f64::INFINITY,
                    },
                    Objective::HoverEnduranceMin => endurance,
                });
            }
            feasible.push(outcome.feasible);
            kept_cand.push(c as u32);
        }

        // Columnar finite sweep: a row is frontier-eligible when
        // feasible and every objective value is finite; feasible rows
        // excluded for non-finite values are the `nonfinite` counter.
        let kept = feasible.len();
        let mut finite = vec![true; kept];
        for col in &cols {
            for (flag, v) in finite.iter_mut().zip(col) {
                *flag &= v.is_finite();
            }
        }
        let nonfinite = feasible
            .iter()
            .zip(&finite)
            .filter(|&(&feas, &fin)| feas && !fin)
            .count();

        // Local Pareto frontier over the eligible rows — same key
        // construction as `ResultSet::minimized_keys`, with a cheap
        // dominance prefilter in front of the exact skyline. Enumeration
        // order visits one (sensor, compute) pair's algorithms
        // back-to-back, so a dominated row's dominator is usually a few
        // rows back: probing the most recent survivors kills most rows
        // in O(window) before the superlinear exact pass. Exactness is
        // preserved — a discarded row is dominated by a *retained* one,
        // so the survivor set's skyline is the full set's skyline.
        let mut local_frontier: Vec<u32> = Vec::new();
        if with_frontier {
            let mut keys: Vec<f64> = Vec::new();
            let mut map: Vec<u32> = Vec::new();
            let mut minkey = [0.0f64; MAX_OBJECTIVES];
            for r in 0..kept {
                if !(feasible[r] && finite[r]) {
                    continue;
                }
                for (slot, (col, o)) in minkey.iter_mut().zip(cols.iter().zip(&objectives)) {
                    *slot = if o.maximize() { -col[r] } else { col[r] };
                }
                let window = map.len().saturating_sub(PREFILTER_WINDOW);
                let dominated = (window..map.len())
                    .rev()
                    .any(|m| frontier::dominates_min(&keys[m * k..m * k + k], &minkey[..k]));
                if dominated {
                    continue;
                }
                map.push(r as u32);
                keys.extend_from_slice(&minkey[..k]);
            }
            local_frontier = frontier::pareto_min(k, &keys)
                .into_iter()
                .map(|i| map[i])
                .collect();
        }

        // Local bounded top-k under the global rank order restricted to
        // this shard (feasible first, primary objective, enumeration
        // ties) — the global index is offset + local, so local order is
        // the restriction of the global order.
        let rank = |a: u32, b: u32| {
            let (a, b) = (a as usize, b as usize);
            feasible[b]
                .cmp(&feasible[a])
                .then_with(|| {
                    let (va, vb) = (cols[0][a], cols[0][b]);
                    if primary_max {
                        vb.total_cmp(&va)
                    } else {
                        va.total_cmp(&vb)
                    }
                })
                .then_with(|| a.cmp(&b))
        };
        let mut order: Vec<u32> = (0..kept as u32).collect();
        // Partition the best K in O(n), then sort just those — the rank
        // comparator is total (index tiebreak), so this equals the full
        // sort-and-truncate exactly.
        if kept > STREAM_TOP_K {
            order.select_nth_unstable_by(STREAM_TOP_K - 1, |&a, &b| rank(a, b));
            order.truncate(STREAM_TOP_K);
        }
        order.sort_unstable_by(|&a, &b| rank(a, b));

        // Materialize only the survivors: re-deriving an outcome from
        // the same inputs through the same kernel is bit-deterministic,
        // so the stored points match the materializing path exactly.
        let build = |r: u32| -> Result<Survivor, SkylineError> {
            let c = kept_cand[r as usize] as usize;
            let sensor_pos = c / pair_count;
            let entry = &space.pairs[c % pair_count];
            let stage = pair_stage(
                ctx.heatsink,
                ctx.saturation,
                airframe,
                &parts.sensors[sensor_pos],
                &parts.computes[entry.compute_pos as usize],
                parts.extra_payload,
            )?;
            let outcome = algo_stage(
                &stage,
                airframe,
                &parts.sensors[sensor_pos],
                entry.throughput,
            )?;
            let mut row = [0.0f64; MAX_OBJECTIVES];
            for (slot, col) in row.iter_mut().zip(&cols) {
                *slot = col[r as usize];
            }
            Ok(Survivor {
                local: r,
                point: QueryPoint {
                    airframe: space.airframes[airframe_pos],
                    candidate: Candidate {
                        sensor: space.sensors[sensor_pos],
                        compute: entry.compute,
                        algorithm: entry.algorithm,
                        throughput: entry.throughput,
                    },
                    setting: settings[setting_pos],
                    outcome,
                },
                row,
                feasible: feasible[r as usize],
            })
        };
        Ok(ShardOut {
            kept,
            dropped,
            nonfinite,
            frontier: local_frontier
                .iter()
                .map(|&r| build(r))
                .collect::<Result<_, _>>()?,
            topk: order.iter().map(|&r| build(r)).collect::<Result<_, _>>()?,
        })
    };

    // One shard per work-stealing chunk: shards are already chunk-sized
    // (≤ SHARD_SIZE jobs), so finer chunking would only split reducers.
    let outs: Vec<ShardOut> = parallel_map_indices(shard_count, 1, eval_shard)
        .into_iter()
        .collect::<Result<_, _>>()?;

    // Serial exact merge, in shard (= enumeration) order. Global kept
    // indices are a prefix sum over per-shard kept counts.
    let mut offsets = Vec::with_capacity(outs.len());
    let (mut total_kept, mut dropped, mut nonfinite) = (0usize, 0usize, 0usize);
    for out in &outs {
        offsets.push(total_kept);
        total_kept += out.kept;
        dropped += out.dropped;
        nonfinite += out.nonfinite;
    }

    // frontier(S ∪ D) = frontier(frontier(S) ∪ frontier(D)): one final
    // skyline over the concatenated shard frontiers. Both the member
    // list (shard order) and `pareto_min` survivors are ascending, so
    // the emitted indices match the materializing frontier exactly.
    let mut frontier_global: Vec<usize> = Vec::new();
    let mut frontier_rows: Vec<&Survivor> = Vec::new();
    if with_frontier {
        let mut keys = Vec::new();
        let mut members: Vec<(usize, &Survivor)> = Vec::new();
        for (out, &offset) in outs.iter().zip(&offsets) {
            for s in &out.frontier {
                members.push((offset + s.local as usize, s));
                keys.extend(s.row[..k].iter().zip(&objectives).map(|(&v, o)| {
                    if o.maximize() {
                        -v
                    } else {
                        v
                    }
                }));
            }
        }
        for i in frontier::pareto_min(k, &keys) {
            frontier_global.push(members[i].0);
            frontier_rows.push(members[i].1);
        }
    }

    // Exact top-k: the global top-K is a subset of the union of shard
    // top-Ks (each shard kept the best K under the restriction of the
    // global order), so sort-and-truncate of the union is the exact
    // prefix of the full ranking.
    let mut topk: Vec<(usize, &Survivor)> = outs
        .iter()
        .zip(&offsets)
        .flat_map(|(out, &offset)| out.topk.iter().map(move |s| (offset + s.local as usize, s)))
        .collect();
    topk.sort_unstable_by(|a, b| {
        b.1.feasible
            .cmp(&a.1.feasible)
            .then_with(|| {
                let (va, vb) = (a.1.row[0], b.1.row[0]);
                if primary_max {
                    vb.total_cmp(&va)
                } else {
                    va.total_cmp(&vb)
                }
            })
            .then_with(|| a.0.cmp(&b.0))
    });
    topk.truncate(STREAM_TOP_K);

    // Stored rows = frontier ∪ top-k, ascending global index.
    let mut stored: Vec<(usize, &Survivor)> = frontier_global
        .iter()
        .copied()
        .zip(frontier_rows.iter().copied())
        .chain(topk.iter().copied())
        .collect();
    stored.sort_unstable_by_key(|&(g, _)| g);
    stored.dedup_by_key(|&mut (g, _)| g);

    let stored_points: Vec<QueryPoint> = stored.iter().map(|&(_, s)| s.point).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(stored.len()); k];
    for &(_, s) in &stored {
        for (col, &v) in columns.iter_mut().zip(&s.row[..k]) {
            col.push(v);
        }
    }
    let meta = StreamedMeta {
        total_kept,
        stored: stored.iter().map(|&(g, _)| g).collect(),
        topk: topk.iter().map(|&(g, _)| g).collect(),
    };
    Ok(ResultSet::from_streamed(
        objectives,
        stored_points,
        columns,
        frontier_global,
        meta,
        uncharacterized,
        dropped,
        nonfinite,
    ))
}
