//! The Skyline user knobs (paper Table II).

use f1_units::{Grams, Hertz, Meters, Seconds, Watts};
use serde::{Deserialize, Serialize};

use crate::SkylineError;

/// Description of one knob, as listed in paper Table II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobDescription {
    /// Knob name.
    pub parameter: &'static str,
    /// Unit string.
    pub unit: &'static str,
    /// Description from the paper.
    pub description: &'static str,
}

/// The raw user-defined UAV parameters (paper Table II), for exploratory
/// studies that bypass the component catalog.
///
/// # Examples
///
/// ```
/// use f1_skyline::Knobs;
/// use f1_units::*;
///
/// let knobs = Knobs {
///     sensor_framerate: Hertz::new(60.0),
///     sensor_range: Meters::new(5.0),
///     compute_tdp: Watts::new(15.0),
///     compute_runtime: Seconds::new(1.0 / 178.0),
///     drone_weight: Grams::new(300.0),
///     rotor_pull: Grams::new(800.0),
///     payload_weight: Grams::new(150.0),
/// };
/// assert!(knobs.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Knobs {
    /// Throughput of the sensor (Hz).
    pub sensor_framerate: Hertz,
    /// Maximum range of the sensor (m).
    pub sensor_range: Meters,
    /// Maximum TDP of the onboard compute (W). Used to size the heatsink.
    pub compute_tdp: Watts,
    /// Latency of the autonomy algorithm (s). Used to calculate compute
    /// throughput.
    pub compute_runtime: Seconds,
    /// Maximum weight of the UAV without any extra payload (g).
    pub drone_weight: Grams,
    /// Total thrust produced by the rotor propulsion, as equivalent mass (g).
    pub rotor_pull: Grams,
    /// Total weight of the payload including onboard compute, sensors,
    /// battery etc. (g).
    pub payload_weight: Grams,
}

impl Knobs {
    /// The Table II knob inventory.
    #[must_use]
    pub fn table2() -> Vec<KnobDescription> {
        vec![
            KnobDescription {
                parameter: "Sensor Framerate",
                unit: "Hz",
                description: "Throughput of the sensor.",
            },
            KnobDescription {
                parameter: "Compute TDP",
                unit: "W",
                description: "Maximum TDP of the onboard compute. Used to design the heatsink.",
            },
            KnobDescription {
                parameter: "Autonomy Algorithm",
                unit: "N/A",
                description: "Select a pre-configured autonomy algorithm.",
            },
            KnobDescription {
                parameter: "Compute Runtime",
                unit: "s",
                description: "Measures the latency of the autonomy algorithm. Used to calculate compute throughput.",
            },
            KnobDescription {
                parameter: "Sensor Range",
                unit: "m",
                description: "Maximum range of the sensor.",
            },
            KnobDescription {
                parameter: "Drone Weight",
                unit: "g",
                description: "Maximum weight of the UAV without any extra payload.",
            },
            KnobDescription {
                parameter: "Rotor Pull",
                unit: "g",
                description: "Measures the thrust produced by the rotor propulsion.",
            },
            KnobDescription {
                parameter: "Payload Weight",
                unit: "g",
                description: "Total weight of the payload including onboard compute, sensors, battery etc.",
            },
        ]
    }

    /// Validates every knob's domain.
    ///
    /// # Errors
    ///
    /// Returns [`SkylineError::Model`] naming the first out-of-domain knob.
    pub fn validate(&self) -> Result<(), SkylineError> {
        let positive = [
            ("sensor_framerate", self.sensor_framerate.get()),
            ("sensor_range", self.sensor_range.get()),
            ("compute_runtime", self.compute_runtime.get()),
            ("drone_weight", self.drone_weight.get()),
            ("rotor_pull", self.rotor_pull.get()),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(SkylineError::Model(f1_model::ModelError::OutOfDomain {
                    parameter: match name {
                        "sensor_framerate" => "sensor_framerate",
                        "sensor_range" => "sensor_range",
                        "compute_runtime" => "compute_runtime",
                        "drone_weight" => "drone_weight",
                        _ => "rotor_pull",
                    },
                    value: v,
                    expected: "finite and > 0",
                }));
            }
        }
        for (name, v) in [
            ("compute_tdp", self.compute_tdp.get()),
            ("payload_weight", self.payload_weight.get()),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(SkylineError::Model(f1_model::ModelError::OutOfDomain {
                    parameter: if name == "compute_tdp" {
                        "compute_tdp"
                    } else {
                        "payload_weight"
                    },
                    value: v,
                    expected: "finite and >= 0",
                }));
            }
        }
        Ok(())
    }

    /// The compute throughput implied by the runtime knob.
    #[must_use]
    pub fn compute_throughput(&self) -> Hertz {
        self.compute_runtime.frequency()
    }
}

impl Default for Knobs {
    /// A DJI-Spark-like default configuration.
    fn default() -> Self {
        Self {
            sensor_framerate: Hertz::new(60.0),
            sensor_range: Meters::new(5.0),
            compute_tdp: Watts::new(15.0),
            compute_runtime: Seconds::new(1.0 / 178.0),
            drone_weight: Grams::new(300.0),
            rotor_pull: Grams::new(800.0),
            payload_weight: Grams::new(150.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_knobs() {
        let rows = Knobs::table2();
        assert_eq!(rows.len(), 8);
        let names: Vec<&str> = rows.iter().map(|r| r.parameter).collect();
        for expected in [
            "Sensor Framerate",
            "Compute TDP",
            "Autonomy Algorithm",
            "Compute Runtime",
            "Sensor Range",
            "Drone Weight",
            "Rotor Pull",
            "Payload Weight",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn default_is_valid() {
        assert!(Knobs::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let k = Knobs {
            sensor_framerate: Hertz::ZERO,
            ..Knobs::default()
        };
        assert!(k.validate().is_err());

        let k = Knobs {
            compute_tdp: Watts::new(-1.0),
            ..Knobs::default()
        };
        assert!(k.validate().is_err());

        // NaN is already caught at Grams construction time:
        assert!(f1_units::Grams::try_new(f64::NAN).is_err());
        let k = Knobs {
            payload_weight: Grams::new(-5.0),
            ..Knobs::default()
        };
        assert!(k.validate().is_err());
    }

    #[test]
    fn throughput_from_runtime() {
        let k = Knobs::default();
        assert!((k.compute_throughput().get() - 178.0).abs() < 1e-9);
    }
}
