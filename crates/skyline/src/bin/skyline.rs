//! `skyline` — the paper's interactive tool as a CLI.
//!
//! ```sh
//! # list everything in the paper's catalog
//! cargo run -p f1-skyline --bin skyline -- --list
//!
//! # analyze a build (the §VI-B study)
//! cargo run -p f1-skyline --bin skyline -- \
//!     --airframe "AscTec Pelican" --sensor "RGB-D 60FPS" \
//!     --compute "Nvidia TX2" --algorithm "DroNet" --chart --mission 1000
//! ```

use f1_components::Catalog;
use f1_skyline::chart::{roofline_chart, OperatingPoint};
use f1_skyline::dse::{Engine, Exploration};
use f1_skyline::mission::{analyze_mission, MissionSpec};
use f1_skyline::UavSystem;
use f1_units::{Hertz, Meters};

struct Args {
    airframe: Option<String>,
    sensor: Option<String>,
    compute: Option<String>,
    algorithm: Option<String>,
    list: bool,
    chart: bool,
    dse: bool,
    dse_top: usize,
    mission_m: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        airframe: None,
        sensor: None,
        compute: None,
        algorithm: None,
        list: false,
        chart: false,
        dse: false,
        dse_top: 5,
        mission_m: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--airframe" => args.airframe = Some(value("--airframe")?),
            "--sensor" => args.sensor = Some(value("--sensor")?),
            "--compute" => args.compute = Some(value("--compute")?),
            "--algorithm" => args.algorithm = Some(value("--algorithm")?),
            "--mission" => {
                let v = value("--mission")?;
                args.mission_m = Some(
                    v.parse()
                        .map_err(|_| format!("bad mission distance {v:?}"))?,
                );
            }
            "--list" => args.list = true,
            "--chart" => args.chart = true,
            "--dse" => args.dse = true,
            "--dse-top" => {
                let v = value("--dse-top")?;
                args.dse_top = v
                    .parse()
                    .map_err(|_| format!("bad --dse-top count {v:?}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "skyline — F-1 bottleneck analysis for UAV onboard compute\n\n\
                     usage:\n  skyline --list\n  skyline --dse [--airframe NAME] \
                     [--dse-top N]\n  skyline --airframe NAME --sensor NAME \
                     --compute NAME --algorithm NAME [--chart] [--mission METERS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn list_catalog(catalog: &Catalog) {
    println!("airframes:");
    for a in catalog.airframes() {
        println!("  {a}");
    }
    println!("sensors:");
    for s in catalog.sensors() {
        println!("  {s}");
    }
    println!("compute platforms:");
    for c in catalog.computes() {
        println!("  {c}");
    }
    println!("algorithms:");
    for a in catalog.algorithms() {
        println!("  {a}");
    }
    println!("characterized throughputs:");
    for (p, a, f) in catalog.matrix().iter() {
        println!("  {a} on {p}: {f:.2}");
    }
}

/// Runs the catalog-wide design-space exploration and prints the ranked
/// report plus the Pareto frontier over (velocity, TDP, payload).
fn dse_report(
    catalog: &Catalog,
    only_airframe: Option<&str>,
    top: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::new(catalog);
    let exploration = match only_airframe {
        // One airframe: explore just that slice of the design space
        // (failing loudly on a typo'd name instead of printing nothing).
        Some(name) => {
            let id = catalog.airframe_id(name).map_err(|e| e.to_string())?;
            Exploration {
                airframes: vec![engine.explore_airframe(id)?],
            }
        }
        None => engine.explore_all()?,
    };
    for result in &exploration.airframes {
        let airframe = catalog.airframe_by_id(result.airframe).name();
        let feasible = result.feasible().count();
        println!(
            "━━ {airframe}: {} candidates ({} feasible, {} uncharacterized pairs skipped) ━━",
            result.ranked.len(),
            feasible,
            result.uncharacterized,
        );
        for evaluated in result.ranked.iter().take(top) {
            let candidate = evaluated.candidate;
            let outcome = evaluated.outcome;
            let verdict = outcome.bound.map_or_else(
                || "cannot hover".to_owned(),
                |bound| format!("{:.2} m/s, {bound}", outcome.velocity.get()),
            );
            println!(
                "  {:<16} + {:<18} + {:<26} {verdict}",
                catalog.sensor_by_id(candidate.sensor).name(),
                catalog.compute_by_id(candidate.compute).name(),
                catalog.algorithm_by_id(candidate.algorithm).name(),
            );
        }
    }
    if only_airframe.is_none() {
        println!("Pareto frontier over (velocity ↑, TDP ↓, payload ↓):");
        for point in exploration.pareto_frontier() {
            let outcome = point.evaluated.outcome;
            println!(
                "  {:<16} {:<20} {:<18} {:<26} {:>6.2} m/s {:>7.2} W {:>7.0} g",
                catalog.airframe_by_id(point.airframe).name(),
                catalog
                    .sensor_by_id(point.evaluated.candidate.sensor)
                    .name(),
                catalog
                    .compute_by_id(point.evaluated.candidate.compute)
                    .name(),
                catalog
                    .algorithm_by_id(point.evaluated.candidate.algorithm)
                    .name(),
                outcome.velocity.get(),
                outcome.total_tdp.get(),
                outcome.payload.get(),
            );
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    let catalog = Catalog::paper();
    if args.list {
        list_catalog(&catalog);
        return Ok(());
    }
    if args.dse {
        return dse_report(&catalog, args.airframe.as_deref(), args.dse_top);
    }
    let (Some(airframe), Some(sensor), Some(compute), Some(algorithm)) =
        (&args.airframe, &args.sensor, &args.compute, &args.algorithm)
    else {
        return Err("need --airframe, --sensor, --compute and --algorithm (or --list)".into());
    };
    let system = UavSystem::from_catalog(&catalog, airframe, sensor, compute, algorithm)?;
    let analysis = system.analyze()?;
    println!("{analysis}");

    if let Some(distance) = args.mission_m {
        let mission = analyze_mission(&system, &MissionSpec::over(Meters::new(distance)))?;
        println!(
            "mission {distance:.0} m: {:.1} at {:.2} using {:.1} Wh \
             (bottleneck penalty: {:+.1}% time, {:+.1}% energy)",
            mission.at_cruise.duration.to_minutes(),
            mission.cruise,
            mission.at_cruise.energy_wh,
            mission.time_penalty_percent(),
            mission.energy_penalty_percent(),
        );
    }

    if args.chart {
        let roofline = system.roofline()?;
        let rates = system.stage_rates()?;
        let op = OperatingPoint {
            label: format!("{algorithm} @ {:.1}", rates.compute()),
            rate: rates.compute(),
            velocity: roofline.velocity_at(rates.action_throughput()),
        };
        let chart = roofline_chart(
            &format!("{airframe} / {compute} / {algorithm}"),
            &[(airframe.clone(), roofline)],
            &[op],
            Hertz::new(0.5),
            Hertz::new(1000.0),
        )?;
        println!("{}", chart.render_ascii(100, 28)?);
    }
    Ok(())
}
