//! `skyline` — the paper's interactive tool as a CLI.
//!
//! ```sh
//! # list everything in the paper's catalog
//! cargo run -p f1-skyline --bin skyline -- --list
//!
//! # analyze a build (the §VI-B study)
//! cargo run -p f1-skyline --bin skyline -- \
//!     --airframe "AscTec Pelican" --sensor "RGB-D 60FPS" \
//!     --compute "Nvidia TX2" --algorithm "DroNet" --chart --mission 1000
//!
//! # a four-objective DSE query under a TDP budget, on a synthesized
//! # 10⁴-candidate catalog, exporting the result set and demonstrating
//! # the session plan cache
//! cargo run -p f1-skyline --bin skyline -- --dse --synth 22 \
//!     --objectives velocity,tdp,payload,energy --max-tdp 20 \
//!     --top-k 10 --json out.json --repeat 3
//!
//! # the same query at 10⁷ candidates (216³ per airframe): past ~2M
//! # candidates the session streams automatically — only the Pareto
//! # frontier, bounded top-k and accounting are kept, in ~1 s release
//! cargo run --release -p f1-skyline --bin skyline -- --dse --synth 216 \
//!     --objectives velocity,tdp,payload,energy --keep-points frontier \
//!     --top-k 10
//!
//! # evolve the catalog with JSON deltas (see CatalogDelta::from_json
//! # for the schema): each --delta publishes a new epoch, and the
//! # session repairs the cached result incrementally instead of
//! # re-running the full pass
//! cargo run -p f1-skyline --bin skyline -- --dse --synth 22 \
//!     --delta retire_tx2.json --delta add_orin.json
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use f1_components::{Catalog, CatalogDelta, CatalogStore};
use f1_skyline::chart::{roofline_chart, OperatingPoint};
use f1_skyline::mission::{analyze_mission, MissionSpec};
use f1_skyline::plan::{KeepPoints, QueryPlan};
use f1_skyline::query::{Constraint, Objective};
use f1_skyline::session::{ResultSet, Session};
use f1_skyline::UavSystem;
use f1_units::{Hertz, Meters, Watts};

/// Seed for `--synth` catalogs, fixed so runs are reproducible.
const SYNTH_SEED: u64 = 42;

struct Args {
    airframe: Option<String>,
    sensor: Option<String>,
    compute: Option<String>,
    algorithm: Option<String>,
    list: bool,
    chart: bool,
    dse: bool,
    dse_top: usize,
    mission_m: Option<f64>,
    objectives: Vec<Objective>,
    max_tdp: Option<f64>,
    battery: Option<String>,
    synth: Option<usize>,
    keep_points: Option<KeepPoints>,
    chunk_size: Option<usize>,
    top_k: Option<usize>,
    json: Option<String>,
    repeat: usize,
    deltas: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        airframe: None,
        sensor: None,
        compute: None,
        algorithm: None,
        list: false,
        chart: false,
        dse: false,
        dse_top: 5,
        mission_m: None,
        objectives: Vec::new(),
        max_tdp: None,
        battery: None,
        synth: None,
        keep_points: None,
        chunk_size: None,
        top_k: None,
        json: None,
        repeat: 1,
        deltas: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--airframe" => args.airframe = Some(value("--airframe")?),
            "--sensor" => args.sensor = Some(value("--sensor")?),
            "--compute" => args.compute = Some(value("--compute")?),
            "--algorithm" => args.algorithm = Some(value("--algorithm")?),
            "--battery" => args.battery = Some(value("--battery")?),
            "--mission" => {
                let v = value("--mission")?;
                args.mission_m = Some(
                    v.parse()
                        .map_err(|_| format!("bad mission distance {v:?}"))?,
                );
            }
            "--list" => args.list = true,
            "--chart" => args.chart = true,
            "--dse" => args.dse = true,
            "--dse-top" => {
                let v = value("--dse-top")?;
                args.dse_top = v
                    .parse()
                    .map_err(|_| format!("bad --dse-top count {v:?}"))?;
            }
            "--top-k" => {
                let v = value("--top-k")?;
                let n: usize = v.parse().map_err(|_| format!("bad --top-k count {v:?}"))?;
                if n == 0 {
                    return Err("--top-k must be at least 1".into());
                }
                args.top_k = Some(n);
            }
            "--json" => args.json = Some(value("--json")?),
            "--delta" => args.deltas.push(value("--delta")?),
            "--repeat" => {
                let v = value("--repeat")?;
                let n: usize = v.parse().map_err(|_| format!("bad --repeat count {v:?}"))?;
                if n == 0 {
                    return Err("--repeat must be at least 1".into());
                }
                args.repeat = n;
            }
            "--objectives" => {
                let v = value("--objectives")?;
                args.objectives = v
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--max-tdp" => {
                let v = value("--max-tdp")?;
                args.max_tdp = Some(
                    v.parse()
                        .map_err(|_| format!("bad --max-tdp watts {v:?}"))?,
                );
            }
            "--chunk-size" => {
                let v = value("--chunk-size")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --chunk-size count {v:?}"))?;
                if n == 0 {
                    return Err("--chunk-size must be at least 1".into());
                }
                args.chunk_size = Some(n);
            }
            "--synth" => {
                let v = value("--synth")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --synth family size {v:?}"))?;
                if n == 0 {
                    return Err("--synth needs at least 1 part per family".into());
                }
                args.synth = Some(n);
            }
            "--keep-points" => {
                let v = value("--keep-points")?;
                args.keep_points = Some(match v.as_str() {
                    "auto" => KeepPoints::Auto,
                    "all" => KeepPoints::All,
                    "frontier" => KeepPoints::FrontierOnly,
                    _ => return Err(format!("bad --keep-points mode {v:?} (auto|all|frontier)")),
                });
            }
            "--help" | "-h" => {
                println!(
                    "skyline — F-1 bottleneck analysis for UAV onboard compute\n\n\
                     usage:\n  skyline --list\n  skyline --dse [--airframe NAME] [--dse-top N]\n\
                     \x20         [--objectives velocity,tdp,payload,energy,endurance]\n\
                     \x20         [--max-tdp WATTS] [--battery NAME] [--synth N_PER_FAMILY]\n\
                     \x20         [--keep-points auto|all|frontier] [--chunk-size N]\n\
                     \x20         [--top-k N] [--json PATH] [--repeat N] [--delta FILE ...]\n\
                     \x20 skyline --airframe NAME --sensor NAME --compute NAME \
                     --algorithm NAME [--chart] [--mission METERS]\n\n\
                     --objectives: comma-separated; the first is the primary ranking \
                     objective.\n--synth N: explore a deterministic synthetic catalog with \
                     N parts per family\n  (N³ candidates per airframe) instead of the \
                     paper catalog.\n--battery NAME: mount a catalog battery (required \
                     for the endurance objective).\n--keep-points: point materialization \
                     — auto (default: stream past ~2M\n  candidates), all (always \
                     materialize), frontier (always stream:\n  frontier + top-k only, \
                     bounded memory).\n--chunk-size N: pin the parallel \
                     evaluation chunk size (default: autotuned\n  from the job count and \
                     core count).\n--top-k N: also print the overall best N builds via \
                     the bounded-heap\n  selection (no full ranking sort).\n--json PATH: \
                     export the columnar result set as JSON.\n--repeat N: run the compiled \
                     plan N times through one session to\n  demonstrate plan-cache hits.\n\
                     --delta FILE: apply a JSON catalog delta (add/retire parts, patch\n\
                     \x20 throughputs) publishing a new epoch, then repair the cached\n\
                     \x20 result incrementally instead of re-running the full pass; repeat\n\
                     \x20 the flag to stack epochs. The final report reflects the last\n\
                     \x20 epoch."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn list_catalog(catalog: &Catalog) {
    println!("airframes:");
    for a in catalog.airframes() {
        println!("  {a}");
    }
    println!("sensors:");
    for s in catalog.sensors() {
        println!("  {s}");
    }
    println!("compute platforms:");
    for c in catalog.computes() {
        println!("  {c}");
    }
    println!("algorithms:");
    for a in catalog.algorithms() {
        println!("  {a}");
    }
    println!("characterized throughputs:");
    for (p, a, f) in catalog.matrix().iter() {
        println!("  {a} on {p}: {f:.2}");
    }
}

fn human_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.1} µs", ns as f64 / 1e3)
    }
}

fn describe_point(catalog: &Catalog, result: &ResultSet, index: usize) -> String {
    let point = result.point(index);
    let parts = format!(
        "{:<18} + {:<18} + {:<26}",
        catalog.sensor_by_id(point.candidate.sensor).name(),
        catalog.compute_by_id(point.candidate.compute).name(),
        catalog.algorithm_by_id(point.candidate.algorithm).name(),
    );
    let values = result
        .row(index)
        .iter()
        .zip(result.objectives())
        .map(|(v, o)| format!("{v:>8.2} {}", o.unit()))
        .collect::<Vec<_>>()
        .join("  ");
    let setting = if point.setting.is_identity() {
        String::new()
    } else {
        format!("  [{}]", point.setting.describe())
    };
    format!("{parts} {values}{setting}")
}

/// Compiles the CLI request into a `QueryPlan`, executes it through a
/// `Session` (optionally `--repeat`ed to exercise the plan cache), and
/// prints the ranked report plus the Pareto frontier over the requested
/// objectives.
fn dse_report(catalog: &Arc<Catalog>, args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let mut builder = QueryPlan::builder();
    if !args.objectives.is_empty() {
        builder = builder.objectives(&args.objectives);
    }
    if let Some(name) = args.airframe.as_deref() {
        // One airframe: explore just that slice of the design space
        // (failing loudly on a typo'd name instead of printing nothing).
        builder = builder.airframes(&[catalog.airframe_id(name).map_err(|e| e.to_string())?]);
    }
    if let Some(watts) = args.max_tdp {
        builder = builder.constraint(Constraint::MaxTotalTdp(Watts::new(watts)));
    }
    if let Some(name) = args.battery.as_deref() {
        builder = builder.battery(catalog.battery_id(name).map_err(|e| e.to_string())?);
    }
    if let Some(keep_points) = args.keep_points {
        builder = builder.keep_points(keep_points);
    }
    // Stringify so a failed build/run prints its Display form, not Debug.
    let plan = builder.build().map_err(|e| e.to_string())?;

    let store = Arc::new(CatalogStore::from_shared(Arc::clone(catalog)));
    let mut session = Session::over(Arc::clone(&store));
    if let Some(chunk_size) = args.chunk_size {
        session = session.with_chunk_size(chunk_size);
    }
    let mut timings: Vec<Duration> = Vec::with_capacity(args.repeat);
    let mut result = None;
    for _ in 0..args.repeat {
        let start = Instant::now();
        result = Some(session.run(&plan).map_err(|e| e.to_string())?);
        timings.push(start.elapsed());
    }
    let mut result = result.expect("--repeat is at least 1");

    // Each --delta publishes a new catalog epoch; the session repairs
    // the cached result across it instead of re-running the full pass.
    for path in &args.deltas {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read delta {path}: {e}"))?;
        let delta = CatalogDelta::from_json(&text).map_err(|e| e.to_string())?;
        let snapshot = store.apply(&delta).map_err(|e| e.to_string())?;
        let start = Instant::now();
        result = session.refresh(&plan).map_err(|e| e.to_string())?;
        println!(
            "delta {path}: {} ops -> {} (digest {:016x}), result refreshed in {} \
             ({} incremental repairs so far)",
            delta.op_count(),
            snapshot.epoch(),
            snapshot.digest(),
            human_duration(start.elapsed()),
            session.cache_stats().repairs,
        );
    }
    let catalog = &session.catalog();
    let objectives = result.objectives();
    let primary = objectives[0];

    println!(
        "query @ {} (digest {:016x}): {} objectives ({} primary), {} points kept, \
         {} dropped by constraints, {} feasible with non-finite objectives (off-frontier)",
        session.epoch(),
        store.current().digest(),
        objectives.len(),
        primary,
        result.len(),
        result.dropped(),
        result.nonfinite(),
    );
    if let Some(stored) = result.stored_indices() {
        println!(
            "streamed: {} of {} points stored (frontier ∪ top-{}), the rest reduced \
             shard-by-shard",
            stored.len(),
            result.len(),
            f1_skyline::shard::STREAM_TOP_K,
        );
    }
    let stats = session.cache_stats();
    if args.repeat > 1 {
        let cached_avg = timings[1..]
            .iter()
            .sum::<Duration>()
            .div_f64((args.repeat - 1) as f64);
        println!(
            "plan cache: run 1 computed in {}, runs 2-{} served from cache in {} avg \
             ({} hits / {} misses, {} entries; key {:.48}…)",
            human_duration(timings[0]),
            args.repeat,
            human_duration(cached_avg),
            stats.hits,
            stats.misses,
            stats.entries,
            plan.key(),
        );
    }

    let ranked = result.ranked();
    for (airframe_id, airframe) in catalog.airframe_entries() {
        let per_airframe: Vec<usize> = ranked
            .iter()
            .copied()
            .filter(|&i| result.point(i).airframe == airframe_id)
            .collect();
        if per_airframe.is_empty() {
            continue;
        }
        let feasible = per_airframe
            .iter()
            .filter(|&&i| result.point(i).outcome.feasible)
            .count();
        println!(
            "━━ {}: {} candidates ({} feasible, {} uncharacterized pairs skipped) ━━",
            airframe.name(),
            per_airframe.len(),
            feasible,
            result.uncharacterized(),
        );
        for &index in per_airframe.iter().take(args.dse_top) {
            let verdict = if result.point(index).outcome.feasible {
                describe_point(catalog, &result, index)
            } else {
                format!("{} cannot hover", describe_point(catalog, &result, index))
            };
            println!("  {verdict}");
        }
    }

    if let Some(k) = args.top_k {
        println!("top {k} overall by {primary} (bounded-heap top_k, no full sort):");
        for index in result.top_k(k) {
            let airframe = catalog.airframe_by_id(result.point(index).airframe).name();
            println!(
                "  {airframe:<18} {}",
                describe_point(catalog, &result, index)
            );
        }
    }

    println!(
        "Pareto frontier over ({}):",
        objectives
            .iter()
            .map(|o| format!("{o} {}", if o.maximize() { "↑" } else { "↓" }))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for &index in result.frontier() {
        let airframe = catalog.airframe_by_id(result.point(index).airframe).name();
        println!(
            "  {airframe:<18} {}",
            describe_point(catalog, &result, index)
        );
    }

    if let Some(path) = args.json.as_deref() {
        std::fs::write(path, result.to_json(catalog))?;
        println!(
            "wrote {} points ({} objective columns) to {path}",
            result.len(),
            objectives.len()
        );
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| -> Box<dyn std::error::Error> { e.into() })?;
    let catalog = Arc::new(match args.synth {
        Some(n_per_family) => Catalog::synthesize(SYNTH_SEED, n_per_family),
        None => Catalog::paper(),
    });
    if args.list {
        list_catalog(&catalog);
        return Ok(());
    }
    if args.dse {
        return dse_report(&catalog, &args);
    }
    let (Some(airframe), Some(sensor), Some(compute), Some(algorithm)) =
        (&args.airframe, &args.sensor, &args.compute, &args.algorithm)
    else {
        return Err("need --airframe, --sensor, --compute and --algorithm (or --list)".into());
    };
    let system = UavSystem::from_catalog(&catalog, airframe, sensor, compute, algorithm)?;
    let analysis = system.analyze()?;
    println!("{analysis}");

    if let Some(distance) = args.mission_m {
        let mission = analyze_mission(&system, &MissionSpec::over(Meters::new(distance)))?;
        println!(
            "mission {distance:.0} m: {:.1} at {:.2} using {:.1} Wh \
             (bottleneck penalty: {:+.1}% time, {:+.1}% energy)",
            mission.at_cruise.duration.to_minutes(),
            mission.cruise,
            mission.at_cruise.energy_wh,
            mission.time_penalty_percent(),
            mission.energy_penalty_percent(),
        );
    }

    if args.chart {
        let roofline = system.roofline()?;
        let rates = system.stage_rates()?;
        let op = OperatingPoint {
            label: format!("{algorithm} @ {:.1}", rates.compute()),
            rate: rates.compute(),
            velocity: roofline.velocity_at(rates.action_throughput()),
        };
        let chart = roofline_chart(
            &format!("{airframe} / {compute} / {algorithm}"),
            &[(airframe.clone(), roofline)],
            &[op],
            Hertz::new(0.5),
            Hertz::new(1000.0),
        )?;
        println!("{}", chart.render_ascii(100, 28)?);
    }
    Ok(())
}
