//! Incremental re-query: repairing a cached [`ResultSet`] across a
//! catalog delta instead of re-evaluating 10⁵ candidates from scratch.
//!
//! [`Session::refresh`](crate::Session::refresh) calls into this module
//! when it holds a result computed at an older [`CatalogEpoch`] than the
//! store's current one. The repair exploits the store's id-stability
//! contract (adds append fresh ids, retirements tombstone in place, part
//! records are immutable once added):
//!
//! * **Survivors** — candidates whose four parts are active at both
//!   epochs and whose platform × algorithm throughput is unchanged —
//!   evaluate to bit-identical outcomes, so their cached rows are copied
//!   verbatim.
//! * **Retired** candidates are masked out of the merged result.
//! * **Net-new** candidates (any fresh part, or a re-characterized /
//!   newly characterized throughput pair) are the only ones evaluated,
//!   through the same fused parallel pass as a cold run — as a handful
//!   of cross-product *slabs* that exactly tile `new-space ∖ survivors`.
//! * The merged point list is reassembled in the **new epoch's
//!   enumeration order**, and the new frontier is obtained by merging
//!   the incremental skyline of the delta points into the cached
//!   frontier (`frontier(S ∪ D) = frontier(frontier(S) ∪ frontier(D))`,
//!   exact including ties). If a retirement removed a cached frontier
//!   point, the survivor frontier is recomputed over the survivors
//!   first — still without re-running any physics.
//!
//! The result is **bit-identical** to a cold run at the new epoch
//! (property-tested in `tests/delta_repair.rs`), at a small fraction of
//! the cost for small deltas.

use std::sync::Arc;

use f1_components::{AirframeId, AlgorithmId, ComputeId, SensorId, ThroughputTable};

use crate::frontier;
use crate::plan::QueryPlan;
use crate::query::{KnobSetting, Objective, QueryPoint};
use crate::session::{run_plans, EpochState, PassContext, PointRef, ResultSet};
use crate::SkylineError;

/// Outcome of a repair attempt.
pub(crate) enum Repair {
    /// The delta does not intersect the plan's design space: the cached
    /// result is the current-epoch answer as-is.
    Unchanged,
    /// The repaired result — bit-identical to a cold run at the new
    /// epoch. Boxed: a `ResultSet` (columns + segments + streamed meta)
    /// dwarfs the other variants.
    Repaired(Box<ResultSet>),
    /// Repair is not applicable to this plan (e.g. duplicate subspace
    /// ids make the enumeration mapping ambiguous); run cold.
    Cold,
}

/// How one component family's slice of the plan's subspace moved
/// between the two epochs. All lists are raw dense indices, in the
/// enumeration order of their epoch (plan order for explicit
/// subspaces, name order for defaults); retained ids keep their
/// relative order in both, which is what makes the merge a linear
/// two-pointer pass.
struct FamilyDelta {
    /// The new epoch's enumeration list.
    new_list: Vec<u32>,
    /// id → position in `new_list` (indexed over the new id space).
    new_pos: Vec<Option<u32>>,
    /// Ids enumerated at the new epoch but not the old (appended parts).
    fresh: Vec<u32>,
    /// Ids enumerated at both epochs, in new-list order.
    retained: Vec<u32>,
    /// Whether any old-epoch id left the enumeration (a retirement
    /// intersecting the plan's subspace).
    lost_any: bool,
    /// Duplicate ids in the enumeration make position mapping
    /// ambiguous — bail to a cold run.
    ambiguous: bool,
}

// analyze::allow(indexing, scope = "fn", reason = "membership tables are sized to the full id space (new_space), which bounds every id")
fn family_delta(
    plan_list: Option<Vec<u32>>,
    old_default: &[u32],
    new_default: &[u32],
    old_active: impl Fn(u32) -> bool,
    new_active: impl Fn(u32) -> bool,
    new_space: usize,
) -> FamilyDelta {
    let (old_list, new_list): (Vec<u32>, Vec<u32>) = match plan_list {
        Some(list) => (
            list.iter().copied().filter(|&id| old_active(id)).collect(),
            list.iter().copied().filter(|&id| new_active(id)).collect(),
        ),
        None => (old_default.to_vec(), new_default.to_vec()),
    };
    let mut old_member = vec![false; new_space];
    for &id in &old_list {
        old_member[id as usize] = true;
    }
    let mut new_pos: Vec<Option<u32>> = vec![None; new_space];
    let mut ambiguous = false;
    for (pos, &id) in new_list.iter().enumerate() {
        if new_pos[id as usize].is_some() {
            ambiguous = true;
        }
        new_pos[id as usize] = Some(pos as u32);
    }
    let fresh = new_list
        .iter()
        .copied()
        .filter(|&id| !old_member[id as usize])
        .collect();
    let retained = new_list
        .iter()
        .copied()
        .filter(|&id| old_member[id as usize])
        .collect();
    let lost_any = old_list.iter().any(|&id| new_pos[id as usize].is_none());
    FamilyDelta {
        new_list,
        new_pos,
        fresh,
        retained,
        lost_any,
        ambiguous,
    }
}

/// Arithmetic index of the new epoch's candidate enumeration (the
/// sensor-major, compute-middle, algorithm-minor nesting of the fused
/// pass, filtered to characterized pairs): position lookups are a few
/// array reads, no hashing — the repair touches every surviving point
/// once, so this is the hot loop.
struct CandIndex {
    /// `(compute position × algo-count + algo position)` → rank among
    /// the compute's characterized algorithms.
    rank: Vec<Option<u32>>,
    /// Start offset of each compute block within one sensor block.
    prefix: Vec<u32>,
    /// Characterized pairs per sensor block.
    per_sensor: u32,
    algo_count: usize,
}

impl CandIndex {
    // analyze::allow(indexing, scope = "fn", reason = "rank/prefix are sized computes*algos and computes; j and a come from enumerate()")
    fn build(table: &ThroughputTable, computes: &[u32], algorithms: &[u32]) -> Self {
        let algo_count = algorithms.len();
        let mut rank = vec![None; computes.len() * algo_count];
        let mut prefix = vec![0u32; computes.len()];
        let mut total = 0u32;
        for (j, &c) in computes.iter().enumerate() {
            prefix[j] = total;
            let mut r = 0u32;
            for (a, &g) in algorithms.iter().enumerate() {
                if table
                    .get(
                        ComputeId::from_index(c as usize),
                        AlgorithmId::from_index(g as usize),
                    )
                    .is_some()
                {
                    rank[j * algo_count + a] = Some(r);
                    r += 1;
                }
            }
            total += r;
        }
        Self {
            rank,
            prefix,
            per_sensor: total,
            algo_count,
        }
    }

    // analyze::allow(indexing, scope = "fn", reason = "rank and prefix were sized for every (compute_pos, algo_pos) by build()")
    fn pos(&self, sensor_pos: u32, compute_pos: u32, algo_pos: u32) -> Option<u64> {
        let r = self.rank[compute_pos as usize * self.algo_count + algo_pos as usize]?;
        Some(
            u64::from(sensor_pos) * u64::from(self.per_sensor)
                + u64::from(self.prefix[compute_pos as usize])
                + u64::from(r),
        )
    }
}

/// Everything needed to place an evaluated point into the new epoch's
/// global job order.
struct NewOrder<'a> {
    airframes: &'a FamilyDelta,
    sensors: &'a FamilyDelta,
    computes: &'a FamilyDelta,
    algorithms: &'a FamilyDelta,
    cand: CandIndex,
    settings: &'a [KnobSetting],
    /// Jobs per airframe block (`settings × candidates`).
    per_airframe: u64,
    /// Candidates per setting block.
    n_cand: u64,
}

impl NewOrder<'_> {
    /// The point's job index in the new epoch's enumeration, or `None`
    /// when the point is no longer enumerated (a part retired or the
    /// pair no longer characterized).
    // analyze::allow(indexing, scope = "fn", reason = "new_pos tables are sized to the full id space; part indices are catalog ids")
    fn job_of(&self, point: &QueryPoint) -> Option<u64> {
        let a = self.airframes.new_pos[point.airframe.index()]?;
        let s = self.sensors.new_pos[point.candidate.sensor.index()]?;
        let c = self.computes.new_pos[point.candidate.compute.index()]?;
        let g = self.algorithms.new_pos[point.candidate.algorithm.index()]?;
        let setting = self.settings.iter().position(|x| x == &point.setting)? as u64;
        let cand = self.cand.pos(s, c, g)?;
        Some(u64::from(a) * self.per_airframe + setting * self.n_cand + cand)
    }
}

fn raw<T: Copy>(ids: &[T], index: impl Fn(T) -> usize) -> Vec<u32> {
    ids.iter().map(|&id| index(id) as u32).collect()
}

/// One delta point awaiting its slot in the merge: the new-epoch job
/// index, the slab that evaluated it, and its index there.
struct DeltaPoint {
    job: u64,
    slab: u32,
    idx: u32,
}

/// Builds a plan identical to `plan` except restricted to one
/// cross-product slab of the delta space.
fn slab_plan(
    plan: &QueryPlan,
    airframes: &[u32],
    sensors: &[u32],
    computes: &[u32],
    algorithms: &[u32],
) -> Result<QueryPlan, SkylineError> {
    let mut builder = QueryPlan::builder()
        .objectives(plan.objectives())
        .mission_profile(plan.mission_profile())
        .airframes(&raw_ids::<AirframeId>(airframes))
        .sensors(&raw_ids::<SensorId>(sensors))
        .computes(&raw_ids::<ComputeId>(computes))
        .algorithms(&raw_ids::<AlgorithmId>(algorithms));
    for &constraint in plan.constraints() {
        builder = builder.constraint(constraint);
    }
    for sweep in plan.sweeps() {
        builder = builder.sweep(sweep.clone());
    }
    if let Some(battery) = plan.battery() {
        builder = builder.battery(battery);
    }
    builder.build()
}

fn raw_ids<T: From<RawId>>(ids: &[u32]) -> Vec<T> {
    ids.iter().map(|&id| T::from(RawId(id))).collect()
}

/// Adapter so `raw_ids` can mint each typed id family from a raw dense
/// index through one generic path.
struct RawId(u32);

macro_rules! raw_id_from {
    ($($ty:ty),*) => {$(
        impl From<RawId> for $ty {
            fn from(raw: RawId) -> Self {
                Self::from_index(raw.0 as usize)
            }
        }
    )*};
}
raw_id_from!(AirframeId, SensorId, ComputeId, AlgorithmId);

/// The skyline over a subset of merged points (merged indices in,
/// merged indices out). Infeasible points and non-finite rows are
/// excluded, mirroring [`ResultSet::minimized_keys`].
// analyze::allow(indexing, scope = "fn", reason = "m indexes row-aligned columns; frontier indices map back through `map`, built alongside keys")
fn skyline_of(
    indices: &[u32],
    feasible: &impl Fn(u32) -> bool,
    columns: &[Vec<f64>],
    objectives: &[Objective],
) -> Vec<u32> {
    let dims = objectives.len();
    let mut keys = Vec::with_capacity(indices.len() * dims);
    let mut map = Vec::with_capacity(indices.len());
    'points: for &m in indices {
        if !feasible(m) {
            continue;
        }
        let m = m as usize;
        for column in columns {
            if !column[m].is_finite() {
                continue 'points;
            }
        }
        map.push(m as u32);
        keys.extend(columns.iter().zip(objectives).map(
            |(c, o)| {
                if o.maximize() {
                    -c[m]
                } else {
                    c[m]
                }
            },
        ));
    }
    frontier::pareto_min(dims, &keys)
        .into_iter()
        .map(|i| map[i])
        .collect()
}

/// Repairs `cached` (computed at `old`) into the result the same plan
/// produces at `new` — see the [module docs](self).
// analyze::allow(indexing, scope = "fn", reason = "merge kernel: slab, survivor and delta indices are constructed in-range by the enumeration and run-length loops")
// analyze::allow(panic, scope = "fn", reason = "merge invariants (one result per slab plan, new-epoch enumeration covers slab points, delta counts fit u32/usize) hold by construction")
pub(crate) fn repair_result(
    old: &EpochState,
    new: &EpochState,
    ctx: &PassContext<'_>,
    plan: &QueryPlan,
    cached: &ResultSet,
) -> Result<Repair, SkylineError> {
    let settings = plan.settings();
    // Duplicate settings would make the setting → slot mapping
    // ambiguous. `PlanBuilder::build` canonicalizes them away, so this
    // is dead defense against hand-round-tripped keys, not a live path.
    if settings
        .iter()
        .enumerate()
        .any(|(i, s)| settings[..i].contains(s))
    {
        return Ok(Repair::Cold);
    }
    let old_cat = old.catalog();
    let new_cat = new.catalog();
    let airframes = family_delta(
        plan.airframes().map(|ids| raw(ids, AirframeId::index)),
        &raw(&old.airframes, AirframeId::index),
        &raw(&new.airframes, AirframeId::index),
        |id| old_cat.airframe_is_active(AirframeId::from_index(id as usize)),
        |id| new_cat.airframe_is_active(AirframeId::from_index(id as usize)),
        new_cat.airframe_count(),
    );
    let sensors = family_delta(
        plan.sensors().map(|ids| raw(ids, SensorId::index)),
        &raw(&old.sensors, SensorId::index),
        &raw(&new.sensors, SensorId::index),
        |id| old_cat.sensor_is_active(SensorId::from_index(id as usize)),
        |id| new_cat.sensor_is_active(SensorId::from_index(id as usize)),
        new_cat.sensor_count(),
    );
    let computes = family_delta(
        plan.computes().map(|ids| raw(ids, ComputeId::index)),
        &raw(&old.computes, ComputeId::index),
        &raw(&new.computes, ComputeId::index),
        |id| old_cat.compute_is_active(ComputeId::from_index(id as usize)),
        |id| new_cat.compute_is_active(ComputeId::from_index(id as usize)),
        new_cat.compute_count(),
    );
    let algorithms = family_delta(
        plan.algorithms().map(|ids| raw(ids, AlgorithmId::index)),
        &raw(&old.algorithms, AlgorithmId::index),
        &raw(&new.algorithms, AlgorithmId::index),
        |id| old_cat.algorithm_is_active(AlgorithmId::from_index(id as usize)),
        |id| new_cat.algorithm_is_active(AlgorithmId::from_index(id as usize)),
        new_cat.algorithm_count(),
    );
    if airframes.ambiguous || sensors.ambiguous || computes.ambiguous || algorithms.ambiguous {
        return Ok(Repair::Cold);
    }

    // Throughput pairs among retained parts whose characterization
    // changed (patched value, or newly characterized): their candidates
    // must be re-evaluated, grouped per compute so each group is a
    // cross-product slab.
    let mut changed: Vec<(u32, Vec<u32>)> = Vec::new();
    for &c in &computes.retained {
        let cid = ComputeId::from_index(c as usize);
        let algos: Vec<u32> = algorithms
            .retained
            .iter()
            .copied()
            .filter(|&g| {
                let gid = AlgorithmId::from_index(g as usize);
                match new.table.get(cid, gid) {
                    Some(value) => old.table.get(cid, gid) != Some(value),
                    None => false,
                }
            })
            .collect();
        if !algos.is_empty() {
            changed.push((c, algos));
        }
    }

    let untouched = [&airframes, &sensors, &computes, &algorithms]
        .iter()
        .all(|f| f.fresh.is_empty() && !f.lost_any)
        && changed.is_empty();
    if untouched {
        return Ok(Repair::Unchanged);
    }

    // A streamed result holds only its frontier ∪ top-k rows: there is
    // no full point store to splice fresh slabs into, and a fresh point
    // can evict arbitrary stored rows from both bounded sets. Delta
    // repair for a *touched* epoch therefore re-streams cold (the
    // streaming pass is the one sized for its catalogs); an untouched
    // epoch short-circuits to `Unchanged` above, which covers the
    // common refresh loop.
    if cached.is_streamed() {
        return Ok(Repair::Cold);
    }

    let cand = CandIndex::build(ctx.table, &computes.new_list, &algorithms.new_list);
    let n_cand = sensors.new_list.len() as u64 * u64::from(cand.per_sensor);
    let per_airframe = settings.len() as u64 * n_cand;
    let jobs_total = airframes.new_list.len() as u64 * per_airframe;
    let uncharacterized = sensors.new_list.len()
        * (computes.new_list.len() * algorithms.new_list.len() - cand.per_sensor as usize);
    let order = NewOrder {
        airframes: &airframes,
        sensors: &sensors,
        computes: &computes,
        algorithms: &algorithms,
        cand,
        settings,
        per_airframe,
        n_cand,
    };

    // The delta slabs exactly tile `new-space ∖ (retained × retained ×
    // retained × retained-with-unchanged-throughput)` as disjoint cross
    // products, so every non-survivor candidate is evaluated exactly
    // once and through the same fused pass as a cold run.
    type SlabSpec<'s> = (&'s [u32], &'s [u32], &'s [u32], &'s [u32]);
    let mut specs: Vec<SlabSpec<'_>> = vec![
        (
            &airframes.fresh,
            &sensors.new_list,
            &computes.new_list,
            &algorithms.new_list,
        ),
        (
            &airframes.retained,
            &sensors.fresh,
            &computes.new_list,
            &algorithms.new_list,
        ),
        (
            &airframes.retained,
            &sensors.retained,
            &computes.fresh,
            &algorithms.new_list,
        ),
        (
            &airframes.retained,
            &sensors.retained,
            &computes.retained,
            &algorithms.fresh,
        ),
    ];
    let changed_slabs: Vec<(Vec<u32>, &Vec<u32>)> =
        changed.iter().map(|(c, algos)| (vec![*c], algos)).collect();
    for (c, algos) in &changed_slabs {
        specs.push((&airframes.retained, &sensors.retained, c, algos));
    }
    let mut slabs: Vec<ResultSet> = Vec::new();
    for (a, s, c, g) in specs {
        if a.is_empty() || s.is_empty() || c.is_empty() || g.is_empty() {
            continue;
        }
        let slab = slab_plan(plan, a, s, c, g)?;
        // Small slabs (the typical patched-pair case: one compute × a
        // few algorithms) run serially: a single chunk skips the
        // worker-thread spawn entirely, whose overhead would otherwise
        // dominate a ≤1% repair. Large slabs keep the autotuned
        // parallel pass.
        let job_bound = a.len() * s.len() * c.len() * g.len() * settings.len();
        let slab_ctx = PassContext {
            chunk_size: if job_bound <= 4096 {
                Some(job_bound.max(1))
            } else {
                ctx.chunk_size
            },
            ..*ctx
        };
        let mut results = run_plans(&slab_ctx, &[&slab], false)?;
        slabs.push(results.pop().expect("one slab plan in, one result out"));
    }

    // Collect and order the delta points by their slot in the new
    // enumeration. Each slab's own enumeration is already ascending in
    // the global order, but slabs interleave, so one sort over the
    // (small) delta set is the simplest exact merge key.
    let mut delta: Vec<DeltaPoint> = Vec::new();
    for (slab_pos, slab) in slabs.iter().enumerate() {
        for idx in 0..slab.len() {
            let job = order
                .job_of(slab.point(idx))
                .expect("slab points are enumerated at the new epoch");
            delta.push(DeltaPoint {
                job,
                slab: slab_pos as u32,
                idx: idx as u32,
            });
        }
    }
    delta.sort_unstable_by_key(|d| d.job);

    // Classify the cached points: survivors keep all parts enumerated
    // AND their throughput pair unchanged (a changed pair re-evaluates
    // through its slab). Survivors come out in ascending new-enumeration
    // order — retained ids keep their relative order, so the cached
    // order IS the new order restricted to survivors. `nonfinite` is
    // maintained by *subtracting* the dead points' contribution from the
    // cached count (deaths are the small set; a full recount would
    // rescan every column).
    let dims = plan.objectives().len();
    let mut survivors: Vec<(u32, u64)> = Vec::with_capacity(cached.len());
    let mut nonfinite = cached.nonfinite();
    let mut last_job = None::<u64>;
    for i in 0..cached.len() {
        let point = cached.point(i);
        let alive = ctx
            .table
            .get(point.candidate.compute, point.candidate.algorithm)
            == Some(point.candidate.throughput);
        let job = if alive { order.job_of(point) } else { None };
        match job {
            Some(job) => {
                debug_assert!(last_job.map_or(true, |last| last < job), "survivor order");
                last_job = Some(job);
                survivors.push((i as u32, job));
            }
            None => {
                if point.outcome.feasible && (0..dims).any(|pos| !cached.column(pos)[i].is_finite())
                {
                    nonfinite -= 1;
                }
            }
        }
    }

    // Linear merge into the new enumeration order. The surviving
    // point rows are NOT copied: the merged result's segmented store is
    // `cached`'s segments plus ONE fresh segment gathering the (small)
    // delta set — one segment per repair, not per slab, so chained
    // refreshes reach `refresh`'s compaction threshold by repair count,
    // not by slab count. The merge assembles 8-byte point references
    // (survivor *runs* — maximal stretches of consecutive cached
    // indices with no delta point interleaving — go through bulk
    // extends) plus the f64 columns.
    let capacity = survivors.len() + delta.len();
    let mut segments: Vec<Arc<Vec<QueryPoint>>> = cached.segments().to_vec();
    let cached_segments = segments.len() as u32;
    let mut fresh: Vec<QueryPoint> = Vec::with_capacity(delta.len());
    let mut kept: Vec<PointRef> = Vec::with_capacity(capacity);
    let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(capacity); dims];
    let mut merged_of_cached: Vec<Option<u32>> = vec![None; cached.len()];
    let mut merged_of_delta: Vec<u32> = Vec::with_capacity(delta.len());
    let emit_delta = |dp: &DeltaPoint,
                      kept: &mut Vec<PointRef>,
                      columns: &mut [Vec<f64>],
                      merged_of_delta: &mut Vec<u32>,
                      fresh: &mut Vec<QueryPoint>| {
        let slab = &slabs[dp.slab as usize];
        let idx = dp.idx as usize;
        merged_of_delta.push(kept.len() as u32);
        kept.push(PointRef {
            segment: cached_segments,
            index: u32::try_from(fresh.len()).expect("delta sets stay small"),
        });
        fresh.push(*slab.point(idx));
        for (pos, column) in columns.iter_mut().enumerate() {
            column.push(slab.column(pos)[idx]);
        }
    };
    let (mut si, mut di) = (0usize, 0usize);
    while si < survivors.len() {
        while di < delta.len() && delta[di].job < survivors[si].1 {
            emit_delta(
                &delta[di],
                &mut kept,
                &mut columns,
                &mut merged_of_delta,
                &mut fresh,
            );
            di += 1;
        }
        // Extend the run while cached indices stay consecutive and no
        // pending delta point interposes.
        let limit = delta.get(di).map_or(u64::MAX, |d| d.job);
        debug_assert!(survivors[si].1 != limit, "slabs and survivors are disjoint");
        let run_start = si;
        let first = survivors[si].0;
        while si < survivors.len()
            && survivors[si].1 < limit
            && survivors[si].0 - first == (si - run_start) as u32
        {
            si += 1;
        }
        let (lo, hi) = (first as usize, survivors[si - 1].0 as usize + 1);
        for (offset, slot) in merged_of_cached[lo..hi].iter_mut().enumerate() {
            *slot = Some((kept.len() + offset) as u32);
        }
        kept.extend((lo..hi).map(|i| cached.point_ref(i)));
        for (pos, column) in columns.iter_mut().enumerate() {
            column.extend_from_slice(&cached.column(pos)[lo..hi]);
        }
    }
    while di < delta.len() {
        emit_delta(
            &delta[di],
            &mut kept,
            &mut columns,
            &mut merged_of_delta,
            &mut fresh,
        );
        di += 1;
    }
    if !fresh.is_empty() {
        segments.push(Arc::new(fresh));
    }
    // The slabs' nonfinite accounting transfers verbatim: every slab
    // point entered the merged result.
    nonfinite += slabs.iter().map(ResultSet::nonfinite).sum::<usize>();

    let dropped = usize::try_from(jobs_total).expect("job counts fit usize") - kept.len();

    // Frontier merge. If every cached frontier point survived, the
    // survivor frontier IS the cached frontier (removing dominated
    // points cannot promote others while all their dominators remain);
    // otherwise recompute it over the survivors — still no physics.
    let feasible = |m: u32| -> bool {
        segments[kept[m as usize].segment as usize][kept[m as usize].index as usize]
            .outcome
            .feasible
    };
    let objectives = plan.objectives();
    let all_survive = cached
        .frontier()
        .iter()
        .all(|&i| merged_of_cached[i].is_some());
    let base: Vec<u32> = if all_survive {
        cached
            .frontier()
            .iter()
            .map(|&i| merged_of_cached[i].expect("checked above"))
            .collect()
    } else {
        let survivor_indices: Vec<u32> = merged_of_cached.iter().flatten().copied().collect();
        skyline_of(&survivor_indices, &feasible, &columns, objectives)
    };
    let delta_skyline = skyline_of(&merged_of_delta, &feasible, &columns, objectives);
    // frontier(S ∪ D) = frontier(frontier(S) ∪ frontier(D)): dominance
    // is transitive, so every dominated point has a frontier dominator.
    let mut union = base;
    union.extend(delta_skyline);
    let mut merged_frontier: Vec<usize> = skyline_of(&union, &feasible, &columns, objectives)
        .into_iter()
        .map(|m| m as usize)
        .collect();
    merged_frontier.sort_unstable();

    Ok(Repair::Repaired(Box::new(ResultSet::from_segments(
        objectives.to_vec(),
        segments,
        kept,
        columns,
        merged_frontier,
        uncharacterized,
        dropped,
        nonfinite,
    ))))
}
