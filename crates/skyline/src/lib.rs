//! # `f1-skyline` — the Skyline analysis engine (paper §V)
//!
//! Skyline is the paper's interactive tool over the F-1 model. This crate
//! is its engine:
//!
//! * [`Knobs`] — the user-settable UAV parameters of paper Table II.
//! * [`UavSystem`] — a full UAV assembled from catalog components (or raw
//!   knobs): airframe + sensor + onboard computer(s) + autonomy algorithm;
//!   it derives payload mass (including the TDP-driven heatsink), body
//!   dynamics, stage rates and the F-1 roofline.
//! * [`SystemAnalysis`] — the "Automatic Analysis" pane: bound
//!   classification, knee, design assessment and optimization tips.
//! * [`redundancy`] — N-modular-redundancy what-ifs (paper §VI-C).
//! * [`sweep`] — a crossbeam-parallel parameter sweep engine for
//!   characterization studies (payload sweeps, TDP sweeps, full-system
//!   matrices).
//! * [`chart`] — roofline chart construction on top of `f1-plot`.
//! * [`dse`] — automated design-space exploration over the catalog (the
//!   paper's conclusion proposes exactly this use).
//! * [`query`] — the composable DSE query API: typed objectives,
//!   constraints and Table II knob sweeps compiled onto the engine.
//! * [`plan`] / [`session`] — the compile/execute split for serving:
//!   owned `Send + Sync` [`QueryPlan`]s with canonical cache keys,
//!   executed (and batched into one fused shared pass, and memoized) by
//!   a [`Session`] over an `Arc<Catalog>`, producing columnar
//!   [`ResultSet`]s with bounded-heap top-k and paged iteration.
//! * [`shard`] — the sharded streaming executor: (airframe × knob
//!   setting)-aligned shards evaluated over struct-of-arrays slabs and
//!   reduced to frontier + top-k + accounting without materializing
//!   every point, selected per plan via [`KeepPoints`] — this is what
//!   makes 10⁷-candidate catalogs interactive with bounded memory.
//! * [`frontier`] — O(n log n) sort-and-sweep Pareto skylines.
//! * [`tier2`] — the two-tier evaluation hook: plans may declare
//!   simulation-backed [`SimObjective`]s, evaluated by an installed
//!   [`Tier2Evaluator`] (the `f1-sim` crate) on the tier-1 survivor set
//!   only, with an analytic-vs-simulated rank-agreement
//!   [`VerificationReport`] attached to the result.
//!
//! # Examples
//!
//! ```
//! use f1_components::{names, Catalog};
//! use f1_skyline::UavSystem;
//!
//! let catalog = Catalog::paper();
//! // §VI-B: AscTec Pelican + TX2 running DroNet behind an RGB-D camera.
//! let system = UavSystem::from_catalog(
//!     &catalog,
//!     names::ASCTEC_PELICAN,
//!     names::RGBD_60,
//!     names::TX2,
//!     names::DRONET,
//! )?;
//! let analysis = system.analyze()?;
//! // DroNet on TX2 exceeds the knee: the UAV is physics-bound.
//! assert_eq!(analysis.bound.bound, f1_model::roofline::Bound::Physics);
//! # Ok::<(), f1_skyline::SkylineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod dse;
mod error;
pub mod frontier;
mod knobs;
pub mod mission;
pub mod plan;
pub mod query;
pub mod redundancy;
mod repair;
pub mod report;
pub mod session;
pub mod shard;
pub mod sweep;
mod system;
pub mod tier2;

pub use error::SkylineError;
pub use knobs::{KnobDescription, Knobs};
pub use plan::{KeepPoints, PlanBuilder, QueryPlan, SimObjective};
pub use session::{CacheStats, ResultSet, Session};
pub use system::{Recommendation, SystemAnalysis, UavSystem, UavSystemBuilder};
pub use tier2::{
    SimBlock, SimRow, SimStats, SimUsage, Tier2Context, Tier2Evaluation, Tier2Evaluator,
    VerificationEntry, VerificationReport,
};
