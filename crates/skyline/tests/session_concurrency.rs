//! Concurrency stress: one shared `Session` hammered from many threads
//! with overlapping `run`, `run_at`, `run_batch` and `refresh` calls
//! across several published epochs. Every concurrent answer must be
//! bit-identical to a serial reference evaluation, and the memo cache
//! must never serve a poisoned (wrong-plan or wrong-epoch) entry.
//!
//! This is the safety argument behind `f1-serve`: the server shares one
//! session between its cache fast path, the coalescing batch executors
//! and the background repair thread.

use std::sync::Arc;

use f1_components::{Catalog, CatalogDelta, CatalogEpoch, CatalogStore};
use f1_skyline::plan::QueryPlan;
use f1_skyline::query::{Constraint, Objective};
use f1_skyline::session::{ResultSet, Session};
use f1_units::{Hertz, Watts};

const THREADS: usize = 8;
const ITERATIONS: usize = 20;
const EPOCHS: usize = 3;

/// A small synthetic catalog: 8 parts per family ⇒ 512 candidates per
/// airframe × 8 airframes, large enough to exercise the parallel pass,
/// small enough for 160 concurrent runs.
fn store_with_epochs() -> Arc<CatalogStore> {
    let store = Arc::new(CatalogStore::from_shared(Arc::new(Catalog::synthesize(
        7, 8,
    ))));
    store
        .apply(&CatalogDelta::new().patch_throughput(
            "Synth Compute 000000",
            "Synth Algorithm 000001",
            Hertz::new(50.0),
        ))
        .expect("epoch 1 publishes");
    store
        .apply(&CatalogDelta::new().retire_compute("Synth Compute 000003"))
        .expect("epoch 2 publishes");
    store
}

fn plans() -> Vec<QueryPlan> {
    let mut plans = Vec::new();
    for cap in [5.0, 12.0, 25.0, 60.0] {
        plans.push(
            QueryPlan::builder()
                .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
                .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
                .build()
                .expect("plan builds"),
        );
    }
    for cap in [18.0, 45.0] {
        plans.push(
            QueryPlan::builder()
                .objectives(&[
                    Objective::SafeVelocity,
                    Objective::TotalTdp,
                    Objective::PayloadMass,
                ])
                .constraint(Constraint::MaxTotalTdp(Watts::new(cap)))
                .build()
                .expect("plan builds"),
        );
    }
    plans
}

#[test]
fn shared_session_is_bit_identical_under_thread_storm() {
    let store = store_with_epochs();
    let plans = plans();

    // Serial reference: every (plan, epoch) pair evaluated cold on its
    // own session — the ground truth the storm must reproduce exactly.
    let reference = Session::over(Arc::clone(&store));
    let expected: Vec<Vec<Arc<ResultSet>>> = plans
        .iter()
        .map(|plan| {
            (0..EPOCHS as u64)
                .map(|e| {
                    reference
                        .run_at(plan, CatalogEpoch::from_raw(e))
                        .expect("reference run")
                })
                .collect()
        })
        .collect();
    let current = EPOCHS - 1;

    let session = Arc::new(Session::over(Arc::clone(&store)));
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let session = Arc::clone(&session);
            let plans = &plans;
            let expected = &expected;
            scope.spawn(move || {
                for iter in 0..ITERATIONS {
                    let i = (t * 7 + iter) % plans.len();
                    match (t + iter) % 4 {
                        0 => {
                            let got = session.run(&plans[i]).expect("run");
                            assert_eq!(*got, *expected[i][current], "run (plan {i})");
                        }
                        1 => {
                            let e = (t + iter) % EPOCHS;
                            let got = session
                                .run_at(&plans[i], CatalogEpoch::from_raw(e as u64))
                                .expect("run_at");
                            assert_eq!(*got, *expected[i][e], "run_at (plan {i}, epoch {e})");
                        }
                        2 => {
                            let j = (i + 1) % plans.len();
                            let batch = [plans[i].clone(), plans[j].clone()];
                            let got = session.run_batch(&batch).expect("run_batch");
                            assert_eq!(*got[0], *expected[i][current], "batch[0] (plan {i})");
                            assert_eq!(*got[1], *expected[j][current], "batch[1] (plan {j})");
                        }
                        _ => {
                            let got = session.refresh(&plans[i]).expect("refresh");
                            assert_eq!(*got, *expected[i][current], "refresh (plan {i})");
                        }
                    }
                }
            });
        }
    });

    // No cache poisoning: every surviving memo entry still matches its
    // serial reference at the exact (plan, epoch) it claims to hold.
    for (i, plan) in plans.iter().enumerate() {
        for (e, reference) in expected[i].iter().enumerate() {
            if let Some(cached) = session.cached_at(plan.key(), CatalogEpoch::from_raw(e as u64)) {
                assert_eq!(
                    *cached, **reference,
                    "cached entry poisoned (plan {i}, epoch {e})"
                );
            }
        }
    }
    // The storm re-used cached results heavily (concurrent first
    // touches may race to a handful of duplicate cold passes, but the
    // steady state is hits).
    let stats = session.cache_stats();
    assert!(stats.entries > 0, "{stats:?}");
    assert!(stats.hits > 0, "{stats:?}");
}
