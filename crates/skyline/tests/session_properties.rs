//! Property tests for the compile/execute split: plan-key round-trips,
//! bounded-heap top-k vs. the full ranking, cache-hit bit-identity, and
//! shared-pass batches vs. standalone runs (including the `nonfinite`
//! accounting and the Table II airframe knobs).

use std::sync::Arc;

use f1_components::Catalog;
use f1_skyline::plan::QueryPlan;
use f1_skyline::query::{Constraint, Knob, KnobSweep, Objective};
use f1_skyline::session::{ResultSet, Session};
use f1_skyline::SkylineError;
use f1_units::{Grams, MetersPerSecond, Watts};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A seed-derived random plan over the paper catalog: objective subsets,
/// primary rotation, constraint mixes and (optionally) a two-value knob
/// sweep, so generated plans cover the builder surface.
fn random_plan(seed: u64, with_sweep: bool) -> QueryPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    // Battery-free objective pool (endurance needs a mounted battery;
    // covered by unit tests separately).
    let pool = [
        Objective::SafeVelocity,
        Objective::TotalTdp,
        Objective::PayloadMass,
        Objective::MissionEnergyWhPerKm,
    ];
    let bits = rng.gen_range(0u32..16);
    let mut objectives: Vec<Objective> = pool
        .iter()
        .enumerate()
        .filter(|&(i, _)| bits & (1 << i) != 0)
        .map(|(_, &o)| o)
        .collect();
    if objectives.is_empty() {
        objectives.push(pool[rng.gen_range(0usize..pool.len())]);
    }
    let rotation = rng.gen_range(0usize..objectives.len());
    objectives.rotate_left(rotation);
    let mut builder = QueryPlan::builder().objectives(&objectives);
    if rng.gen_range(0u32..2) == 0 {
        builder = builder.constraint(Constraint::MaxTotalTdp(Watts::new(
            rng.gen_range(0.5f64..40.0),
        )));
    }
    if rng.gen_range(0u32..2) == 0 {
        builder = builder.constraint(Constraint::MinVelocity(MetersPerSecond::new(
            rng.gen_range(0.01f64..5.0),
        )));
    }
    if rng.gen_range(0u32..2) == 0 {
        builder = builder.constraint(Constraint::FeasibleOnly);
    }
    if with_sweep {
        let value = rng.gen_range(0.5f64..2.0);
        let (knob, values) = match rng.gen_range(0u32..6) {
            0 => (Knob::TdpScale, vec![1.0, value]),
            1 => (Knob::SensorRateScale, vec![1.0, value]),
            2 => (Knob::SensorRangeScale, vec![1.0, value]),
            3 => (Knob::PayloadDelta, vec![0.0, value * 100.0]),
            4 => (Knob::WeightScale, vec![1.0, value]),
            _ => (Knob::RotorPull, vec![1.0, value]),
        };
        builder = builder.sweep(KnobSweep::new(knob, values));
    }
    builder.build().expect("generated plans are valid")
}

/// Bit-exact equality of two result sets' objective columns: `==` on
/// f64 treats `-0.0 == 0.0` and would hide a sign flip; cache hits and
/// deterministic recomputation must agree to the bit.
fn columns_bit_identical(a: &ResultSet, b: &ResultSet) -> bool {
    a.objectives() == b.objectives()
        && a.len() == b.len()
        && (0..a.objectives().len()).all(|pos| {
            a.column(pos)
                .iter()
                .zip(b.column(pos))
                .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// `top_k(k)` equals the first `k` of the full ranking — exactly,
    /// including feasible-first ordering and enumeration-order ties —
    /// for random plans and random `k`.
    #[test]
    fn top_k_equals_ranked_prefix(seed in 0u64..1_000_000, k in 0usize..1500) {
        let plan = random_plan(seed, false);
        let session = Session::new(Arc::new(Catalog::paper()));
        let result = session.run(&plan).unwrap();
        let ranked = result.ranked();
        let take = k.min(ranked.len());
        prop_assert_eq!(result.top_k(k), &ranked[..take]);
    }

    /// A cache hit returns bit-identical objective rows — trivially for
    /// the shared `Arc`, and (the stronger claim) for an independent
    /// session recomputing the same plan from scratch.
    #[test]
    fn cache_hits_are_bit_identical(seed in 0u64..1_000_000) {
        let plan = random_plan(seed, true);
        let catalog = Arc::new(Catalog::paper());
        let session = Session::new(Arc::clone(&catalog));
        let first = session.run(&plan).unwrap();
        let hit = session.run(&plan).unwrap();
        prop_assert!(Arc::ptr_eq(&first, &hit));
        prop_assert!(columns_bit_identical(&first, &hit));
        prop_assert_eq!(first.frontier(), hit.frontier());
        let fresh = Session::new(catalog).run(&plan).unwrap();
        prop_assert!(columns_bit_identical(&first, &fresh));
        prop_assert_eq!(first.frontier(), fresh.frontier());
        prop_assert_eq!(&*first, &*fresh);
    }

    /// A shared-pass batch returns exactly what each plan produces when
    /// run standalone — points, columns, frontier, and the dropped /
    /// nonfinite accounting.
    #[test]
    fn batch_matches_standalone(seed in 0u64..1_000_000, extra in 2usize..6) {
        let catalog = Arc::new(Catalog::paper());
        // `extra` co-passable plans (same sweep signature, different
        // constraints/objectives) plus one with its own signature, so
        // the batch spans more than one pass group.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let shared_sweep = KnobSweep::new(Knob::TdpScale, vec![1.0, rng.gen_range(0.4f64..0.9)]);
        let mut plans: Vec<QueryPlan> = (0..extra)
            .map(|i| {
                let mut builder = QueryPlan::builder()
                    .objectives(random_plan(seed.wrapping_add(i as u64), false).objectives())
                    .sweep(shared_sweep.clone());
                builder = builder.constraint(Constraint::MaxTotalTdp(Watts::new(
                    rng.gen_range(0.5f64..40.0),
                )));
                builder.build().unwrap()
            })
            .collect();
        plans.push(random_plan(seed ^ 0xbeef, true));
        let session = Session::new(Arc::clone(&catalog));
        let batch = session.run_batch(&plans).unwrap();
        prop_assert_eq!(batch.len(), plans.len());
        for (plan, batched) in plans.iter().zip(&batch) {
            let standalone = Session::new(Arc::clone(&catalog)).run(plan).unwrap();
            prop_assert!(columns_bit_identical(batched, &standalone));
            prop_assert_eq!(batched.frontier(), standalone.frontier());
            prop_assert_eq!(batched.dropped(), standalone.dropped());
            prop_assert_eq!(batched.nonfinite(), standalone.nonfinite());
            prop_assert_eq!(&**batched, &*standalone);
        }
    }

    /// The canonical key round-trips every generated plan exactly.
    #[test]
    fn plan_keys_round_trip(seed in 0u64..1_000_000) {
        let plan = random_plan(seed, true);
        let replayed = QueryPlan::from_key(plan.key()).unwrap();
        prop_assert_eq!(&replayed, &plan);
        prop_assert_eq!(replayed.key(), plan.key());
    }

    /// Fuzz: truncating a canonical key anywhere never panics. A cut
    /// that damages the section structure (removes at least one `|`)
    /// is always [`SkylineError::PlanKey`]; a cut inside the final
    /// section leaves a structurally well-formed key, which may then
    /// fail value parsing (`PlanKey`), fail semantic validation (e.g.
    /// a truncated profile value leaving its domain), or — rarely —
    /// land on another canonical key (shortening a float digit by
    /// digit), in which case the parser's canonical-form check
    /// guarantees the accepted string round-trips to itself.
    #[test]
    fn truncated_keys_fail_as_plan_key_errors(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3) ^ 0xF0221);
        let key = random_plan(seed, rng.gen_range(0u32..2) == 0).key().to_owned();
        let cut = rng.gen_range(0usize..key.len());
        let truncated = &key[..cut];
        if key[cut..].contains('|') {
            // At least one whole section was cut off: must be PlanKey.
            prop_assert!(matches!(
                QueryPlan::from_key(truncated),
                Err(SkylineError::PlanKey { .. })
            ));
        } else {
            match QueryPlan::from_key(truncated) {
                Err(_) => {}
                Ok(plan) => prop_assert_eq!(plan.key(), truncated),
            }
        }
    }

    /// Fuzz: reordering, duplicating or deleting any section of a
    /// canonical key is always rejected as [`SkylineError::PlanKey`] —
    /// a key is a cache identity, so exactly one spelling may exist.
    #[test]
    fn reordered_or_reshaped_keys_are_rejected(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(5) ^ 0xF0222);
        let key = random_plan(seed, rng.gen_range(0u32..2) == 0).key().to_owned();
        let mut sections: Vec<&str> = key.split('|').collect();
        // Index 0 is the version prefix; mutate only body sections.
        let a = rng.gen_range(1usize..sections.len());
        match rng.gen_range(0u32..4) {
            0 => {
                // Swap two distinct sections.
                let b = 1 + (a - 1 + rng.gen_range(1usize..sections.len() - 1))
                    % (sections.len() - 1);
                sections.swap(a, b);
            }
            1 => {
                // Duplicate a section in place.
                let dup = sections[a];
                sections.insert(a, dup);
            }
            2 => {
                // Delete a section.
                sections.remove(a);
            }
            _ => {
                // Inject an unknown section.
                sections.insert(a, "zz=1");
            }
        }
        let mutated = sections.join("|");
        prop_assert!(
            matches!(
                QueryPlan::from_key(&mutated),
                Err(SkylineError::PlanKey { .. })
            ),
            "accepted reshaped key {mutated:?}"
        );
    }

    /// Fuzz: arbitrary printable garbage is rejected as
    /// [`SkylineError::PlanKey`], and single-character corruption of a
    /// canonical key never panics (when accepted, the canonical-form
    /// check makes the accepted string self-identifying).
    #[test]
    fn garbage_and_corrupted_keys_never_panic(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7) ^ 0xF0223);
        let len = rng.gen_range(0usize..80);
        let garbage: String = (0..len)
            .map(|_| char::from(rng.gen_range(0x20u32..0x7f) as u8))
            .collect();
        prop_assume!(!garbage.starts_with("f1.plan.v1"));
        prop_assert!(matches!(
            QueryPlan::from_key(&garbage),
            Err(SkylineError::PlanKey { .. })
        ));

        let key = random_plan(seed, rng.gen_range(0u32..2) == 0).key().to_owned();
        let pos = rng.gen_range(0usize..key.len());
        let mut corrupted = key.clone().into_bytes();
        corrupted[pos] = rng.gen_range(0x20u32..0x7f) as u8;
        let corrupted = String::from_utf8(corrupted).expect("ASCII stays ASCII");
        // Most corruptions are malformed; some hit a value digit and
        // yield a different (still canonical) plan; some surface a
        // semantic error (e.g. an out-of-domain profile value).
        if let Ok(plan) = QueryPlan::from_key(&corrupted) {
            prop_assert_eq!(plan.key(), &corrupted);
        }
    }
}

/// The `nonfinite` accounting survives the batch path: a plan whose
/// energy objective overflows to +∞ (vanishing sensor range) must
/// report the same counts batched as standalone, next to a healthy
/// plan sharing the batch.
#[test]
fn batch_preserves_nonfinite_accounting() {
    let catalog = Arc::new(Catalog::paper());
    let degenerate = QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::MissionEnergyWhPerKm])
        .constraint(Constraint::FeasibleOnly)
        .sweep(KnobSweep::new(Knob::SensorRangeScale, vec![1e-307]))
        .build()
        .unwrap();
    let healthy = QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::MissionEnergyWhPerKm])
        .constraint(Constraint::FeasibleOnly)
        .build()
        .unwrap();
    let session = Session::new(Arc::clone(&catalog));
    let batch = session
        .run_batch(&[degenerate.clone(), healthy.clone()])
        .unwrap();
    assert!(batch[0].nonfinite() > 0);
    assert_eq!(batch[0].nonfinite(), batch[0].len());
    assert!(batch[0].frontier().is_empty());
    assert_eq!(batch[1].nonfinite(), 0);
    assert!(!batch[1].frontier().is_empty());
    for (plan, batched) in [degenerate, healthy].iter().zip(&batch) {
        let standalone = Session::new(Arc::clone(&catalog)).run(plan).unwrap();
        assert_eq!(**batched, *standalone);
    }
}

/// Airframe knob sweeps (Table II drone weight / rotor pull) ride
/// through plans and sessions like any other knob: variant tables are
/// built per setting, outcomes shift the right way, and the identity
/// setting stays bit-identical to the unswept plan.
#[test]
fn airframe_knobs_flow_through_the_session_path() {
    let catalog = Arc::new(Catalog::paper());
    let session = Session::new(Arc::clone(&catalog));
    let swept = QueryPlan::builder()
        .sweep(KnobSweep::new(Knob::WeightScale, vec![1.0, 0.6]))
        .sweep(KnobSweep::new(Knob::RotorPull, vec![1.0, 1.4]))
        .build()
        .unwrap();
    let stock = QueryPlan::builder().build().unwrap();
    let swept_result = session.run(&swept).unwrap();
    let stock_result = session.run(&stock).unwrap();
    assert_eq!(swept_result.len(), 4 * stock_result.len());
    // Identity-setting points equal the unswept run, in order.
    let identity: Vec<_> = swept_result
        .points()
        .iter()
        .filter(|p| p.setting.is_identity())
        .collect();
    assert_eq!(identity.len(), stock_result.len());
    for (swept_point, stock_point) in identity.iter().zip(stock_result.points()) {
        assert_eq!(swept_point.outcome, stock_point.outcome);
    }
    // Lighter + stronger can only help velocity, and payload objective
    // values are untouched by frame changes.
    for point in swept_result.points() {
        if point.setting.weight_scale == 0.6 && point.setting.rotor_pull_scale == 1.4 {
            let twin = stock_result
                .points()
                .iter()
                .find(|p| p.airframe == point.airframe && p.candidate == point.candidate)
                .unwrap();
            assert!(point.outcome.velocity >= twin.outcome.velocity);
            assert_eq!(point.outcome.payload, twin.outcome.payload);
        }
    }
}

/// Out-of-domain airframe knob values fail at variant-build time with
/// the knob's Table II name — through the session path, before any
/// evaluation runs.
#[test]
fn airframe_knob_validation_names_the_knob_via_session() {
    let session = Session::new(Arc::new(Catalog::paper()));
    for (knob, expected) in [
        (Knob::WeightScale, "Drone Weight"),
        (Knob::RotorPull, "Rotor Pull"),
    ] {
        let plan = QueryPlan::builder()
            .sweep(KnobSweep::new(knob, vec![1e308]))
            .build()
            .unwrap();
        match session.run(&plan).unwrap_err() {
            f1_skyline::SkylineError::KnobVariant { knob, value, .. } => {
                assert_eq!(knob, expected);
                assert_eq!(value, 1e308);
            }
            other => panic!("expected KnobVariant, got {other:?}"),
        }
    }
}

/// Sessions are shareable across threads: concurrent runs of the same
/// plan race benignly (deterministic results), and distinct plans fill
/// the cache once each.
#[test]
fn session_serves_concurrent_threads() {
    let session = Arc::new(Session::new(Arc::new(Catalog::paper())));
    let plans: Vec<QueryPlan> = [5.0, 10.0, 20.0]
        .iter()
        .map(|&w| {
            QueryPlan::builder()
                .constraint(Constraint::MaxTotalTdp(Watts::new(w)))
                .constraint(Constraint::MaxPayload(Grams::new(900.0)))
                .build()
                .unwrap()
        })
        .collect();
    let results: Vec<Arc<ResultSet>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                let session = Arc::clone(&session);
                let plan = plans[i % plans.len()].clone();
                scope.spawn(move || session.run(&plan).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, result) in results.iter().enumerate() {
        let reference = session.run(&plans[i % plans.len()]).unwrap();
        assert_eq!(**result, *reference);
    }
    assert_eq!(session.cache_stats().entries, plans.len());
}
