//! Acceptance tests for the composable query API at scale: the
//! four-objective query over a synthesized 10⁵-candidate catalog, exact
//! frontier agreement with the naive Pareto on the paper catalog, and
//! the shared-pass acceptance — a batch of 8 distinct 4-objective plans
//! over the 10⁵-candidate catalog in less than 2× one query's time,
//! with repeated plans served from the session cache.
//!
//! Catalog sizes drop an order of magnitude under `debug_assertions` so
//! plain `cargo test` stays quick; the release-mode CI job runs the full
//! 10⁵-candidate versions (timing assertions are release-only — debug
//! builds aren't what the acceptance criterion measures).

use std::sync::Arc;
use std::time::Instant;

use f1_components::{Catalog, ComputeId};
use f1_skyline::dse::Engine;
use f1_skyline::frontier;
use f1_skyline::plan::QueryPlan;
use f1_skyline::query::{Constraint, Objective};
use f1_skyline::session::Session;
use f1_units::Watts;

const FOUR_OBJECTIVES: [Objective; 4] = [
    Objective::SafeVelocity,
    Objective::TotalTdp,
    Objective::PayloadMass,
    Objective::MissionEnergyWhPerKm,
];

/// The headline acceptance: a 4-objective query (velocity, TDP, payload,
/// mission energy) over a synthesized 10⁵-candidate catalog completes
/// with the O(n log n) frontier.
#[test]
fn four_objective_query_over_1e5_candidate_catalog() {
    // 47 parts per family ⇒ 47³ = 103 823 characterized candidates on
    // one airframe.
    let catalog = Catalog::synthesize(42, 47);
    let engine = Engine::new(&catalog);
    let airframe = catalog
        .airframe_entries()
        .next()
        .map(|(id, _)| id)
        .expect("synthesized catalog has airframes");
    let result = engine
        .query()
        .airframes(&[airframe])
        .objectives(&FOUR_OBJECTIVES)
        .run()
        .expect("query over the synthetic catalog evaluates");
    assert_eq!(result.points().len(), 47 * 47 * 47);
    assert!(!result.frontier().is_empty());

    // Frontier points are feasible, finite-valued, and mutually
    // non-dominated (full pairwise check within the frontier itself —
    // it is small, unlike the candidate set).
    let objectives = result.objectives();
    let frontier_rows: Vec<Vec<f64>> = result
        .frontier()
        .iter()
        .map(|&i| {
            assert!(result.points()[i].outcome.feasible);
            result
                .row(i)
                .iter()
                .zip(objectives)
                .map(|(&v, o)| {
                    assert!(v.is_finite());
                    if o.maximize() {
                        -v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    for a in &frontier_rows {
        for b in &frontier_rows {
            assert!(!frontier::dominates_min(a, b));
        }
    }

    // Spot-check optimality: the single best point per objective is
    // undominated, hence on the frontier.
    for (pos, objective) in objectives.iter().enumerate() {
        let best = (0..result.points().len())
            .filter(|&i| result.points()[i].outcome.feasible)
            .filter(|&i| result.row(i).iter().all(|v| v.is_finite()))
            .min_by(|&a, &b| {
                let (va, vb) = (result.value(a, pos), result.value(b, pos));
                if objective.maximize() {
                    vb.total_cmp(&va)
                } else {
                    va.total_cmp(&vb)
                }
            })
            .expect("some feasible point exists");
        let best_value = result.value(best, pos);
        assert!(
            result
                .frontier()
                .iter()
                .any(|&i| result.value(i, pos) == best_value),
            "the {objective}-optimal value {best_value} is missing from the frontier"
        );
    }
}

/// On the paper-sized catalog the sweep frontier must equal the naive
/// O(n²) Pareto **exactly** — same indices, same order — for the default
/// 3-objective query and the 4-objective energy query alike.
#[test]
fn sweep_frontier_matches_naive_exactly_on_paper_catalog() {
    let catalog = Catalog::paper();
    let engine = Engine::new(&catalog);
    for objectives in [
        &[
            Objective::SafeVelocity,
            Objective::TotalTdp,
            Objective::PayloadMass,
        ][..],
        &FOUR_OBJECTIVES[..],
    ] {
        let result = engine.query().objectives(objectives).run().unwrap();
        let (keys, map) = result.minimized_keys();
        let naive: Vec<usize> = frontier::naive_pareto_min(objectives.len(), &keys)
            .into_iter()
            .map(|i| map[i])
            .collect();
        assert_eq!(result.frontier(), naive, "{} objectives", objectives.len());
        assert!(!naive.is_empty());
    }
}

/// Same exactness on a small synthesized catalog, where duplicates and
/// near-ties are common because parts repeat across candidates.
#[test]
fn sweep_frontier_matches_naive_exactly_on_small_synth_catalog() {
    let catalog = Catalog::synthesize(7, 8);
    let engine = Engine::new(&catalog);
    for k in [2, 3, 4] {
        let result = engine
            .query()
            .objectives(&FOUR_OBJECTIVES[..k])
            .run()
            .unwrap();
        let (keys, map) = result.minimized_keys();
        let naive: Vec<usize> = frontier::naive_pareto_min(k, &keys)
            .into_iter()
            .map(|i| map[i])
            .collect();
        assert_eq!(result.frontier(), naive, "{k} objectives");
    }
}

/// The shared-pass acceptance: a batch of 8 **distinct** 4-objective
/// plans (a Table II-style TDP budget sweep) over a 10⁵-candidate
/// synthetic catalog completes in < 2× the single-query pass time,
/// because candidates are enumerated and the momentum-theory outcome
/// evaluated once for the whole batch. Each batched result must equal
/// its standalone run, and a repeated plan must come back from the
/// session cache with identical frontier indices.
#[test]
fn batch_of_eight_plans_shares_the_evaluation_pass_at_scale() {
    // 47³ ≈ 1.04 × 10⁵ candidates in release; 22³ ≈ 1.06 × 10⁴ in debug.
    let n_per_family = if cfg!(debug_assertions) { 22 } else { 47 };
    let catalog = Arc::new(Catalog::synthesize(42, n_per_family));
    let airframe = catalog
        .airframe_entries()
        .next()
        .map(|(id, _)| id)
        .expect("synthesized catalog has airframes");
    // Distinct plans: descending TDP budgets over the synth catalog's
    // 0.05–60 W log-uniform TDP range (the first is effectively open).
    let caps = [60.0, 30.0, 16.0, 8.0, 4.0, 2.0, 1.0, 0.5];
    let plans: Vec<QueryPlan> = caps
        .iter()
        .map(|&w| {
            QueryPlan::builder()
                .airframes(&[airframe])
                .objectives(&FOUR_OBJECTIVES)
                .constraint(Constraint::MaxTotalTdp(Watts::new(w)))
                .build()
                .unwrap()
        })
        .collect();
    assert_eq!(
        plans
            .iter()
            .map(QueryPlan::key)
            .collect::<std::collections::HashSet<_>>()
            .len(),
        8,
        "the 8 plans must be distinct"
    );

    // Baseline: one plan, one fused pass. Best of two fresh-session
    // runs, for both arms — the claim is about steady-state cost, not
    // first-touch page faults on a noisy box.
    let mut single = None;
    let mut single_time = None;
    for _ in 0..2 {
        let session = Session::new(Arc::clone(&catalog));
        let start = Instant::now();
        single = Some(session.run(&plans[0]).unwrap());
        let elapsed = start.elapsed();
        single_time = Some(single_time.map_or(elapsed, |t| elapsed.min(t)));
    }
    let (single, single_time) = (single.unwrap(), single_time.unwrap());

    // The batch: one shared pass for all 8.
    let mut batch_session = Session::new(Arc::clone(&catalog));
    let mut batch = None;
    let mut batch_time = None;
    for _ in 0..2 {
        let session = Session::new(Arc::clone(&catalog));
        let start = Instant::now();
        batch = Some(session.run_batch(&plans).unwrap());
        let elapsed = start.elapsed();
        batch_time = Some(batch_time.map_or(elapsed, |t| elapsed.min(t)));
        batch_session = session;
    }
    let (batch, batch_time) = (batch.unwrap(), batch_time.unwrap());

    // Correctness before speed: every member equals its standalone run.
    assert_eq!(*batch[0], *single);
    for (plan, batched) in plans.iter().zip(&batch).skip(1) {
        let standalone = Session::new(Arc::clone(&catalog)).run(plan).unwrap();
        assert_eq!(**batched, *standalone);
    }
    // Tighter budgets keep fewer points; every member's accounting adds
    // back up to the full space.
    let total = single.len() + single.dropped();
    for pair in batch.windows(2) {
        assert!(pair[0].len() >= pair[1].len());
    }
    for member in &batch {
        assert_eq!(member.len() + member.dropped(), total);
    }

    // A repeated plan is a cache lookup with identical frontier indices
    // (the very same Arc).
    let repeat_start = Instant::now();
    let again = batch_session.run(&plans[3]).unwrap();
    let repeat_time = repeat_start.elapsed();
    assert!(Arc::ptr_eq(&again, &batch[3]));
    assert_eq!(again.frontier(), batch[3].frontier());
    assert!(
        repeat_time < single_time / 10,
        "cache lookup took {repeat_time:?} vs cold {single_time:?}"
    );

    // The timing acceptance is a release-mode claim (the CI release job
    // runs it at the full 10⁵); debug codegen distorts the ratio.
    #[cfg(not(debug_assertions))]
    {
        assert!(
            batch_time < single_time * 2,
            "8-plan batch took {batch_time:?}, single pass {single_time:?} \
             (acceptance: batch < 2× single)"
        );
    }
    #[cfg(debug_assertions)]
    let _ = (batch_time, single_time);
}

/// Constraints compose with scale: a TDP cap prunes the synthetic space
/// without touching the surviving outcomes.
#[test]
fn constrained_query_on_synth_catalog_prunes_consistently() {
    let catalog = Catalog::synthesize(42, 12);
    let engine = Engine::new(&catalog);
    let airframe = catalog.airframe_entries().next().map(|(id, _)| id).unwrap();
    let open = engine.query().airframes(&[airframe]).run().unwrap();
    let capped = engine
        .query()
        .airframes(&[airframe])
        .constraint(Constraint::MaxTotalTdp(f1_units::Watts::new(10.0)))
        .run()
        .unwrap();
    assert_eq!(
        capped.points().len() + capped.dropped(),
        open.points().len()
    );
    let kept: Vec<ComputeId> = capped
        .points()
        .iter()
        .map(|p| p.candidate.compute)
        .collect();
    for id in kept {
        assert!(catalog.compute_by_id(id).tdp().get() <= 10.0);
    }
    for point in capped.points() {
        let twin = open
            .points()
            .iter()
            .find(|p| p.candidate == point.candidate)
            .expect("unconstrained query holds a superset");
        assert_eq!(twin.outcome, point.outcome);
    }
}
