//! Acceptance tests for the composable query API at scale: the
//! four-objective query over a synthesized 10⁵-candidate catalog, and
//! exact frontier agreement with the naive Pareto on the paper catalog.

use f1_components::{Catalog, ComputeId};
use f1_skyline::dse::Engine;
use f1_skyline::frontier;
use f1_skyline::query::{Constraint, Objective};

const FOUR_OBJECTIVES: [Objective; 4] = [
    Objective::SafeVelocity,
    Objective::TotalTdp,
    Objective::PayloadMass,
    Objective::MissionEnergyWhPerKm,
];

/// The headline acceptance: a 4-objective query (velocity, TDP, payload,
/// mission energy) over a synthesized 10⁵-candidate catalog completes
/// with the O(n log n) frontier.
#[test]
fn four_objective_query_over_1e5_candidate_catalog() {
    // 47 parts per family ⇒ 47³ = 103 823 characterized candidates on
    // one airframe.
    let catalog = Catalog::synthesize(42, 47);
    let engine = Engine::new(&catalog);
    let airframe = catalog
        .airframe_entries()
        .next()
        .map(|(id, _)| id)
        .expect("synthesized catalog has airframes");
    let result = engine
        .query()
        .airframes(&[airframe])
        .objectives(&FOUR_OBJECTIVES)
        .run()
        .expect("query over the synthetic catalog evaluates");
    assert_eq!(result.points().len(), 47 * 47 * 47);
    assert!(!result.frontier().is_empty());

    // Frontier points are feasible, finite-valued, and mutually
    // non-dominated (full pairwise check within the frontier itself —
    // it is small, unlike the candidate set).
    let objectives = result.objectives();
    let frontier_rows: Vec<Vec<f64>> = result
        .frontier()
        .iter()
        .map(|&i| {
            assert!(result.points()[i].outcome.feasible);
            result
                .values(i)
                .iter()
                .zip(objectives)
                .map(|(&v, o)| {
                    assert!(v.is_finite());
                    if o.maximize() {
                        -v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    for a in &frontier_rows {
        for b in &frontier_rows {
            assert!(!frontier::dominates_min(a, b));
        }
    }

    // Spot-check optimality: the single best point per objective is
    // undominated, hence on the frontier.
    for (pos, objective) in objectives.iter().enumerate() {
        let best = (0..result.points().len())
            .filter(|&i| result.points()[i].outcome.feasible)
            .filter(|&i| result.values(i).iter().all(|v| v.is_finite()))
            .min_by(|&a, &b| {
                let (va, vb) = (result.values(a)[pos], result.values(b)[pos]);
                if objective.maximize() {
                    vb.total_cmp(&va)
                } else {
                    va.total_cmp(&vb)
                }
            })
            .expect("some feasible point exists");
        let best_value = result.values(best)[pos];
        assert!(
            result
                .frontier()
                .iter()
                .any(|&i| result.values(i)[pos] == best_value),
            "the {objective}-optimal value {best_value} is missing from the frontier"
        );
    }
}

/// On the paper-sized catalog the sweep frontier must equal the naive
/// O(n²) Pareto **exactly** — same indices, same order — for the default
/// 3-objective query and the 4-objective energy query alike.
#[test]
fn sweep_frontier_matches_naive_exactly_on_paper_catalog() {
    let catalog = Catalog::paper();
    let engine = Engine::new(&catalog);
    for objectives in [
        &[
            Objective::SafeVelocity,
            Objective::TotalTdp,
            Objective::PayloadMass,
        ][..],
        &FOUR_OBJECTIVES[..],
    ] {
        let result = engine.query().objectives(objectives).run().unwrap();
        let (keys, map) = result.minimized_keys();
        let naive: Vec<usize> = frontier::naive_pareto_min(objectives.len(), &keys)
            .into_iter()
            .map(|i| map[i])
            .collect();
        assert_eq!(result.frontier(), naive, "{} objectives", objectives.len());
        assert!(!naive.is_empty());
    }
}

/// Same exactness on a small synthesized catalog, where duplicates and
/// near-ties are common because parts repeat across candidates.
#[test]
fn sweep_frontier_matches_naive_exactly_on_small_synth_catalog() {
    let catalog = Catalog::synthesize(7, 8);
    let engine = Engine::new(&catalog);
    for k in [2, 3, 4] {
        let result = engine
            .query()
            .objectives(&FOUR_OBJECTIVES[..k])
            .run()
            .unwrap();
        let (keys, map) = result.minimized_keys();
        let naive: Vec<usize> = frontier::naive_pareto_min(k, &keys)
            .into_iter()
            .map(|i| map[i])
            .collect();
        assert_eq!(result.frontier(), naive, "{k} objectives");
    }
}

/// Constraints compose with scale: a TDP cap prunes the synthetic space
/// without touching the surviving outcomes.
#[test]
fn constrained_query_on_synth_catalog_prunes_consistently() {
    let catalog = Catalog::synthesize(42, 12);
    let engine = Engine::new(&catalog);
    let airframe = catalog.airframe_entries().next().map(|(id, _)| id).unwrap();
    let open = engine.query().airframes(&[airframe]).run().unwrap();
    let capped = engine
        .query()
        .airframes(&[airframe])
        .constraint(Constraint::MaxTotalTdp(f1_units::Watts::new(10.0)))
        .run()
        .unwrap();
    assert_eq!(
        capped.points().len() + capped.dropped(),
        open.points().len()
    );
    let kept: Vec<ComputeId> = capped
        .points()
        .iter()
        .map(|p| p.candidate.compute)
        .collect();
    for id in kept {
        assert!(catalog.compute_by_id(id).tdp().get() <= 10.0);
    }
    for point in capped.points() {
        let twin = open
            .points()
            .iter()
            .find(|p| p.candidate == point.candidate)
            .expect("unconstrained query holds a superset");
        assert_eq!(twin.outcome, point.outcome);
    }
}
