//! The PR's headline acceptance: a four-objective query over a **10⁷**-
//! candidate synthetic catalog (216 per family ⇒ 216³ = 10 077 696
//! characterized candidates on one airframe) completes end-to-end in
//! about a second in release mode, with peak memory bounded by the
//! shard + frontier + top-k working set — not the candidate count.
//!
//! Lives in its own integration-test binary so the `VmHWM` peak-RSS
//! guard measures this workload alone, not whichever test the harness
//! ran first. Debug builds drop the catalog three orders of magnitude
//! and skip the timing/memory assertions (they measure release
//! codegen, which is what CI's release-acceptance job runs).

use std::sync::Arc;
use std::time::Instant;

use f1_components::Catalog;
use f1_skyline::frontier;
use f1_skyline::plan::{KeepPoints, QueryPlan};
use f1_skyline::query::Objective;
use f1_skyline::session::Session;
use f1_skyline::shard::STREAM_AUTO_THRESHOLD;

const FOUR_OBJECTIVES: [Objective; 4] = [
    Objective::SafeVelocity,
    Objective::TotalTdp,
    Objective::PayloadMass,
    Objective::MissionEnergyWhPerKm,
];

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// where procfs is unavailable. Only the release build asserts on it.
#[cfg_attr(debug_assertions, allow(dead_code))]
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
fn ten_million_candidate_query_streams_in_about_a_second() {
    // 216³ ≈ 1.008 × 10⁷ candidates on one airframe in release;
    // 22³ ≈ 10⁴ under debug.
    let n_per_family = if cfg!(debug_assertions) { 22 } else { 216 };
    let catalog = Catalog::synthesize(42, n_per_family);
    let airframe = catalog
        .airframe_entries()
        .next()
        .map(|(id, _)| id)
        .expect("synthesized catalog has airframes");
    let jobs = n_per_family * n_per_family * n_per_family;
    let plan = QueryPlan::builder()
        .airframes(&[airframe])
        .objectives(&FOUR_OBJECTIVES)
        .build()
        .unwrap();
    // At 10⁷ jobs the default `Auto` mode must pick streaming on its
    // own — the headline query needs no opt-in flag.
    if jobs > STREAM_AUTO_THRESHOLD {
        assert!(
            plan.keep_points() == KeepPoints::Auto,
            "headline plan uses the default mode"
        );
    }
    let plan = if jobs > STREAM_AUTO_THRESHOLD {
        plan
    } else {
        // Debug-sized space: force streaming so the path under test runs.
        QueryPlan::builder()
            .airframes(&[airframe])
            .objectives(&FOUR_OBJECTIVES)
            .keep_points(KeepPoints::FrontierOnly)
            .build()
            .unwrap()
    };

    let session = Session::new(Arc::new(catalog));
    let start = Instant::now();
    let result = session.run(&plan).unwrap();
    let elapsed = start.elapsed();

    assert!(result.is_streamed());
    // Exact accounting: every candidate either kept or dropped; the
    // synthetic matrix is dense, so nothing is uncharacterized.
    assert_eq!(result.len() + result.dropped(), jobs);
    assert_eq!(result.uncharacterized(), 0);
    assert!(!result.frontier().is_empty());
    assert!(!result.ranked().is_empty());

    // Frontier sanity: stored rows are feasible, finite, and mutually
    // non-dominated (full pairwise check — the frontier is small).
    let objectives = result.objectives();
    let frontier_rows: Vec<Vec<f64>> = result
        .frontier()
        .iter()
        .map(|&i| {
            assert!(result.point(i).outcome.feasible);
            result
                .row(i)
                .iter()
                .zip(objectives)
                .map(|(&v, o)| {
                    assert!(v.is_finite());
                    if o.maximize() {
                        -v
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();
    for a in &frontier_rows {
        for b in &frontier_rows {
            assert!(!frontier::dominates_min(a, b));
        }
    }

    #[cfg(not(debug_assertions))]
    {
        eprintln!(
            "10^7 streamed query: {elapsed:?}, frontier {}, peak RSS {:?} MiB",
            result.frontier().len(),
            peak_rss_bytes().map(|b| b / (1 << 20)),
        );
        // ~1 s on the reference box; 5 s leaves headroom for slow CI
        // runners without letting the claim regress to the ~10 s a
        // materializing pass plus its allocations would cost.
        assert!(
            elapsed.as_secs_f64() < 5.0,
            "10^7-candidate streamed query took {elapsed:?} (acceptance: ~1 s, ceiling 5 s)"
        );
        // Peak memory is the acceptance that distinguishes streaming
        // from materializing: 10⁷ points at ~200 B each would exceed
        // 2 GiB, while the streamed pass holds shard slabs plus the
        // frontier ∪ top-k survivors.
        if let Some(peak) = peak_rss_bytes() {
            assert!(
                peak < 1 << 30,
                "peak RSS {peak} B — streaming must stay under 1 GiB"
            );
        }
    }
    #[cfg(debug_assertions)]
    let _ = elapsed;
}
