//! Property tests pinning the sort-based skyline to the naive O(n²)
//! Pareto scan on random point sets — including coarse integer grids,
//! where ties and exact duplicates are the norm rather than the
//! exception and the sweep's tie bookkeeping earns its keep.

use f1_skyline::frontier;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Random points quantized to a `grid`-level integer lattice: small
/// grids force duplicate coordinates and whole duplicate points.
fn lattice_points(seed: u64, n: usize, dims: usize, grid: u32) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * dims)
        .map(|_| f64::from(rng.gen_range(0u32..grid)))
        .collect()
}

/// Continuous points, where ties are rare but orderings are adversarial.
fn continuous_points(seed: u64, n: usize, dims: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * dims).map(|_| rng.gen_range(-10.0..10.0)).collect()
}

fn assert_matches_naive(dims: usize, keys: &[f64]) -> Result<(), TestCaseError> {
    let sweep = frontier::pareto_min(dims, keys);
    let naive = frontier::naive_pareto_min(dims, keys);
    prop_assert_eq!(sweep, naive);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 2-objective sweep equals the naive Pareto on lattice and
    /// continuous point sets.
    #[test]
    fn sweep2_matches_naive(seed in 0u64..1_000_000, n in 0usize..150, grid in 2u32..14) {
        assert_matches_naive(2, &lattice_points(seed, n, 2, grid))?;
        assert_matches_naive(2, &continuous_points(seed, n, 2))?;
    }

    /// 3-objective staircase sweep equals the naive Pareto.
    #[test]
    fn sweep3_matches_naive(seed in 0u64..1_000_000, n in 0usize..150, grid in 2u32..14) {
        assert_matches_naive(3, &lattice_points(seed, n, 3, grid))?;
        assert_matches_naive(3, &continuous_points(seed, n, 3))?;
    }

    /// 4-objective running-frontier fallback equals the naive Pareto.
    #[test]
    fn frontier4_matches_naive(seed in 0u64..1_000_000, n in 0usize..150, grid in 2u32..14) {
        assert_matches_naive(4, &lattice_points(seed, n, 4, grid))?;
        assert_matches_naive(4, &continuous_points(seed, n, 4))?;
    }

    /// Frontier membership is invariant under a uniform shift — Pareto
    /// dominance only cares about relative order.
    #[test]
    fn frontier_is_translation_invariant(seed in 0u64..1_000_000, n in 1usize..80, shift in -100.0f64..100.0) {
        let keys = continuous_points(seed, n, 3);
        let shifted: Vec<f64> = keys.iter().map(|v| v + shift).collect();
        prop_assert_eq!(
            frontier::pareto_min(3, &keys),
            frontier::pareto_min(3, &shifted)
        );
    }
}
