//! Acceptance and property tests for the versioned `CatalogStore` and
//! the session's incremental delta repair (`Session::refresh`): a
//! repaired result must be **bit-identical** to a cold run at the new
//! epoch — same points in the same enumeration order, bit-equal
//! objective columns, identical frontier indices, and identical
//! dropped/uncharacterized/nonfinite accounting.
//!
//! Catalog sizes drop an order of magnitude under `debug_assertions`;
//! the release-mode CI job runs the 10⁵-candidate acceptance including
//! the repair-vs-cold timing claim (timing asserts are release-only).

use std::sync::Arc;
use std::time::{Duration, Instant};

use f1_components::{
    names, Catalog, CatalogDelta, CatalogEpoch, CatalogStore, ComputeKind, ComputePlatform, Sensor,
    SensorModality,
};
use f1_skyline::plan::QueryPlan;
use f1_skyline::query::{Knob, KnobSweep, Objective};
use f1_skyline::session::{ResultSet, Session, COMPACT_SEGMENT_THRESHOLD};
use f1_skyline::SkylineError;
use f1_units::{Grams, Hertz, Meters, Millimeters, Watts};

/// Bit-exact equality: `PartialEq` on f64 columns would conflate
/// `-0.0 == 0.0`; survivors are copied verbatim, so repair must agree
/// with the cold pass to the bit.
fn assert_bit_identical(repaired: &ResultSet, cold: &ResultSet) {
    assert_eq!(repaired, cold, "logical ResultSet equality");
    assert_eq!(repaired.frontier(), cold.frontier(), "frontier indices");
    assert_eq!(repaired.nonfinite(), cold.nonfinite(), "nonfinite count");
    assert_eq!(repaired.dropped(), cold.dropped(), "dropped count");
    assert_eq!(
        repaired.uncharacterized(),
        cold.uncharacterized(),
        "uncharacterized count"
    );
    for pos in 0..repaired.objectives().len() {
        let (a, b) = (repaired.column(pos), cold.column(pos));
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "column {pos} row {i}: {x} vs {y}"
            );
        }
    }
    // Ranking is derived from the columns, so column equality implies
    // ranking equality — assert it anyway as the user-facing claim.
    assert_eq!(repaired.ranked(), cold.ranked(), "ranking");
}

/// Runs `plan` at the genesis epoch, applies `delta`, refreshes, and
/// checks the repaired result against a cold session at the new epoch.
/// Returns the session's repair counter contribution (1 when the repair
/// path actually ran, 0 when the delta left the subspace untouched).
fn check_repair(catalog: Catalog, plan: &QueryPlan, delta: &CatalogDelta) -> u64 {
    let store = Arc::new(CatalogStore::new(catalog));
    let session = Session::over(Arc::clone(&store));
    session.run(plan).expect("genesis run");
    store.apply(delta).expect("delta applies");
    let repaired = session.refresh(plan).expect("refresh");
    let cold = Session::new(session.catalog())
        .run(plan)
        .expect("cold run at the new epoch");
    assert_bit_identical(&repaired, &cold);
    session.cache_stats().repairs
}

fn orin() -> ComputePlatform {
    ComputePlatform::builder("Orin NX")
        .kind(ComputeKind::EmbeddedGpu)
        .mass(Grams::new(210.0))
        .tdp(Watts::new(25.0))
        .build()
        .unwrap()
}

fn wide_cam() -> Sensor {
    Sensor::new(
        "Wide Cam 90",
        SensorModality::RgbCamera,
        Hertz::new(90.0),
        Meters::new(7.0),
        Grams::new(24.0),
    )
    .unwrap()
}

/// The Table II-flavored plan mix the repair must survive: default
/// objectives, a constrained 4-objective plan, a knob sweep, and an
/// explicit subspace restriction.
fn plan_mix(catalog: &Catalog) -> Vec<QueryPlan> {
    let tx2 = catalog.compute_id(names::TX2).unwrap();
    let pi = catalog.compute_id(names::RAS_PI4).unwrap();
    let pelican = catalog.airframe_id(names::ASCTEC_PELICAN).unwrap();
    vec![
        QueryPlan::builder().build().unwrap(),
        QueryPlan::builder()
            .objectives(&[
                Objective::SafeVelocity,
                Objective::TotalTdp,
                Objective::PayloadMass,
                Objective::MissionEnergyWhPerKm,
            ])
            .constraint(f1_skyline::query::Constraint::MaxTotalTdp(Watts::new(20.0)))
            .build()
            .unwrap(),
        QueryPlan::builder()
            .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
            .sweep(KnobSweep::new(Knob::PayloadDelta, vec![0.0, 150.0]))
            .build()
            .unwrap(),
        QueryPlan::builder()
            .airframes(&[pelican])
            .computes(&[tx2, pi])
            .build()
            .unwrap(),
    ]
}

#[test]
fn repair_matches_cold_across_paper_catalog_deltas() {
    let deltas: Vec<(&str, CatalogDelta)> = vec![
        (
            "add a compute and characterize it",
            CatalogDelta::new()
                .add_compute(orin())
                .patch_throughput("Orin NX", names::DRONET, Hertz::new(400.0))
                .patch_throughput("Orin NX", names::TRAILNET, Hertz::new(120.0)),
        ),
        (
            "retire a frontier-heavy compute",
            CatalogDelta::new().retire_compute(names::TX2),
        ),
        (
            "patch an existing throughput",
            CatalogDelta::new().patch_throughput(names::TX2, names::DRONET, Hertz::new(220.0)),
        ),
        (
            "newly characterize an existing pair",
            CatalogDelta::new().patch_throughput(names::NCS, names::TRAILNET, Hertz::new(40.0)),
        ),
        ("add a sensor", CatalogDelta::new().add_sensor(wide_cam())),
        (
            "retire an airframe and a sensor",
            CatalogDelta::new()
                .retire_airframe(names::DJI_SPARK)
                .retire_sensor(names::RGB_60),
        ),
        (
            "combined add + retire + patch",
            CatalogDelta::new()
                .add_compute(orin())
                .add_sensor(wide_cam())
                .patch_throughput("Orin NX", names::DRONET, Hertz::new(400.0))
                .patch_throughput(names::RAS_PI4, names::DRONET, Hertz::new(17.0))
                .retire_compute(names::UPBOARD),
        ),
    ];
    for (label, delta) in &deltas {
        for (p, plan) in plan_mix(&Catalog::paper()).iter().enumerate() {
            let repairs = check_repair(Catalog::paper(), plan, delta);
            assert!(repairs <= 1, "{label} / plan {p}");
        }
    }
}

#[test]
fn repair_handles_retiring_every_candidate() {
    let catalog = Catalog::paper();
    let mut delta = CatalogDelta::new();
    for compute in catalog.computes() {
        delta = delta.retire_compute(compute.name());
    }
    let plan = QueryPlan::builder().build().unwrap();
    check_repair(catalog, &plan, &delta);

    // And explicitly: the refreshed result is empty, with an empty
    // frontier — every cached candidate was masked out.
    let store = Arc::new(CatalogStore::new(Catalog::paper()));
    let session = Session::over(Arc::clone(&store));
    let before = session.run(&plan).unwrap();
    assert!(!before.is_empty());
    store.apply(&delta).unwrap();
    let after = session.refresh(&plan).unwrap();
    assert!(after.is_empty());
    assert!(after.frontier().is_empty());
    assert_eq!(after.dropped(), 0);
}

#[test]
fn noop_and_disjoint_deltas_reuse_the_cached_result() {
    let store = Arc::new(CatalogStore::new(Catalog::paper()));
    let session = Session::over(Arc::clone(&store));
    let plan = QueryPlan::builder().build().unwrap();
    let first = session.run(&plan).unwrap();

    // A no-op delta advances the epoch but the refreshed result is the
    // very same Arc — no pass, no repair.
    store.apply(&CatalogDelta::new()).unwrap();
    assert_eq!(session.epoch().get(), 1);
    let refreshed = session.refresh(&plan).unwrap();
    assert!(Arc::ptr_eq(&first, &refreshed));
    assert_eq!(session.cache_stats().repairs, 0);

    // A delta outside the plan's subspace behaves the same: the default
    // plan spans every family, so restrict the plan instead.
    let catalog = session.catalog();
    let tx2 = catalog.compute_id(names::TX2).unwrap();
    let restricted = QueryPlan::builder().computes(&[tx2]).build().unwrap();
    let cached = session.run(&restricted).unwrap();
    store
        .apply(&CatalogDelta::new().patch_throughput(names::NCS, names::TRAILNET, Hertz::new(40.0)))
        .unwrap();
    let refreshed = session.refresh(&restricted).unwrap();
    assert!(Arc::ptr_eq(&cached, &refreshed));
    assert_eq!(session.cache_stats().repairs, 0);
    // Still bit-identical to a cold run at the new epoch.
    let cold = Session::new(session.catalog()).run(&restricted).unwrap();
    assert_bit_identical(&refreshed, &cold);
}

#[test]
fn run_at_pins_epochs_and_rejects_unknown_ones() {
    let store = Arc::new(CatalogStore::new(Catalog::paper()));
    let session = Session::over(Arc::clone(&store));
    let plan = QueryPlan::builder().build().unwrap();
    let genesis = session.run(&plan).unwrap();
    store
        .apply(&CatalogDelta::new().patch_throughput(names::TX2, names::DRONET, Hertz::new(500.0)))
        .unwrap();
    // The pinned run reproduces the genesis result (cache hit — same
    // Arc); the current run sees the patch.
    let pinned = session.run_at(&plan, CatalogEpoch::GENESIS).unwrap();
    assert!(Arc::ptr_eq(&genesis, &pinned));
    let current = session.run(&plan).unwrap();
    assert_ne!(*current, *genesis);
    // A fresh session over the same store recomputes the pinned epoch
    // bit-identically.
    let fresh = Session::over(Arc::clone(&store));
    let recomputed = fresh.run_at(&plan, CatalogEpoch::GENESIS).unwrap();
    assert_eq!(*recomputed, *genesis);
    match session.run_at(&plan, CatalogEpoch::from_raw(99)) {
        Err(SkylineError::UnknownEpoch { requested, latest }) => {
            assert_eq!((requested, latest), (99, 1));
        }
        other => panic!("expected UnknownEpoch, got {other:?}"),
    }
}

#[test]
fn empty_batch_and_zero_candidate_catalogs() {
    // Empty batch: no passes, no entries, empty result vector.
    let session = Session::new(Arc::new(Catalog::paper()));
    let results = session.run_batch(&[]).unwrap();
    assert!(results.is_empty());
    assert_eq!(session.cache_stats().entries, 0);

    // A completely empty catalog evaluates to an empty result set.
    let empty = Session::new(Arc::new(Catalog::new()));
    let plan = QueryPlan::builder().build().unwrap();
    let result = empty.run(&plan).unwrap();
    assert!(result.is_empty());
    assert!(result.frontier().is_empty());
    assert_eq!(
        (
            result.dropped(),
            result.uncharacterized(),
            result.nonfinite()
        ),
        (0, 0, 0)
    );

    // Parts but no characterized throughput pairs: every combination is
    // uncharacterized, zero candidates evaluate.
    let mut parts_only = Catalog::new();
    parts_only
        .add_airframe(
            f1_components::Airframe::builder("Frame")
                .base_mass(Grams::new(500.0))
                .rotor_count(4)
                .rotor_pull_gf(400.0)
                .frame_size(Millimeters::new(400.0))
                .build()
                .unwrap(),
        )
        .unwrap();
    parts_only.add_sensor(wide_cam()).unwrap();
    parts_only.add_compute(orin()).unwrap();
    parts_only
        .add_algorithm(f1_components::AutonomyAlgorithm::end_to_end("Net").unwrap())
        .unwrap();
    let session = Session::new(Arc::new(parts_only));
    let result = session.run(&plan).unwrap();
    assert!(result.is_empty());
    assert_eq!(result.uncharacterized(), 1);
}

#[test]
fn lru_eviction_caps_the_memo_cache() {
    let session = Session::new(Arc::new(Catalog::paper())).with_cache_capacity(2);
    let plans: Vec<QueryPlan> = [5.0, 10.0, 20.0]
        .iter()
        .map(|&w| {
            QueryPlan::builder()
                .constraint(f1_skyline::query::Constraint::MaxTotalTdp(Watts::new(w)))
                .build()
                .unwrap()
        })
        .collect();
    session.run(&plans[0]).unwrap();
    session.run(&plans[1]).unwrap();
    // Touch plan 0 so plan 1 is the LRU victim when plan 2 arrives.
    session.run(&plans[0]).unwrap();
    session.run(&plans[2]).unwrap();
    let stats = session.cache_stats();
    assert_eq!(stats.entries, 2);
    assert_eq!(stats.evictions, 1);
    // Plan 0 survived (hit); plan 1 was evicted (miss + recompute).
    let hits_before = session.cache_stats().hits;
    session.run(&plans[0]).unwrap();
    assert_eq!(session.cache_stats().hits, hits_before + 1);
    let misses_before = session.cache_stats().misses;
    session.run(&plans[1]).unwrap();
    assert_eq!(session.cache_stats().misses, misses_before + 1);
    assert_eq!(session.cache_stats().evictions, 2);
}

/// The PR acceptance at scale: a ≤1% delta over a 10⁵-candidate catalog
/// repairs bit-identically and — in release mode — at least 3× faster
/// than the cold pass it replaces (the bench records the full margin;
/// CI asserts a conservative floor so the claim cannot silently rot).
/// A second, nastier delta (retiring a platform, invalidating frontier
/// points) then checks exactness of the slower survivor-skyline
/// fallback at the same scale.
#[test]
fn scale_delta_repair_is_exact_and_fast() {
    // 47³ = 103 823 candidates in release; 22³ ≈ 10⁴ under debug.
    let n_per_family = if cfg!(debug_assertions) { 22 } else { 47 };
    let catalog = Catalog::synthesize(42, n_per_family);
    let airframe = catalog.airframe_entries().next().map(|(id, _)| id).unwrap();
    let plan = QueryPlan::builder()
        .airframes(&[airframe])
        .objectives(&[
            Objective::SafeVelocity,
            Objective::TotalTdp,
            Objective::PayloadMass,
            Objective::MissionEnergyWhPerKm,
        ])
        .build()
        .unwrap();

    let store = Arc::new(CatalogStore::new(catalog));
    let session = Session::over(Arc::clone(&store));
    let cached = session.run(&plan).unwrap();

    // A ≤1% delta on the fast path (no frontier point invalidated):
    // add one platform characterized on 3 algorithms (n new candidates
    // per sensor-triple → 3 × n sensors jobs) and re-characterize 10
    // platform × algorithm pairs chosen OFF the cached frontier
    // (10 × n sensors re-evaluations) — at 47 per family that is
    // 13 × 47 = 611 of 103 823 candidates, ~0.6%.
    let catalog = session.catalog();
    let frontier_pairs: Vec<(String, String)> = cached
        .frontier_points()
        .map(|p| {
            (
                catalog.compute_by_id(p.candidate.compute).name().to_owned(),
                catalog
                    .algorithm_by_id(p.candidate.algorithm)
                    .name()
                    .to_owned(),
            )
        })
        .collect();
    let algorithms: Vec<&str> = catalog.algorithms().map(|a| a.name()).collect();
    let mut delta = CatalogDelta::new().add_compute(orin());
    for &algorithm in algorithms.iter().take(3) {
        delta = delta.patch_throughput("Orin NX", algorithm, Hertz::new(250.0));
    }
    let mut patched = 0;
    'patch: for compute in catalog.computes() {
        for (g, &algorithm) in algorithms.iter().enumerate() {
            let pair_on_frontier = frontier_pairs
                .iter()
                .any(|(c, a)| c == compute.name() && a == algorithm);
            if pair_on_frontier || catalog.throughput(compute.name(), algorithm).is_err() {
                continue;
            }
            delta = delta.patch_throughput(compute.name(), algorithm, Hertz::new(90.0 + g as f64));
            patched += 1;
            if patched == 10 {
                break 'patch;
            }
            break; // at most one patched pair per platform
        }
    }
    assert_eq!(patched, 10, "found 10 off-frontier pairs to patch");
    store.apply(&delta).unwrap();

    let start = Instant::now();
    let repaired = session.refresh(&plan).unwrap();
    let repair_time = start.elapsed();
    assert_eq!(session.cache_stats().repairs, 1);

    let cold_session = Session::over(Arc::clone(&store));
    let start = Instant::now();
    let cold = cold_session.run(&plan).unwrap();
    let cold_time = start.elapsed();

    assert_bit_identical(&repaired, &cold);

    if !cfg!(debug_assertions) {
        // Warmed comparison: repeat both paths once on fresh sessions to
        // shake allocator noise, keep the faster of two runs each.
        let repair_time = repair_time.min(timed_refresh(&store, &plan));
        let cold_time = cold_time.min({
            let s = Session::over(Arc::clone(&store));
            let t = Instant::now();
            s.run(&plan).unwrap();
            t.elapsed()
        });
        eprintln!("delta repair {repair_time:?} vs cold {cold_time:?}");
        assert!(
            repair_time * 3 <= cold_time,
            "incremental repair must be >= 3x faster: repair {repair_time:?} vs cold {cold_time:?}"
        );
    }

    // Fallback exactness at scale: retire a platform that carries
    // frontier points, forcing the survivor-skyline recompute.
    let retired = frontier_pairs[0].0.clone();
    store
        .apply(&CatalogDelta::new().retire_compute(&retired))
        .unwrap();
    let repaired = session.refresh(&plan).unwrap();
    assert_eq!(session.cache_stats().repairs, 2);
    let cold = Session::over(Arc::clone(&store)).run(&plan).unwrap();
    assert_bit_identical(&repaired, &cold);
}

/// One refresh through a fresh session (cold genesis run excluded from
/// the timing).
fn timed_refresh(store: &Arc<CatalogStore>, plan: &QueryPlan) -> Duration {
    let session = Session::over(Arc::clone(store));
    session.run_at(plan, CatalogEpoch::GENESIS).unwrap();
    let start = Instant::now();
    session.refresh(plan).unwrap();
    start.elapsed()
}

/// Chained refreshes splice new point-store segments per repaired slab;
/// past [`COMPACT_SEGMENT_THRESHOLD`] the session folds them back into
/// one contiguous segment. Long-lived sessions must see bounded
/// indirection AND bit-identical results straight through a compaction.
#[test]
fn chained_refreshes_compact_segment_growth() {
    let plan = QueryPlan::builder().build().unwrap();
    let store = Arc::new(CatalogStore::new(Catalog::paper()));
    let session = Session::over(Arc::clone(&store));
    session.run(&plan).unwrap();

    let mut counts = Vec::new();
    for i in 0..12u32 {
        store
            .apply(&CatalogDelta::new().patch_throughput(
                names::TX2,
                names::DRONET,
                Hertz::new(200.0 + f64::from(i)),
            ))
            .unwrap();
        let repaired = session.refresh(&plan).unwrap();
        counts.push(repaired.segment_count());
        assert!(
            repaired.segment_count() <= COMPACT_SEGMENT_THRESHOLD,
            "segment count stays bounded: {counts:?}"
        );
    }
    assert_eq!(session.cache_stats().repairs, 12, "every delta repaired");
    assert!(
        counts.iter().any(|&c| c > 1),
        "repairs do splice segments: {counts:?}"
    );
    assert!(
        counts.windows(2).any(|w| w[1] < w[0]),
        "compaction folded segments back down: {counts:?}"
    );

    let cold = Session::over(Arc::clone(&store)).run(&plan).unwrap();
    let repaired = session.refresh(&plan).unwrap();
    assert_bit_identical(&repaired, &cold);
}

/// Duplicate subspace ids and duplicate sweep values canonicalize at
/// `PlanBuilder::build`: the sloppy spelling produces the same plan key
/// (one memo entry) and — because repair never sees the duplicates —
/// a touching delta still takes the incremental path.
#[test]
fn duplicate_plan_spellings_canonicalize_and_repair_incrementally() {
    let catalog = Catalog::paper();
    let tx2 = catalog.compute_id(names::TX2).unwrap();
    let pi = catalog.compute_id(names::RAS_PI4).unwrap();
    let dup = QueryPlan::builder()
        .computes(&[tx2, pi, tx2, pi])
        .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5, 1.0]))
        .build()
        .unwrap();
    let canonical = QueryPlan::builder()
        .computes(&[tx2, pi])
        .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
        .build()
        .unwrap();
    assert_eq!(dup.computes(), canonical.computes());
    assert_eq!(dup.settings(), canonical.settings());
    assert_eq!(dup.key(), canonical.key());

    let store = Arc::new(CatalogStore::new(catalog));
    let session = Session::over(Arc::clone(&store));
    let a = session.run(&dup).unwrap();
    let b = session.run(&canonical).unwrap();
    assert!(
        Arc::ptr_eq(&a, &b),
        "both spellings memoize to one cache entry"
    );

    store
        .apply(&CatalogDelta::new().patch_throughput(names::TX2, names::DRONET, Hertz::new(123.0)))
        .unwrap();
    let repaired = session.refresh(&dup).unwrap();
    assert_eq!(
        session.cache_stats().repairs,
        1,
        "deduped plan repairs incrementally instead of bailing cold"
    );
    let cold = Session::over(Arc::clone(&store)).run(&canonical).unwrap();
    assert_bit_identical(&repaired, &cold);
}
