//! Bit-identity of the sharded streaming executor: for every plan
//! shape, a `KeepPoints::FrontierOnly` run must agree with the
//! materializing fused pass **to the bit** — same frontier indices,
//! bit-equal stored rows, the exact top-k ranking prefix, and identical
//! dropped / uncharacterized / nonfinite accounting. Covers random
//! plans over the paper catalog, multi-shard + multi-block synthetic
//! spaces (candidate counts past `SHARD_SIZE`, sweeps and airframe
//! subsets), the battery-backed endurance objective, the `Auto` mode
//! decision, and delta `refresh` over streamed cache entries
//! (untouched → same `Arc`, touched → exact cold re-stream).

use std::sync::Arc;

use f1_components::{names, Catalog, CatalogDelta, CatalogStore};
use f1_skyline::plan::{KeepPoints, QueryPlan};
use f1_skyline::query::{Constraint, Knob, KnobSweep, Objective};
use f1_skyline::session::{ResultSet, Session};
use f1_skyline::shard::{SHARD_SIZE, STREAM_TOP_K};
use f1_units::{Hertz, MetersPerSecond, Watts};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A seed-derived random plan (same generator family as
/// `session_properties`), built in the requested keep-points mode so a
/// streaming twin shares every other plan field with its materializing
/// reference.
fn random_plan(seed: u64, with_sweep: bool, keep: KeepPoints) -> QueryPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = [
        Objective::SafeVelocity,
        Objective::TotalTdp,
        Objective::PayloadMass,
        Objective::MissionEnergyWhPerKm,
    ];
    let bits = rng.gen_range(0u32..16);
    let mut objectives: Vec<Objective> = pool
        .iter()
        .enumerate()
        .filter(|&(i, _)| bits & (1 << i) != 0)
        .map(|(_, &o)| o)
        .collect();
    if objectives.is_empty() {
        objectives.push(pool[rng.gen_range(0usize..pool.len())]);
    }
    let rotation = rng.gen_range(0usize..objectives.len());
    objectives.rotate_left(rotation);
    let mut builder = QueryPlan::builder().objectives(&objectives);
    if rng.gen_range(0u32..2) == 0 {
        builder = builder.constraint(Constraint::MaxTotalTdp(Watts::new(
            rng.gen_range(0.5f64..40.0),
        )));
    }
    if rng.gen_range(0u32..2) == 0 {
        builder = builder.constraint(Constraint::MinVelocity(MetersPerSecond::new(
            rng.gen_range(0.01f64..5.0),
        )));
    }
    if rng.gen_range(0u32..2) == 0 {
        builder = builder.constraint(Constraint::FeasibleOnly);
    }
    if with_sweep {
        let value = rng.gen_range(0.5f64..2.0);
        let (knob, values) = match rng.gen_range(0u32..6) {
            0 => (Knob::TdpScale, vec![1.0, value]),
            1 => (Knob::SensorRateScale, vec![1.0, value]),
            2 => (Knob::SensorRangeScale, vec![1.0, value]),
            3 => (Knob::PayloadDelta, vec![0.0, value * 100.0]),
            4 => (Knob::WeightScale, vec![1.0, value]),
            _ => (Knob::RotorPull, vec![1.0, value]),
        };
        builder = builder.sweep(KnobSweep::new(knob, values));
    }
    builder
        .keep_points(keep)
        .build()
        .expect("generated plans are valid")
}

/// The full bit-identity contract between a streamed run and its
/// materializing reference: counters, frontier, stored rows/points, and
/// the top-k ranking prefix.
fn assert_stream_matches(streamed: &ResultSet, full: &ResultSet) {
    assert!(streamed.is_streamed(), "twin plan must stream");
    assert!(!full.is_streamed(), "reference plan must materialize");
    assert_eq!(streamed.len(), full.len(), "logical kept count");
    assert_eq!(streamed.dropped(), full.dropped(), "dropped count");
    assert_eq!(
        streamed.uncharacterized(),
        full.uncharacterized(),
        "uncharacterized count"
    );
    assert_eq!(streamed.nonfinite(), full.nonfinite(), "nonfinite count");
    assert_eq!(streamed.frontier(), full.frontier(), "frontier indices");

    // The bounded ranking is the exact prefix of the full ranking,
    // including feasible-first order and enumeration-order ties.
    let full_ranked = full.ranked();
    let take = STREAM_TOP_K.min(full_ranked.len());
    assert_eq!(streamed.ranked(), &full_ranked[..take], "top-k ranking");
    let k = 7.min(take);
    assert_eq!(streamed.top_k(k), full.top_k(k), "top_k({k})");

    // Stored set is exactly frontier ∪ top-k, ascending and deduped.
    let mut expected: Vec<usize> = streamed
        .frontier()
        .iter()
        .copied()
        .chain(streamed.ranked())
        .collect();
    expected.sort_unstable();
    expected.dedup();
    let stored = streamed.stored_indices().expect("streamed results store");
    assert_eq!(stored, &expected[..], "stored = frontier ∪ top-k");

    // Every stored point and row is bit-identical to the materializing
    // pass (to_bits — `==` would conflate -0.0 with 0.0).
    for &i in stored {
        assert_eq!(streamed.point(i), full.point(i), "point {i}");
        let (a, b) = (streamed.row(i), full.row(i));
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "row {i}: {a:?} vs {b:?}"
        );
    }
    assert_eq!(
        streamed.best().is_some(),
        full.best().is_some(),
        "best() presence"
    );
    if let (Some(a), Some(b)) = (streamed.best(), full.best()) {
        assert_eq!(a, b, "best() point");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random plan shapes over the paper catalog: the streaming twin of
    /// every generated plan is bit-identical to its materializing
    /// reference.
    #[test]
    fn streaming_matches_materializing(seed in 0u64..1_000_000, sweep_bit in 0u32..2) {
        let with_sweep = sweep_bit == 1;
        let catalog = Arc::new(Catalog::paper());
        let full_plan = random_plan(seed, with_sweep, KeepPoints::All);
        let stream_plan = random_plan(seed, with_sweep, KeepPoints::FrontierOnly);
        let session = Session::new(catalog);
        let full = session.run(&full_plan).unwrap();
        let streamed = session.run(&stream_plan).unwrap();
        assert_stream_matches(&streamed, &full);
    }

    /// Streamed cache hits return the very same `Arc`, and an
    /// independent session re-streams the plan bit-identically.
    #[test]
    fn streamed_cache_hits_are_bit_identical(seed in 0u64..1_000_000) {
        let plan = random_plan(seed, true, KeepPoints::FrontierOnly);
        let catalog = Arc::new(Catalog::paper());
        let session = Session::new(Arc::clone(&catalog));
        let first = session.run(&plan).unwrap();
        let hit = session.run(&plan).unwrap();
        prop_assert!(Arc::ptr_eq(&first, &hit));
        let fresh = Session::new(catalog).run(&plan).unwrap();
        prop_assert_eq!(&*first, &*fresh);
        prop_assert_eq!(first.frontier(), fresh.frontier());
        prop_assert_eq!(first.ranked(), fresh.ranked());
    }
}

/// Shard and block boundaries: a synthetic space whose per-block
/// candidate count (41³ = 68 921) exceeds `SHARD_SIZE`, enumerated over
/// 2 airframes × 2 knob settings — 8 shards across 4 blocks — agrees
/// with the materializing pass bit-for-bit.
#[test]
fn multi_shard_multi_block_space_streams_bit_identically() {
    const N: usize = 41;
    const _: () = assert!(
        N * N * N > SHARD_SIZE,
        "a single block must span several shards"
    );
    let catalog = Catalog::synthesize(11, N);
    let airframes: Vec<_> = catalog
        .airframe_entries()
        .take(2)
        .map(|(id, _)| id)
        .collect();
    let build = |keep: KeepPoints| {
        QueryPlan::builder()
            .airframes(&airframes)
            .objectives(&[
                Objective::SafeVelocity,
                Objective::TotalTdp,
                Objective::PayloadMass,
                Objective::MissionEnergyWhPerKm,
            ])
            .constraint(Constraint::MaxTotalTdp(Watts::new(30.0)))
            .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.7]))
            .keep_points(keep)
            .build()
            .unwrap()
    };
    let session = Session::new(Arc::new(catalog));
    let full = session.run(&build(KeepPoints::All)).unwrap();
    let streamed = session.run(&build(KeepPoints::FrontierOnly)).unwrap();
    assert_eq!(full.len() + full.dropped(), 2 * 2 * N * N * N);
    assert_stream_matches(&streamed, &full);
}

/// The battery-backed endurance objective streams identically: the
/// deferred per-pair power/endurance hoist must reproduce the fused
/// pass's `fill_values` construction (including the zero-endurance
/// infeasible convention) bit-for-bit.
#[test]
fn endurance_objective_streams_bit_identically() {
    let catalog = Catalog::paper();
    let battery = catalog.battery_id(names::BATTERY_PELICAN).unwrap();
    let build = |keep: KeepPoints| {
        QueryPlan::builder()
            .objectives(&[
                Objective::HoverEnduranceMin,
                Objective::SafeVelocity,
                Objective::TotalTdp,
            ])
            .battery(battery)
            .keep_points(keep)
            .build()
            .unwrap()
    };
    let session = Session::new(Arc::new(catalog));
    let full = session.run(&build(KeepPoints::All)).unwrap();
    let streamed = session.run(&build(KeepPoints::FrontierOnly)).unwrap();
    assert_stream_matches(&streamed, &full);
}

/// `KeepPoints::Auto` only streams past the job-count threshold: the
/// paper catalog materializes (points() works), while `FrontierOnly`
/// streams even the smallest space and `All` never streams.
#[test]
fn auto_mode_materializes_small_spaces() {
    let session = Session::new(Arc::new(Catalog::paper()));
    let auto = session.run(&QueryPlan::builder().build().unwrap()).unwrap();
    assert!(!auto.is_streamed());
    assert!(!auto.points().is_empty());

    let forced = session
        .run(
            &QueryPlan::builder()
                .keep_points(KeepPoints::FrontierOnly)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert!(forced.is_streamed());
    assert_stream_matches(&forced, &auto);

    let all = session
        .run(
            &QueryPlan::builder()
                .keep_points(KeepPoints::All)
                .build()
                .unwrap(),
        )
        .unwrap();
    assert!(!all.is_streamed());
    assert_eq!(*all, *auto);
}

/// Keep-points mode is part of the plan identity: the three modes have
/// distinct canonical keys, every key round-trips, and the mode
/// survives the trip.
#[test]
fn keep_points_round_trips_through_plan_keys() {
    let keys: Vec<String> = [KeepPoints::Auto, KeepPoints::All, KeepPoints::FrontierOnly]
        .into_iter()
        .map(|keep| {
            let plan = QueryPlan::builder().keep_points(keep).build().unwrap();
            let replayed = QueryPlan::from_key(plan.key()).unwrap();
            assert_eq!(replayed, plan);
            assert_eq!(replayed.keep_points(), keep);
            plan.key().to_owned()
        })
        .collect();
    assert_eq!(
        keys.iter().collect::<std::collections::HashSet<_>>().len(),
        3,
        "modes must not collide in the cache"
    );
}

/// A streamed result with nothing to keep: constraints that drop every
/// candidate leave an empty frontier, empty stored set and exact
/// accounting.
#[test]
fn fully_constrained_stream_is_empty_with_exact_accounting() {
    let build = |keep: KeepPoints| {
        QueryPlan::builder()
            .constraint(Constraint::MaxTotalTdp(Watts::new(1e-9)))
            .keep_points(keep)
            .build()
            .unwrap()
    };
    let session = Session::new(Arc::new(Catalog::paper()));
    let full = session.run(&build(KeepPoints::All)).unwrap();
    let streamed = session.run(&build(KeepPoints::FrontierOnly)).unwrap();
    assert!(streamed.is_empty());
    assert!(streamed.frontier().is_empty());
    assert_eq!(streamed.stored_indices(), Some(&[][..]));
    assert!(streamed.ranked().is_empty());
    assert!(streamed.best().is_none());
    assert_stream_matches(&streamed, &full);
}

/// Delta `refresh` over a streamed cache entry: a delta outside the
/// plan's subspace returns the cached `Arc` untouched; a touching delta
/// re-streams cold, bit-identical to a fresh session at the new epoch
/// (a streamed result keeps no survivor slab to splice, so there is no
/// incremental path to get subtly wrong).
#[test]
fn streamed_refresh_is_unchanged_or_exact_cold_restream() {
    let store = Arc::new(CatalogStore::new(Catalog::paper()));
    let session = Session::over(Arc::clone(&store));
    let catalog = session.catalog();
    let tx2 = catalog.compute_id(names::TX2).unwrap();
    let plan = QueryPlan::builder()
        .computes(&[tx2])
        .keep_points(KeepPoints::FrontierOnly)
        .build()
        .unwrap();
    let cached = session.run(&plan).unwrap();
    assert!(cached.is_streamed());

    // Disjoint delta: a throughput patch on a compute the plan excludes.
    store
        .apply(&CatalogDelta::new().patch_throughput(names::NCS, names::TRAILNET, Hertz::new(40.0)))
        .unwrap();
    let refreshed = session.refresh(&plan).unwrap();
    assert!(Arc::ptr_eq(&cached, &refreshed));
    assert_eq!(session.cache_stats().repairs, 0);

    // Touching delta: patch a throughput inside the subspace. The
    // refresh must re-stream (never splice) and equal both a fresh cold
    // stream and the materializing reference at the new epoch.
    store
        .apply(&CatalogDelta::new().patch_throughput(names::TX2, names::DRONET, Hertz::new(220.0)))
        .unwrap();
    let refreshed = session.refresh(&plan).unwrap();
    assert!(!Arc::ptr_eq(&cached, &refreshed));
    assert!(refreshed.is_streamed());
    assert_eq!(
        session.cache_stats().repairs,
        0,
        "streamed refresh never repairs in place"
    );
    let cold = Session::over(Arc::clone(&store)).run(&plan).unwrap();
    assert_eq!(*refreshed, *cold);
    let full_plan = QueryPlan::builder()
        .computes(&[tx2])
        .keep_points(KeepPoints::All)
        .build()
        .unwrap();
    let full = Session::over(store).run(&full_plan).unwrap();
    assert_stream_matches(&refreshed, &full);
}
