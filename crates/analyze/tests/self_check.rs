//! Self-check: the analyzer must flag a deliberately-bad fixture.
//!
//! A gate that cannot fail is not a gate. CI runs this suite before the
//! clean `--workspace --deny` run, so a regression that silences a pass
//! (an over-broad exemption, a lexer bug swallowing tokens) fails the
//! build even while the real tree stays green.

use std::path::PathBuf;

use f1_analyze::source::SourceFile;
use f1_analyze::{passes, run_over, Options};

/// A fixture with one planted defect per pass, at a designated rel
/// path so every pass is in scope.
const BAD_FIXTURE: &str = r#"
struct S {
    first: std::sync::Mutex<u32>,
    second: std::sync::Mutex<u32>,
    index: HashMap<String, u32>,
}

impl S {
    fn forward(&self) {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        drop(b);
        drop(a);
    }

    fn backward(&self) {
        let b = self.second.lock().unwrap();
        let a = self.first.lock().unwrap();
        drop(a);
        drop(b);
    }

    fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.index.iter() {
            out.push_str(&format!("{k}={:.3}\n", f64::from(*v)));
        }
        out
    }

    fn boom(&self, v: &[u32]) -> u32 {
        if v.is_empty() {
            panic!("empty");
        }
        v[0]
    }

    fn stale(&self) -> u32 {
        // analyze::allow(panic, reason = "nothing here can panic — this allow is stale")
        1
    }
}
"#;

fn bad_findings() -> Vec<f1_analyze::diag::Finding> {
    let file = SourceFile::parse("crates/serve/src/server.rs", BAD_FIXTURE);
    let mut options = Options::workspace(PathBuf::from("/nonexistent"));
    // Every source pass; wire is exercised separately against a
    // tampered golden corpus (it needs a root on disk, not a source).
    options.passes = vec!["panic".into(), "lock".into(), "determinism".into()];
    run_over(&options, &[file])
}

#[test]
fn panic_pass_flags_the_planted_defects() {
    let findings = bad_findings();
    let panics: Vec<_> = findings.iter().filter(|f| f.pass == "panic").collect();
    assert!(
        panics.iter().any(|f| f.message.contains("`.unwrap()`")),
        "unwrap not flagged: {findings:?}"
    );
    assert!(
        panics.iter().any(|f| f.message.contains("`panic!`")),
        "panic! not flagged: {findings:?}"
    );
    assert!(
        panics.iter().any(|f| f.message.contains("direct indexing")),
        "indexing not flagged: {findings:?}"
    );
}

#[test]
fn lock_pass_flags_the_planted_cycle() {
    let findings = bad_findings();
    assert!(
        findings
            .iter()
            .any(|f| f.pass == "lock" && f.message.contains("cycle")),
        "first→second vs second→first cycle not flagged: {findings:?}"
    );
}

#[test]
fn determinism_pass_flags_the_planted_defects() {
    let findings = bad_findings();
    let det: Vec<_> = findings
        .iter()
        .filter(|f| f.pass == "determinism")
        .collect();
    assert!(
        det.iter().any(|f| f.message.contains("hash-ordered")),
        "hash iteration not flagged: {findings:?}"
    );
    assert!(
        det.iter()
            .any(|f| f.message.contains("shortest-round-trip")),
        "float formatting not flagged: {findings:?}"
    );
}

#[test]
fn stale_allows_are_findings_on_a_full_run() {
    let file = SourceFile::parse("crates/serve/src/server.rs", BAD_FIXTURE);
    // Empty pass list = all passes + annotation hygiene; point the wire
    // pass at a root with no goldens so it reports missing goldens
    // rather than drift — those findings are filtered out here.
    let options = Options::workspace(std::env::temp_dir().join("f1-analyze-no-goldens"));
    let findings = run_over(&options, &[file]);
    assert!(
        findings
            .iter()
            .any(|f| f.pass == "annotation" && f.message.contains("stale")),
        "the unused allow in `stale()` must be reported: {findings:?}"
    );
}

#[test]
fn wire_pass_flags_golden_drift() {
    // Copy the real golden corpus into a scratch root, tamper one byte,
    // and the drift check must fire.
    let real_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <root>/crates/analyze")
        .to_path_buf();
    let scratch =
        std::env::temp_dir().join(format!("f1-analyze-self-check-{}", std::process::id()));
    let golden = scratch.join("crates/analyze/golden");
    std::fs::create_dir_all(&golden).expect("scratch golden dir");
    for entry in std::fs::read_dir(real_root.join("crates/analyze/golden")).expect("real goldens") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), golden.join(entry.file_name())).expect("copy golden");
    }
    let clean = passes::wire::check(&scratch, false);
    assert!(clean.is_empty(), "untampered copy must be clean: {clean:?}");

    let keys = golden.join("plan_keys.txt");
    let mut text = std::fs::read_to_string(&keys).expect("read plan keys");
    text.push_str("f1.plan.v1|tampered\n");
    std::fs::write(&keys, text).expect("tamper plan keys");
    let findings = passes::wire::check(&scratch, false);
    assert!(
        findings.iter().any(|f| f.pass == "wire"
            && f.file.contains("plan_keys")
            && f.message.contains("drifted")),
        "tampered plan_keys.txt must be reported as drift: {findings:?}"
    );
    std::fs::remove_dir_all(&scratch).ok();
}
