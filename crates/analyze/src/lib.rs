//! `f1-analyze` — the workspace invariant checker.
//!
//! A serving system earns its availability story twice: once in the
//! code and once in the checks that keep the code honest. This crate is
//! the second half, hand-rolled on `std` (the workspace builds offline
//! — no `syn`, no proc macros): a comment/string-aware Rust tokenizer
//! ([`lexer`]), a per-file source model ([`source`]) and four analyses
//! ([`passes`]) over the workspace sources:
//!
//! 1. **Panic-path audit** ([`passes::panics`]) — no unannotated
//!    `unwrap`/`expect`/`panic!`/direct indexing in the designated
//!    server-facing modules.
//! 2. **Lock-order analysis** ([`passes::locks`]) — the inter-lock
//!    acquisition graph of the scheduler/session/store must stay
//!    acyclic, and no blocking call may run while holding a
//!    non-exempted lock.
//! 3. **Determinism lint** ([`passes::determinism`]) — no hash-order
//!    iteration or ad-hoc float formatting on paths that feed plan
//!    keys, wire bodies or digests.
//! 4. **Wire-format drift check** ([`passes::wire`]) — plan keys,
//!    `ResultSet::to_json`, protocol bodies and catalog-delta
//!    digests are byte-compared against a golden corpus.
//!
//! Justified violations carry an inline annotation with a written
//! reason:
//!
//! ```text
//! // analyze::allow(panic, reason = "internal invariant: epoch list is never empty")
//! ```
//!
//! Annotations are themselves checked: malformed ones and ones that no
//! longer suppress anything (stale allows) are findings. CI runs
//! `f1-analyze --workspace --deny` as a hard gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod source;

use std::path::{Path, PathBuf};

use diag::Finding;
use source::SourceFile;

/// What to analyze and how strictly.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Pass names to run (`panic`, `lock`, `determinism`, `wire`);
    /// empty means all four plus the annotation checks.
    pub passes: Vec<String>,
    /// Regenerate the wire goldens instead of comparing against them.
    pub bless: bool,
}

impl Options {
    /// All passes over the workspace rooted at `root`.
    #[must_use]
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            passes: Vec::new(),
            bless: false,
        }
    }

    fn runs(&self, pass: &str) -> bool {
        self.passes.is_empty() || self.passes.iter().any(|p| p == pass)
    }
}

/// The known pass names, in report order.
pub const PASS_NAMES: [&str; 4] = ["panic", "lock", "determinism", "wire"];

/// Collects the workspace-relative paths of every first-party `.rs`
/// file under `crates/` (skipping build output and the golden corpus).
/// The analyzer's own crate is excluded: its sources and docs are full
/// of lint-pattern examples by necessity, the same way a linter's
/// fixture files are not lint targets.
///
/// # Errors
///
/// Propagates directory-walk I/O errors.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    walk(&crates, &mut |path| {
        if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel.to_string_lossy().replace('\\', "/");
                if !rel.starts_with("crates/analyze/") {
                    out.push(rel);
                }
            }
        }
    })?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, visit: &mut impl FnMut(&Path)) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name == "target" || name == "golden" || name == ".git" {
                continue;
            }
            walk(&path, visit)?;
        } else {
            visit(&path);
        }
    }
    Ok(())
}

/// Runs the selected passes and returns the sorted findings.
///
/// # Errors
///
/// I/O errors reading the workspace sources.
pub fn run(options: &Options) -> std::io::Result<Vec<Finding>> {
    let rels = workspace_sources(&options.root)?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        files.push(SourceFile::load(&options.root, rel)?);
    }
    let mut findings = run_over(options, &files);
    diag::sort(&mut findings);
    Ok(findings)
}

/// Runs the selected passes over already-loaded files (the testable
/// core of [`run`]).
#[must_use]
pub fn run_over(options: &Options, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if options.runs("panic") {
            findings.extend(passes::panics::check(file));
        }
        if options.runs("determinism") {
            findings.extend(passes::determinism::check(file));
        }
    }
    if options.runs("lock") {
        findings.extend(passes::locks::check(files).findings);
    }
    if options.runs("wire") {
        findings.extend(passes::wire::check(&options.root, options.bless));
    }
    // Annotation hygiene: malformed annotations always; stale-allow
    // detection only when every pass ran (a single-pass run leaves the
    // other passes' annotations legitimately unused).
    for file in files {
        for (line, why) in &file.bad_annotations {
            findings.push(Finding::at("annotation", &file.rel, *line, why.clone()));
        }
        if options.passes.is_empty() {
            for allow in &file.allows {
                if !allow.used.get() {
                    findings.push(Finding::at(
                        "annotation",
                        &file.rel,
                        allow.at_line,
                        format!(
                            "stale `analyze::allow({}, …)` — it no longer suppresses any \
                             finding; remove it (reason was: {})",
                            allow.lint, allow.reason
                        ),
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> Options {
        // Passes that need no filesystem.
        Options {
            root: PathBuf::from("/nonexistent"),
            passes: vec!["panic".into(), "lock".into(), "determinism".into()],
            bless: false,
        }
    }

    #[test]
    fn run_over_aggregates_passes() {
        let files = vec![SourceFile::parse(
            "crates/serve/src/scheduler.rs",
            "
struct S { a: Mutex<u32>, b: Mutex<u32>, plans: HashMap<String, u32> }
impl S {
  fn f(&self) {
    let ga = self.a.lock();
    let gb = self.b.lock();
    x.unwrap();
    for k in self.plans.keys() { touch(k); }
  }
  fn g(&self) { let gb = self.b.lock(); let ga = self.a.lock(); }
}
",
        )];
        let found = run_over(&opts(), &files);
        let passes: Vec<&str> = found.iter().map(|f| f.pass).collect();
        assert!(passes.contains(&"panic"), "{found:?}");
        assert!(passes.contains(&"lock"), "{found:?}");
        assert!(passes.contains(&"determinism"), "{found:?}");
    }

    #[test]
    fn bad_annotations_are_findings() {
        let files = vec![SourceFile::parse(
            "crates/serve/src/server.rs",
            "// analyze::allow(panic)\nfn f() {}\n",
        )];
        let found = run_over(&opts(), &files);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].pass, "annotation");
    }

    #[test]
    fn stale_allows_are_findings_on_full_runs() {
        let files = vec![SourceFile::parse(
            "crates/serve/src/server.rs",
            "fn f() {\n  // analyze::allow(panic, reason = \"nothing here panics\")\n  let x = 1;\n}\n",
        )];
        // Single-pass run: stale detection off.
        let found = run_over(&opts(), &files);
        assert!(found.is_empty(), "{found:?}");
        // Full run (minus wire, which needs a real workspace root):
        // simulate by running all source passes with empty filter but
        // a wire-less option set is not expressible, so check the
        // stale logic through run_over with passes = [] on a file set
        // and tolerate the wire corpus findings' absence (wire only
        // reports against the golden dir, which is missing → findings
        // with pass "wire").
        let full = Options {
            root: std::env::temp_dir().join("f1-analyze-stale-test"),
            passes: Vec::new(),
            bless: false,
        };
        let found = run_over(&full, &files);
        assert!(
            found
                .iter()
                .any(|f| f.pass == "annotation" && f.message.contains("stale")),
            "{found:?}"
        );
    }

    #[test]
    fn used_allows_are_not_stale() {
        let files = vec![SourceFile::parse(
            "crates/serve/src/server.rs",
            "fn f() {\n  // analyze::allow(panic, reason = \"startup only\")\n  x.unwrap();\n}\n",
        )];
        let full = Options {
            root: std::env::temp_dir().join("f1-analyze-stale-test"),
            passes: Vec::new(),
            bless: false,
        };
        let found = run_over(&full, &files);
        assert!(!found.iter().any(|f| f.pass == "annotation"), "{found:?}");
    }
}
