//! Findings: what a pass reports and how the driver renders it.

use std::fmt;

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The pass that produced it (`panic`, `lock`, `determinism`,
    /// `wire`, `annotation`).
    pub pass: &'static str,
    /// Workspace-relative file (empty for corpus-level wire findings).
    pub file: String,
    /// 1-indexed line (0 when the finding has no line anchor).
    pub line: usize,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl Finding {
    /// Builds a finding anchored to a source line.
    #[must_use]
    pub fn at(pass: &'static str, file: &str, line: usize, message: impl Into<String>) -> Self {
        Self {
            pass,
            file: file.to_owned(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.file.is_empty() {
            write!(f, "[{}] {}", self.pass, self.message)
        } else if self.line == 0 {
            write!(f, "{}: [{}] {}", self.file, self.pass, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file, self.line, self.pass, self.message
            )
        }
    }
}

/// Sorts findings for stable output: by file, line, pass, message.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.pass, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.pass,
            b.message.as_str(),
        ))
    });
}
