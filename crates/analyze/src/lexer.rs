//! A small comment/string-aware Rust tokenizer.
//!
//! The offline build environment has no `syn`/`proc-macro2`, so the
//! analyzer lexes source text itself. It produces a flat token stream
//! with line numbers — enough structure for pattern-level lints
//! (`.unwrap()`, `lock(...)`, `#[cfg(test)] mod … { … }`) without a
//! full parse — plus the comment text, which carries the
//! `analyze::allow(...)` annotations.
//!
//! The lexer is intentionally forgiving: unknown characters become
//! punctuation tokens and malformed literals are consumed to end of
//! line, so a file that `rustc` rejects still tokenizes (the passes run
//! before the build in CI).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-indexed source line the token starts on.
    pub line: usize,
    /// What was lexed.
    pub kind: TokenKind,
}

/// Token categories the passes pattern-match on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `self`, …).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `[`, `!`, …).
    Punct(char),
    /// A string/char/byte literal. Double-quoted (and raw) strings keep
    /// their inner text — the determinism pass inspects format strings
    /// for float-risky placeholders; char/byte literals carry "".
    Literal(String),
    /// A numeric literal.
    Number,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
}

/// A comment with its location (line comments keep their text so the
/// annotation parser can read `analyze::allow(...)`; block comments are
/// split per line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-indexed line the comment text sits on.
    pub line: usize,
    /// The comment text without its `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The significant tokens in source order.
    pub tokens: Vec<Token>,
    /// Every comment, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text into tokens and comments.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                b'\'' => self.char_or_lifetime(),
                b if b.is_ascii_digit() => self.number(),
                b if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
                other => {
                    self.push(TokenKind::Punct(other as char));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind) {
        self.out.tokens.push(Token {
            line: self.line,
            kind,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.out.comments.push(Comment {
            line: self.line,
            text,
        });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        let mut text_start = self.pos;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.flush_block_comment_line(text_start, self.pos);
                    self.pos += 2;
                    text_start = self.pos;
                }
                (b'\n', _) => {
                    self.flush_block_comment_line(text_start, self.pos);
                    self.line += 1;
                    self.pos += 1;
                    text_start = self.pos;
                }
                _ => self.pos += 1,
            }
        }
    }

    fn flush_block_comment_line(&mut self, start: usize, end: usize) {
        if end > start {
            let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
            self.out.comments.push(Comment {
                line: self.line,
                text,
            });
        }
    }

    fn string(&mut self) {
        let line = self.line;
        let start = self.pos + 1;
        self.pos += 1; // opening quote
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.out.tokens.push(Token {
                        line,
                        kind: TokenKind::Literal(text),
                    });
                    self.pos += 1;
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Literal(String::new()),
        });
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` prefixes.
    /// Returns false when the `r`/`b` is just an identifier start (the
    /// caller then lexes it as an ident).
    fn raw_or_byte_prefix(&mut self) -> bool {
        let b0 = self.bytes[self.pos];
        let mut look = self.pos + 1;
        if b0 == b'b' {
            match self.bytes.get(look) {
                Some(b'\'') => {
                    // b'x' byte literal.
                    self.push(TokenKind::Literal(String::new()));
                    self.pos = look + 1;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        match b {
                            b'\\' => self.pos += 2,
                            b'\'' => {
                                self.pos += 1;
                                return true;
                            }
                            _ => self.pos += 1,
                        }
                    }
                    return true;
                }
                Some(b'"') => {
                    self.pos = look;
                    self.string();
                    return true;
                }
                Some(b'r') => look += 1,
                _ => return self.ident_is_fallback(),
            }
        }
        // Raw string: r…, optionally with `#` fencing.
        let mut hashes = 0usize;
        while self.bytes.get(look) == Some(&b'#') {
            hashes += 1;
            look += 1;
        }
        if self.bytes.get(look) != Some(&b'"') {
            return self.ident_is_fallback();
        }
        let line = self.line;
        let start = look + 1;
        self.pos = look + 1;
        // Scan for `"` followed by `hashes` hashes.
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if self.bytes[self.pos] == b'"' {
                let mut h = 0usize;
                while h < hashes && self.bytes.get(self.pos + 1 + h) == Some(&b'#') {
                    h += 1;
                }
                if h == hashes {
                    let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.out.tokens.push(Token {
                        line,
                        kind: TokenKind::Literal(text),
                    });
                    self.pos += 1 + hashes;
                    return true;
                }
            }
            self.pos += 1;
        }
        self.out.tokens.push(Token {
            line,
            kind: TokenKind::Literal(String::new()),
        });
        true
    }

    fn ident_is_fallback(&mut self) -> bool {
        self.ident();
        true
    }

    fn char_or_lifetime(&mut self) {
        // 'a (lifetime) vs 'a' (char literal): a lifetime's ident is
        // not followed by a closing quote.
        let mut look = self.pos + 1;
        if self
            .bytes
            .get(look)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            while self
                .bytes
                .get(look)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
            {
                look += 1;
            }
            if self.bytes.get(look) != Some(&b'\'') {
                self.push(TokenKind::Lifetime);
                self.pos = look;
                return;
            }
        }
        // Char literal: consume through the closing quote.
        self.push(TokenKind::Literal(String::new()));
        self.pos += 1;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return, // malformed; bail at end of line
                _ => self.pos += 1,
            }
        }
    }

    fn number(&mut self) {
        self.push(TokenKind::Number);
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'e' | b'E' => {
                    self.pos += 1;
                    if matches!(self.peek(0), Some(b'+' | b'-')) {
                        self.pos += 1;
                    }
                }
                b'0'..=b'9'
                | b'_'
                | b'a'..=b'd'
                | b'f'
                | b'i'
                | b'o'
                | b'u'
                | b'x'
                | b'A'..=b'D'
                | b'F' => self.pos += 1,
                // `1.5` continues the number; `1..n` does not.
                b'.' if self.peek(1).is_some_and(|b| b.is_ascii_digit()) => self.pos += 1,
                _ => break,
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn skips_comments_and_strings() {
        let src = r##"
            // a comment with .unwrap() inside
            /* block .expect( */
            let s = "panic!(\"not real\")";
            let r = r#"also .unwrap() not real"#;
            real.unwrap();
        "##;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "unwrap").count(),
            1,
            "only the real call site is an ident: {ids:?}"
        );
        let comments = lex(src).comments;
        assert!(comments[0].text.contains(".unwrap()"));
        assert!(comments[1].text.contains(".expect("));
    }

    #[test]
    fn tracks_lines() {
        let src = "a\nb\n  c";
        let lexed = lex(src);
        let lines: Vec<usize> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Literal(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn byte_and_raw_literals() {
        let src = "self.expect(b'{')?; let b2 = b\"bytes\"; let r = br#\"raw\"#;";
        let ids = idents(src);
        assert!(ids.contains(&"expect".to_owned()));
        // b'{' must not swallow the rest of the line as a char literal.
        assert!(ids.contains(&"b2".to_owned()));
        assert!(ids.contains(&"r".to_owned()));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..10 { x[i]; } let f = 1.5e-3;";
        let lexed = lex(src);
        let numbers = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .count();
        assert_eq!(numbers, 3); // 0, 10, 1.5e-3
    }
}
