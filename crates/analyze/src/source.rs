//! The per-file source model the passes share: the token stream, the
//! `analyze::allow(...)` annotations, `#[cfg(test)]` regions, and the
//! function/impl map the call-graph passes walk.

use std::cell::Cell;
use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};

/// One `// analyze::allow(lint, reason = "...")` annotation.
///
/// An annotation suppresses findings of its lint on the line it sits on
/// and the next code line (the usual "comment above the statement"
/// placement). With `scope = "fn"` it covers the whole body of the next
/// `fn` item — the right shape for hot loops whose every line indexes
/// into chunk-disjoint slices.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The lint being allowed (`panic`, `indexing`, `lock`,
    /// `determinism`, `wire`).
    pub lint: String,
    /// The written justification. The analyzer rejects empty reasons.
    pub reason: String,
    /// First line the annotation covers.
    pub from_line: usize,
    /// Last line the annotation covers (inclusive).
    pub to_line: usize,
    /// Whether any pass actually suppressed a finding through this
    /// annotation (stale-allow detection).
    pub used: Cell<bool>,
    /// Line the annotation itself sits on.
    pub at_line: usize,
}

/// A function item: its name, the impl type it belongs to (if any), and
/// its body's token/line extent.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The `impl` type the function sits in, when inside an impl block.
    pub impl_type: Option<String>,
    /// Token index of the `fn` keyword.
    pub fn_token: usize,
    /// Token index of the body's opening `{` (functions without bodies
    /// — trait signatures — are not recorded).
    pub body_open: usize,
    /// Token index of the body's closing `}`.
    pub body_close: usize,
    /// Line of the `fn` keyword.
    pub line: usize,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/serve/src/server.rs`).
    pub rel: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
    /// Malformed annotations (reported as findings by the driver).
    pub bad_annotations: Vec<(usize, String)>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
    /// Every `fn` item with a body, in source order.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Lexes and indexes one file.
    #[must_use]
    pub fn parse(rel: &str, source: &str) -> Self {
        let lexed = lex(source);
        let tokens = lexed.tokens;
        let mut file = Self {
            rel: rel.to_owned(),
            tokens,
            allows: Vec::new(),
            bad_annotations: Vec::new(),
            test_ranges: Vec::new(),
            fns: Vec::new(),
        };
        file.index_test_ranges();
        file.index_fns();
        file.index_allows(&lexed.comments);
        file
    }

    /// Reads a file from disk and parses it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn load(root: &Path, rel: &str) -> std::io::Result<Self> {
        let source = std::fs::read_to_string(root.join(rel))?;
        Ok(Self::parse(rel, &source))
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(from, to)| (from..=to).contains(&line))
    }

    /// Looks for an annotation allowing `lint` at `line`; marks it used.
    #[must_use]
    pub fn allowed(&self, lint: &str, line: usize) -> Option<&Allow> {
        let allow = self
            .allows
            .iter()
            .find(|a| a.lint == lint && (a.from_line..=a.to_line).contains(&line))?;
        allow.used.set(true);
        Some(allow)
    }

    /// The function whose body contains token index `idx`, if any
    /// (innermost wins for nested fns).
    #[must_use]
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| (f.body_open..=f.body_close).contains(&idx))
            .min_by_key(|f| f.body_close - f.body_open)
    }

    /// Token index of the `}` matching the `{` at `open` (or the last
    /// token when unbalanced — forgiving, like the lexer).
    #[must_use]
    pub fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for (i, t) in self.tokens.iter().enumerate().skip(open) {
            match t.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        self.tokens.len().saturating_sub(1)
    }

    fn ident_at(&self, idx: usize) -> Option<&str> {
        match &self.tokens.get(idx)?.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    fn is_punct(&self, idx: usize, c: char) -> bool {
        matches!(self.tokens.get(idx), Some(t) if t.kind == TokenKind::Punct(c))
    }

    /// Finds `#[cfg(test)]` attributes and records the line extent of
    /// the item that follows (skipping further attributes).
    fn index_test_ranges(&mut self) {
        let mut ranges = Vec::new();
        let mut i = 0usize;
        while i + 4 < self.tokens.len() {
            let is_cfg_test = self.is_punct(i, '#')
                && self.is_punct(i + 1, '[')
                && self.ident_at(i + 2) == Some("cfg")
                && self.is_punct(i + 3, '(')
                && self.ident_at(i + 4) == Some("test");
            if !is_cfg_test {
                i += 1;
                continue;
            }
            let from_line = self.tokens[i].line;
            // Skip to the end of this attribute, then past any further
            // attributes, to the item's opening brace.
            let mut j = i + 4;
            while j < self.tokens.len() && !self.is_punct(j, ']') {
                j += 1;
            }
            j += 1;
            while self.is_punct(j, '#') {
                while j < self.tokens.len() && !self.is_punct(j, ']') {
                    j += 1;
                }
                j += 1;
            }
            // Find the item body. `use …;`-style items end at `;`.
            let mut open = None;
            let mut k = j;
            while k < self.tokens.len() {
                if self.is_punct(k, '{') {
                    open = Some(k);
                    break;
                }
                if self.is_punct(k, ';') {
                    break;
                }
                k += 1;
            }
            if let Some(open) = open {
                let close = self.matching_brace(open);
                ranges.push((from_line, self.tokens[close].line));
                i = close;
            } else {
                ranges.push((from_line, self.tokens.get(k).map_or(from_line, |t| t.line)));
                i = k;
            }
            i += 1;
        }
        self.test_ranges = ranges;
    }

    /// Records every `fn` item with a body, tagged with its enclosing
    /// `impl` type (one level — impls do not nest in this workspace).
    fn index_fns(&mut self) {
        let mut fns = Vec::new();
        let mut impl_stack: Vec<(String, usize)> = Vec::new(); // (type, close idx)
        let mut i = 0usize;
        while i < self.tokens.len() {
            while let Some(&(_, close)) = impl_stack.last() {
                if i > close {
                    impl_stack.pop();
                } else {
                    break;
                }
            }
            match self.ident_at(i) {
                Some("impl") => {
                    // `impl Type {` or `impl Trait for Type {`: the type
                    // name is the last path ident before `{` (skipping
                    // generics soup is fine — we only need a stable tag).
                    let mut j = i + 1;
                    let mut name = None;
                    let mut for_seen_name = None;
                    while j < self.tokens.len() && !self.is_punct(j, '{') && !self.is_punct(j, ';')
                    {
                        if let Some(id) = self.ident_at(j) {
                            if id == "for" {
                                for_seen_name = Some(j);
                            } else if id != "where" {
                                name = Some(id.to_owned());
                            }
                        }
                        j += 1;
                    }
                    // `impl Trait for Type`: take the ident after `for`.
                    if let Some(for_idx) = for_seen_name {
                        let mut k = for_idx + 1;
                        while k < j {
                            if let Some(id) = self.ident_at(k) {
                                name = Some(id.to_owned());
                                break;
                            }
                            k += 1;
                        }
                    }
                    if self.is_punct(j, '{') {
                        let close = self.matching_brace(j);
                        if let Some(name) = name {
                            impl_stack.push((name, close));
                        }
                        i = j + 1;
                        continue;
                    }
                    i = j;
                }
                Some("fn") => {
                    let name = self.ident_at(i + 1).unwrap_or_default().to_owned();
                    let mut j = i + 2;
                    while j < self.tokens.len() && !self.is_punct(j, '{') && !self.is_punct(j, ';')
                    {
                        j += 1;
                    }
                    if self.is_punct(j, '{') {
                        let close = self.matching_brace(j);
                        fns.push(FnItem {
                            name,
                            impl_type: impl_stack.last().map(|(n, _)| n.clone()),
                            fn_token: i,
                            body_open: j,
                            body_close: close,
                            line: self.tokens[i].line,
                        });
                        // Do NOT skip the body: nested fns/closures keep
                        // their own entries and impl tags.
                    }
                    i += 1;
                }
                _ => i += 1,
            }
        }
        self.fns = fns;
    }

    fn index_allows(&mut self, comments: &[crate::lexer::Comment]) {
        for comment in comments {
            let Some(at) = comment.text.find("analyze::allow(") else {
                continue;
            };
            let rest = &comment.text[at + "analyze::allow(".len()..];
            match parse_allow_args(rest) {
                Ok((lint, scope_fn, reason)) => {
                    let (from_line, to_line) = if scope_fn {
                        match self.fn_body_lines_after(comment.line) {
                            Some(range) => range,
                            None => {
                                self.bad_annotations.push((
                                    comment.line,
                                    "analyze::allow(…, scope = \"fn\") with no following fn item"
                                        .to_owned(),
                                ));
                                continue;
                            }
                        }
                    } else {
                        (comment.line, comment.line + 1)
                    };
                    self.allows.push(Allow {
                        lint,
                        reason,
                        from_line,
                        to_line,
                        used: Cell::new(false),
                        at_line: comment.line,
                    });
                }
                Err(why) => self.bad_annotations.push((comment.line, why)),
            }
        }
    }

    /// The line extent of the first fn item at or after `line`
    /// (annotation line through body close).
    fn fn_body_lines_after(&self, line: usize) -> Option<(usize, usize)> {
        let f = self.fns.iter().find(|f| f.line >= line)?;
        Some((line, self.tokens[f.body_close].line))
    }
}

/// Parses `lint[, scope = "fn"], reason = "..."` — the inside of an
/// `analyze::allow(...)` annotation.
fn parse_allow_args(rest: &str) -> Result<(String, bool, String), String> {
    let close = rest
        .rfind(')')
        .ok_or_else(|| "analyze::allow(… missing closing parenthesis".to_owned())?;
    let args = &rest[..close];
    let mut lint = None;
    let mut scope_fn = false;
    let mut reason = None;
    for (i, piece) in split_args(args).into_iter().enumerate() {
        let piece = piece.trim();
        if i == 0 {
            lint = Some(piece.to_owned());
            continue;
        }
        if let Some(value) = piece.strip_prefix("scope") {
            let value = value.trim_start().strip_prefix('=').unwrap_or("").trim();
            if value.trim_matches('"') == "fn" {
                scope_fn = true;
            } else {
                return Err(format!("unknown analyze::allow scope {value}"));
            }
        } else if let Some(value) = piece.strip_prefix("reason") {
            let value = value.trim_start().strip_prefix('=').unwrap_or("").trim();
            let value = value.trim_matches('"').trim();
            if value.is_empty() {
                return Err("analyze::allow reason must not be empty".to_owned());
            }
            reason = Some(value.to_owned());
        } else {
            return Err(format!("unknown analyze::allow argument {piece:?}"));
        }
    }
    let lint = lint.filter(|l| !l.is_empty()).ok_or_else(|| {
        "analyze::allow needs a lint name (panic|indexing|lock|determinism|wire)".to_owned()
    })?;
    let known = ["panic", "indexing", "lock", "determinism", "wire"];
    if !known.contains(&lint.as_str()) {
        return Err(format!(
            "unknown lint {lint:?} in analyze::allow (expected one of {known:?})"
        ));
    }
    let reason =
        reason.ok_or_else(|| "analyze::allow requires reason = \"…\" (non-empty)".to_owned())?;
    Ok((lint, scope_fn, reason))
}

/// Splits annotation arguments on commas outside quotes.
fn split_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    for c in args.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_test_ranges() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\n";
        let file = SourceFile::parse("x.rs", src);
        assert!(!file.in_test_code(1));
        assert!(file.in_test_code(2));
        assert!(file.in_test_code(4));
        assert!(file.in_test_code(5));
    }

    #[test]
    fn parses_line_allow() {
        let src =
            "fn f() {\n  // analyze::allow(panic, reason = \"startup only\")\n  x.unwrap();\n}\n";
        let file = SourceFile::parse("x.rs", src);
        assert_eq!(file.allows.len(), 1);
        assert!(file.allowed("panic", 3).is_some());
        assert!(file.allowed("panic", 4).is_none());
        assert!(file.allowed("indexing", 3).is_none());
        assert!(file.allows[0].used.get());
    }

    #[test]
    fn parses_fn_scope_allow() {
        let src = "// analyze::allow(indexing, scope = \"fn\", reason = \"chunk-disjoint\")\nfn hot() {\n  a[i];\n  b[j];\n}\nfn cold() { c[k]; }\n";
        let file = SourceFile::parse("x.rs", src);
        assert!(file.allowed("indexing", 3).is_some());
        assert!(file.allowed("indexing", 4).is_some());
        assert!(file.allowed("indexing", 6).is_none());
    }

    #[test]
    fn rejects_bad_annotations() {
        for bad in [
            "// analyze::allow(panic)",
            "// analyze::allow(panic, reason = \"\")",
            "// analyze::allow(frobnicate, reason = \"x\")",
            "// analyze::allow(panic, scope = \"mod\", reason = \"x\")",
        ] {
            let file = SourceFile::parse("x.rs", &format!("{bad}\nfn f() {{}}\n"));
            assert_eq!(file.allows.len(), 0, "{bad}");
            assert_eq!(file.bad_annotations.len(), 1, "{bad}");
        }
    }

    #[test]
    fn indexes_fns_with_impl_types() {
        let src =
            "impl Foo {\n  fn a() {}\n}\nimpl Display for Bar {\n  fn fmt() {}\n}\nfn free() {}\n";
        let file = SourceFile::parse("x.rs", src);
        let tags: Vec<(Option<String>, String)> = file
            .fns
            .iter()
            .map(|f| (f.impl_type.clone(), f.name.clone()))
            .collect();
        assert_eq!(
            tags,
            vec![
                (Some("Foo".into()), "a".into()),
                (Some("Bar".into()), "fmt".into()),
                (None, "free".into()),
            ]
        );
    }
}
