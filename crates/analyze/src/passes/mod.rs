//! The four analyses: panic-path audit, lock-order analysis,
//! determinism lint, wire-format drift check.

pub mod determinism;
pub mod locks;
pub mod panics;
pub mod wire;
