//! Pass 1 — panic-path audit.
//!
//! In the designated server-facing / hot-path modules, every construct
//! that can abort the thread — `unwrap()`, `expect()`, `panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`, and direct slice/array
//! indexing — must either disappear (return a structured error) or
//! carry a written justification:
//!
//! ```text
//! // analyze::allow(panic, reason = "startup-time config check")
//! // analyze::allow(indexing, scope = "fn", reason = "chunk-disjoint writes")
//! ```
//!
//! A panic on one of these paths kills a connection thread or an
//! executor instead of producing a structured `err` frame — the audit
//! makes every remaining site a reviewed decision, not an accident.
//! `#[cfg(test)]` code is exempt.

use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Relative paths the audit covers: `serve/*`, `store/*`, the tier-2
/// simulation harness (`sim/*` — it runs inside every query with sim
/// objectives), the `skyline` session/plan/repair/shard modules, the
/// components store and the strict-JSON parser (it decodes every wire
/// request and every durable log record).
#[must_use]
pub fn is_designated(rel: &str) -> bool {
    rel.starts_with("crates/serve/src/")
        || rel.starts_with("crates/store/src/")
        || rel.starts_with("crates/sim/src/")
        || matches!(
            rel,
            "crates/skyline/src/session.rs"
                | "crates/skyline/src/plan.rs"
                | "crates/skyline/src/repair.rs"
                | "crates/skyline/src/shard.rs"
                | "crates/components/src/store.rs"
                | "crates/components/src/json.rs"
        )
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Rust keywords that can precede `[` without forming an index
/// expression (`let [a, b] = …`, `for x in [..]`, `match … { [..] => }`).
const NON_INDEX_KEYWORDS: [&str; 24] = [
    "let", "in", "mut", "ref", "return", "break", "else", "match", "if", "while", "loop", "move",
    "dyn", "impl", "fn", "where", "as", "const", "static", "type", "use", "pub", "crate", "enum",
];

/// Runs the audit over one file (no-op for non-designated files).
#[must_use]
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !is_designated(&file.rel) {
        return findings;
    }
    let tokens = &file.tokens;
    let debug_only = debug_assert_ranges(file);
    let mut flagged_lines: Vec<(usize, &'static str)> = Vec::new();
    let mut flag = |line: usize, lint: &'static str, message: String| {
        if file.in_test_code(line) || file.allowed(lint, line).is_some() {
            return;
        }
        if flagged_lines.contains(&(line, lint)) {
            return;
        }
        flagged_lines.push((line, lint));
        findings.push(Finding::at("panic", &file.rel, line, message));
    };
    for (i, token) in tokens.iter().enumerate() {
        // `debug_assert!` bodies are compiled out of release builds —
        // nothing inside one can panic a production thread.
        if debug_only.iter().any(|&(lo, hi)| i > lo && i < hi) {
            continue;
        }
        match &token.kind {
            TokenKind::Ident(name) if name == "unwrap" || name == "expect" => {
                let is_method = i > 0 && tokens[i - 1].kind == TokenKind::Punct('.');
                let called =
                    matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('('));
                if !is_method || !called {
                    continue;
                }
                if name == "expect" {
                    // `self.expect(b'{')` is the strict-JSON reader's
                    // own parser method, not `Option::expect` — the
                    // receiver `self` is never an Option/Result here.
                    let receiver_is_self =
                        i >= 2 && matches!(&tokens[i - 2].kind, TokenKind::Ident(r) if r == "self");
                    if receiver_is_self {
                        continue;
                    }
                }
                flag(
                    token.line,
                    "panic",
                    format!(
                        "`.{name}()` can panic on a designated hot/server path — convert to a \
                         structured error, or justify with \
                         `// analyze::allow(panic, reason = \"…\")`"
                    ),
                );
            }
            TokenKind::Ident(name) if PANIC_MACROS.contains(&name.as_str()) => {
                let is_macro =
                    matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('!'));
                if !is_macro {
                    continue;
                }
                flag(
                    token.line,
                    "panic",
                    format!(
                        "`{name}!` aborts the thread on a designated hot/server path — convert \
                         to a structured error, or justify with \
                         `// analyze::allow(panic, reason = \"…\")`"
                    ),
                );
            }
            TokenKind::Punct('[') if i > 0 => {
                let indexing = match &tokens[i - 1].kind {
                    TokenKind::Ident(prev) => !NON_INDEX_KEYWORDS.contains(&prev.as_str()),
                    TokenKind::Punct(')' | ']') => true,
                    _ => false,
                };
                if !indexing {
                    continue;
                }
                flag(
                    token.line,
                    "indexing",
                    "direct indexing panics when out of bounds on a designated hot/server path \
                     — use `.get()`/`try_*`, or justify with \
                     `// analyze::allow(indexing, reason = \"…\")` \
                     (`scope = \"fn\"` covers a whole hot loop)"
                        .to_owned(),
                );
            }
            _ => {}
        }
    }
    findings
}

/// Token ranges `(open, close)` of `debug_assert*!(…)` invocations.
fn debug_assert_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    let tokens = &file.tokens;
    let mut ranges = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &token.kind else {
            continue;
        };
        if !matches!(
            name.as_str(),
            "debug_assert" | "debug_assert_eq" | "debug_assert_ne"
        ) {
            continue;
        }
        if !matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('!')) {
            continue;
        }
        let open = i + 2;
        if !matches!(tokens.get(open), Some(t) if t.kind == TokenKind::Punct('(')) {
            continue;
        }
        let mut depth = 0usize;
        for (j, t) in tokens.iter().enumerate().skip(open) {
            match t.kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        ranges.push((open, j));
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/serve/src/protocol.rs", src))
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f() {\n  x.unwrap();\n  y.expect(\"m\");\n  panic!(\"boom\");\n  unreachable!();\n}\n";
        let found = run(src);
        assert_eq!(found.len(), 4, "{found:?}");
    }

    #[test]
    fn skips_self_expect_parser_method() {
        let found = run("fn f() { self.expect(b'{')?; }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn skips_unwrap_or_else() {
        let found = run("fn f() { m.lock().unwrap_or_else(PoisonError::into_inner); }");
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn flags_indexing_but_not_array_literals() {
        let src = "fn f() {\n  let a = [0u8; 4];\n  let b = [1, 2];\n  let [x, y] = b;\n  a[0];\n  f()[1];\n}\n";
        let found = run(src);
        assert_eq!(found.len(), 2, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("indexing")));
    }

    #[test]
    fn debug_assert_bodies_are_exempt() {
        // Compiled out in release — not a production panic path. A
        // plain `assert!` still panics in release and stays flagged.
        let src = "fn f(v: &[u8]) {\n  debug_assert!(v.windows(2).all(|w| w[0] < w[1]));\n  debug_assert_eq!(v[0], v[1]);\n  assert!(v[2] > 0);\n}\n";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn respects_allow_annotations() {
        let src = "fn f() {\n  // analyze::allow(panic, reason = \"unit test helper\")\n  x.unwrap();\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn skips_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); a[0]; }\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn ignores_non_designated_files() {
        let file = SourceFile::parse("crates/skyline/src/frontier.rs", "fn f() { x.unwrap(); }");
        assert!(check(&file).is_empty());
    }
}
