//! Pass 2 — lock-order analysis.
//!
//! The scheduler's window-collector protocol and the session's memo
//! cache are Mutex+Condvar state machines; a deadlock needs only two
//! locks acquired in opposite orders, or a blocking call made while a
//! lock is held. This pass:
//!
//! 1. finds every `Mutex`/`RwLock`/`Condvar` declaration in the scoped
//!    files and every acquisition site (`x.lock()`, the
//!    `lock(&self.queue)` poison-tolerant helpers, and calls to
//!    guard-returning methods like `CatalogStore::lock`);
//! 2. tracks guard lifetimes per function (a `let`-bound guard lives to
//!    the end of its block or an explicit `drop(guard)`; a temporary
//!    dies at its statement's semicolon);
//! 3. builds the inter-lock acquisition graph — an edge A→B means "B
//!    was acquired while A was held", including one level of
//!    call-graph closure through functions that acquire locks — and
//!    fails on any cycle (including A→A recursive acquisition);
//! 4. flags blocking calls (`wait*`, `recv*`, `join`, `sleep`, and the
//!    heavy executor entry points `run_batch_at`/`run_batch`/
//!    `run_plans`/`run_at`/`refresh`) made while holding a lock. A
//!    condvar wait is exempt for the guard it atomically releases —
//!    that *is* the protocol — but any **other** lock held across the
//!    wait is a deadlock-in-waiting and is flagged.
//!
//! Findings are suppressed by `// analyze::allow(lock, reason = "…")`.
//! The analysis is token-level and heuristic: `self.name(…)` and free
//! `name(…)` calls are resolved by name (same-impl first, then
//! unique-across-workspace); dotted calls on any other receiver are
//! never resolved (the receiver's type is unknown at token level, so
//! `handle.join()` must not borrow the summary of some unrelated
//! `fn join`). A guard counts as `let`-bound only when the acquisition
//! chain ends its statement — `self.cache.lock().unwrap_or_else(…)
//! .get(k)` consumes the guard inside the statement, so it is treated
//! as a temporary that dies at the semicolon.

use std::collections::BTreeMap;

use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::{FnItem, SourceFile};

/// Files whose lock discipline the pass checks.
#[must_use]
pub fn is_scoped(rel: &str) -> bool {
    matches!(
        rel,
        "crates/serve/src/scheduler.rs"
            | "crates/serve/src/server.rs"
            | "crates/skyline/src/session.rs"
            | "crates/components/src/store.rs"
    )
}

const BLOCKING: [&str; 11] = [
    "wait",
    "wait_timeout",
    "wait_while",
    "recv",
    "recv_timeout",
    "join",
    "sleep",
    "run_batch_at",
    "run_batch",
    "run_plans",
    "run_at",
];

/// `(lock id, blocking fn)` pairs that are part of a reviewed protocol
/// and allowed without an inline annotation. Deliberately empty: every
/// exemption lives next to the code it exempts, as an
/// `analyze::allow(lock, …)` annotation with a reason.
const ALLOWED_BLOCKING: [(&str, &str); 0] = [];

#[derive(Debug, Clone)]
struct Guard {
    lock: String,
    depth: usize,
    binding: Option<String>,
    stmt_scoped: bool,
}

#[derive(Debug, Default, Clone)]
struct FnSummary {
    /// Locks this function acquires anywhere inside (transitive).
    acquires: Vec<String>,
    /// The lock whose guard this function returns, if its signature
    /// returns a `MutexGuard`/`RwLock*Guard`.
    returns_guard_of: Option<String>,
}

/// An edge in the inter-lock acquisition graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// The lock already held.
    pub held: String,
    /// The lock acquired while `held` was held.
    pub acquired: String,
    /// Where the acquisition happened.
    pub file: String,
    /// Line of the acquisition.
    pub line: usize,
}

/// The outcome of the analysis: findings plus the graph (for
/// `--verbose` display and the self-tests).
#[derive(Debug, Default)]
pub struct LockReport {
    /// Deadlock findings.
    pub findings: Vec<Finding>,
    /// Every held→acquired edge observed.
    pub edges: Vec<Edge>,
    /// Every lock discovered, as `file_stem::field` ids.
    pub locks: Vec<String>,
}

/// Runs the lock-order analysis over the scoped subset of `files`.
#[must_use]
pub fn check(files: &[SourceFile]) -> LockReport {
    let scoped: Vec<&SourceFile> = files.iter().filter(|f| is_scoped(&f.rel)).collect();
    let mut report = LockReport::default();
    if scoped.is_empty() {
        return report;
    }
    let registry = Registry::build(&scoped);
    report.locks = registry.lock_ids();

    // Fixpoint over call-graph summaries: direct acquisitions first,
    // then propagate through resolvable calls until stable.
    let mut summaries: BTreeMap<String, FnSummary> = BTreeMap::new();
    for file in &scoped {
        for f in &file.fns {
            let key = fn_key(file, f);
            let mut summary = FnSummary {
                acquires: direct_acquisitions(file, f, &registry),
                returns_guard_of: None,
            };
            if signature_returns_guard(file, f) {
                if let [only] = summary.acquires.as_slice() {
                    summary.returns_guard_of = Some(only.clone());
                }
            }
            summaries.insert(key, summary);
        }
    }
    loop {
        let mut changed = false;
        for file in &scoped {
            for f in &file.fns {
                let mut acquired = summaries[&fn_key(file, f)].acquires.clone();
                for callee in resolved_calls(file, f, &scoped) {
                    if let Some(callee_summary) = summaries.get(&callee) {
                        for lock in callee_summary.acquires.clone() {
                            if !acquired.contains(&lock) {
                                acquired.push(lock);
                                changed = true;
                            }
                        }
                    }
                }
                summaries
                    .get_mut(&fn_key(file, f))
                    .expect("inserted above")
                    .acquires = acquired;
            }
        }
        if !changed {
            break;
        }
    }

    // Walk every function body tracking guard lifetimes.
    for file in &scoped {
        for f in &file.fns {
            if file.in_test_code(f.line) {
                continue;
            }
            walk_fn(file, f, &registry, &summaries, &scoped, &mut report);
        }
    }

    // Cycle detection over the collected edges.
    detect_cycles(&mut report);
    report
}

fn fn_key(file: &SourceFile, f: &FnItem) -> String {
    match &f.impl_type {
        Some(t) => format!("{}::{}::{}", file.rel, t, f.name),
        None => format!("{}::{}", file.rel, f.name),
    }
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or(rel)
}

/// Lock and condvar declarations across the scoped files.
struct Registry {
    /// Field/local name → lock id (`scheduler::queue`).
    locks: BTreeMap<String, String>,
    /// Condvar field names.
    condvars: Vec<String>,
}

impl Registry {
    fn build(files: &[&SourceFile]) -> Self {
        let mut locks = BTreeMap::new();
        let mut condvars = Vec::new();
        for file in files {
            let tokens = &file.tokens;
            for (i, t) in tokens.iter().enumerate() {
                let TokenKind::Ident(name) = &t.kind else {
                    continue;
                };
                let is_lock = (name == "Mutex" || name == "RwLock")
                    && matches!(tokens.get(i + 1), Some(n) if n.kind == TokenKind::Punct('<'));
                let is_condvar = name == "Condvar";
                if !is_lock && !is_condvar {
                    continue;
                }
                if let Some(field) = declared_name(tokens, i) {
                    if is_lock {
                        locks
                            .entry(field.clone())
                            .or_insert_with(|| format!("{}::{field}", file_stem(&file.rel)));
                    } else {
                        condvars.push(field);
                    }
                }
            }
        }
        Self { locks, condvars }
    }

    fn lock_ids(&self) -> Vec<String> {
        self.locks.values().cloned().collect()
    }

    fn lock_id(&self, name: &str) -> Option<&str> {
        self.locks.get(name).map(String::as_str)
    }

    fn is_condvar(&self, name: &str) -> bool {
        self.condvars.iter().any(|c| c == name)
    }
}

/// For a type ident at `i` (`Mutex`/`RwLock`/`Condvar`), walks back over
/// any `path::to::` prefix to the `field: Type` or `let name = Type::…`
/// declaration and returns the declared name.
fn declared_name(tokens: &[crate::lexer::Token], i: usize) -> Option<String> {
    let mut pos = i;
    // Skip `seg ::` path prefixes.
    while pos >= 3
        && tokens[pos - 1].kind == TokenKind::Punct(':')
        && tokens[pos - 2].kind == TokenKind::Punct(':')
        && matches!(tokens[pos - 3].kind, TokenKind::Ident(_))
    {
        pos -= 3;
    }
    // Field declaration: `name : Type`.
    if pos >= 2 && tokens[pos - 1].kind == TokenKind::Punct(':') {
        // Exclude `::` (already skipped) and `&Type` params.
        if let TokenKind::Ident(name) = &tokens[pos - 2].kind {
            return Some(name.clone());
        }
    }
    // Local: `let [mut] name = Type::new(…)`.
    if pos >= 3 && tokens[pos - 1].kind == TokenKind::Punct('=') {
        let mut j = pos - 2;
        if let TokenKind::Ident(name) = &tokens[j].kind {
            let name = name.clone();
            if j >= 1 && matches!(&tokens[j - 1].kind, TokenKind::Ident(m) if m == "mut") {
                j -= 1;
            }
            if j >= 1 && matches!(&tokens[j - 1].kind, TokenKind::Ident(l) if l == "let") {
                return Some(name);
            }
        }
    }
    None
}

/// Acquisition events in one function body, ignoring guard lifetimes —
/// used for the call-graph summaries.
fn direct_acquisitions(file: &SourceFile, f: &FnItem, registry: &Registry) -> Vec<String> {
    let mut out = Vec::new();
    scan_acquisitions(file, f, registry, |lock, _line| {
        if !out.contains(&lock) {
            out.push(lock);
        }
    });
    out
}

/// Finds direct acquisitions: `x.lock()` / `x.read()` / `x.write()` on
/// a registered lock, and `lock(&…x…)` helper calls naming one.
fn scan_acquisitions(
    file: &SourceFile,
    f: &FnItem,
    registry: &Registry,
    mut on_acquire: impl FnMut(String, usize),
) {
    let tokens = &file.tokens;
    for i in f.body_open..=f.body_close {
        match &tokens[i].kind {
            TokenKind::Ident(m)
                if (m == "lock" || m == "read" || m == "write")
                    && i > 0
                    && tokens[i - 1].kind == TokenKind::Punct('.')
                    && matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('(')) =>
            {
                if let Some(TokenKind::Ident(recv)) = tokens.get(i - 2).map(|t| &t.kind) {
                    if let Some(id) = registry.lock_id(recv) {
                        on_acquire(id.to_owned(), tokens[i].line);
                    }
                }
            }
            TokenKind::Ident(m)
                if m == "lock"
                    && (i == 0 || tokens[i - 1].kind != TokenKind::Punct('.'))
                    && matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('(')) =>
            {
                // `lock(&self.inner.queue)` helper: scan the argument
                // for a registered lock name.
                let mut depth = 0usize;
                for t in &tokens[i + 1..=f.body_close] {
                    match &t.kind {
                        TokenKind::Punct('(') => depth += 1,
                        TokenKind::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenKind::Ident(arg) => {
                            if let Some(id) = registry.lock_id(arg) {
                                on_acquire(id.to_owned(), t.line);
                            }
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
}

fn signature_returns_guard(file: &SourceFile, f: &FnItem) -> bool {
    file.tokens[f.fn_token..f.body_open].iter().any(|t| {
        matches!(
            &t.kind,
            TokenKind::Ident(n)
                if n == "MutexGuard" || n == "RwLockReadGuard" || n == "RwLockWriteGuard"
        )
    })
}

/// Calls inside `f` resolved to function keys: `self.name(…)` prefers
/// the same impl; otherwise a name defined exactly once across the
/// scoped files resolves, anything ambiguous is skipped.
fn resolved_calls(file: &SourceFile, f: &FnItem, scoped: &[&SourceFile]) -> Vec<String> {
    let mut out = Vec::new();
    let tokens = &file.tokens;
    for i in f.body_open..=f.body_close {
        let TokenKind::Ident(name) = &tokens[i].kind else {
            continue;
        };
        if !matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('(')) {
            continue;
        }
        if i >= 1 && matches!(&tokens[i - 1].kind, TokenKind::Ident(k) if k == "fn") {
            continue; // a definition, not a call
        }
        let dotted = i >= 1 && tokens[i - 1].kind == TokenKind::Punct('.');
        let via_self =
            dotted && i >= 2 && matches!(&tokens[i - 2].kind, TokenKind::Ident(r) if r == "self");
        if dotted && !via_self {
            continue; // unknown receiver type — never resolve by name
        }
        if let Some(key) = resolve_call(name, via_self, file, f, scoped) {
            if !out.contains(&key) {
                out.push(key);
            }
        }
    }
    out
}

fn resolve_call(
    name: &str,
    via_self: bool,
    file: &SourceFile,
    f: &FnItem,
    scoped: &[&SourceFile],
) -> Option<String> {
    if via_self {
        if let Some(impl_type) = &f.impl_type {
            if let Some(target) = file
                .fns
                .iter()
                .find(|g| g.name == name && g.impl_type.as_ref() == Some(impl_type))
            {
                return Some(fn_key(file, target));
            }
        }
    }
    let mut matches_found = Vec::new();
    for other in scoped {
        for g in &other.fns {
            if g.name == name {
                matches_found.push(fn_key(other, g));
            }
        }
    }
    match matches_found.as_slice() {
        [only] => Some(only.clone()),
        _ => None, // undefined here, or ambiguous — skip
    }
}

/// Walks one function body tracking guard lifetimes, emitting edges and
/// blocking-call findings.
#[allow(clippy::too_many_lines)]
fn walk_fn(
    file: &SourceFile,
    f: &FnItem,
    registry: &Registry,
    summaries: &BTreeMap<String, FnSummary>,
    scoped: &[&SourceFile],
    report: &mut LockReport,
) {
    let tokens = &file.tokens;
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut pending_let: Option<String> = None;

    let mut i = f.body_open;
    while i <= f.body_close {
        let line = tokens[i].line;
        match &tokens[i].kind {
            TokenKind::Punct('{') => {
                guards.retain(|g| !g.stmt_scoped);
                depth += 1;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth || g.stmt_scoped);
                guards.retain(|g| !(g.stmt_scoped && g.depth > depth));
            }
            TokenKind::Punct(';') => {
                guards.retain(|g| !g.stmt_scoped || g.depth < depth);
                pending_let = None;
            }
            TokenKind::Ident(kw) if kw == "let" => {
                // Binding name: first ident of the pattern.
                let mut j = i + 1;
                while j <= f.body_close {
                    match &tokens[j].kind {
                        TokenKind::Ident(id) if id != "mut" && id != "ref" => {
                            pending_let = Some(id.clone());
                            break;
                        }
                        TokenKind::Punct('=' | ';') => break,
                        _ => {}
                    }
                    j += 1;
                }
            }
            TokenKind::Ident(name) if name == "drop" => {
                if matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('(')) {
                    if let Some(TokenKind::Ident(dropped)) = tokens.get(i + 2).map(|t| &t.kind) {
                        guards.retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
                    }
                }
            }
            _ => {}
        }

        // Blocking-call check (before acquisition handling: a condvar
        // wait is blocking but not an acquisition).
        if let TokenKind::Ident(name) = &tokens[i].kind {
            let called = matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('('));
            let is_def = i >= 1 && matches!(&tokens[i - 1].kind, TokenKind::Ident(k) if k == "fn");
            if called && !is_def && BLOCKING.contains(&name.as_str()) {
                let receiver = if i >= 2 && tokens[i - 1].kind == TokenKind::Punct('.') {
                    match &tokens[i - 2].kind {
                        TokenKind::Ident(r) => Some(r.as_str()),
                        _ => None,
                    }
                } else {
                    None
                };
                let condvar_wait = receiver.is_some_and(|r| registry.is_condvar(r));
                // The guard a condvar wait atomically releases: its
                // first argument.
                let released = if condvar_wait {
                    first_arg_ident(tokens, i + 1, f.body_close)
                } else {
                    None
                };
                for guard in &guards {
                    if condvar_wait && guard.binding.as_deref() == released.as_deref() {
                        continue; // the wait releases this one — the protocol
                    }
                    let allowed = ALLOWED_BLOCKING
                        .iter()
                        .any(|(l, b)| *l == guard.lock && *b == name)
                        || file.allowed("lock", line).is_some()
                        || file.in_test_code(line);
                    if !allowed {
                        report.findings.push(Finding::at(
                            "lock",
                            &file.rel,
                            line,
                            format!(
                                "blocking call `{name}` while holding lock `{}` (fn `{}`) — \
                                 a deadlock-in-waiting; release the guard first, or justify \
                                 with `// analyze::allow(lock, reason = \"…\")`",
                                guard.lock, f.name
                            ),
                        ));
                    }
                }
            }
        }

        // Acquisition events at this token.
        let mut acquired_here: Vec<(String, bool)> = Vec::new(); // (lock, held_after)
        let mut bindable = false;
        if let TokenKind::Ident(m) = &tokens[i].kind {
            let called = matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('('));
            if called {
                let dotted = i >= 1 && tokens[i - 1].kind == TokenKind::Punct('.');
                let receiver = if dotted {
                    match tokens.get(i.wrapping_sub(2)).map(|t| &t.kind) {
                        Some(TokenKind::Ident(r)) => Some(r.as_str()),
                        _ => None,
                    }
                } else {
                    None
                };
                bindable = guard_outlives_expression(tokens, i + 1, f.body_close);
                let direct = if (m == "lock" || m == "read" || m == "write") && dotted {
                    receiver.and_then(|r| registry.lock_id(r))
                } else {
                    None
                };
                if let Some(id) = direct {
                    acquired_here.push((id.to_owned(), true));
                } else if m == "lock" && !dotted {
                    // Helper `lock(&self.x)`: the arg names the lock.
                    let mut d = 0usize;
                    for t in &tokens[i + 1..=f.body_close] {
                        match &t.kind {
                            TokenKind::Punct('(') => d += 1,
                            TokenKind::Punct(')') => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            TokenKind::Ident(arg) => {
                                if let Some(id) = registry.lock_id(arg) {
                                    acquired_here.push((id.to_owned(), true));
                                }
                            }
                            _ => {}
                        }
                    }
                } else if !dotted || receiver == Some("self") {
                    // A call to a lock-acquiring function (`self.lock()`
                    // guard-returning methods land here too). Guard-
                    // returning callees extend the caller's hold;
                    // others are transient (acquire + release inside).
                    // Dotted calls on other receivers are never
                    // resolved — the receiver's type is unknown.
                    let is_def =
                        i >= 1 && matches!(&tokens[i - 1].kind, TokenKind::Ident(k) if k == "fn");
                    if !is_def {
                        if let Some(key) =
                            resolve_call(m, receiver == Some("self"), file, f, scoped)
                        {
                            if let Some(summary) = summaries.get(&key) {
                                for lock in &summary.acquires {
                                    let held_after =
                                        summary.returns_guard_of.as_deref() == Some(lock);
                                    acquired_here.push((lock.clone(), held_after));
                                }
                            }
                        }
                    }
                }
            }
        }
        for (lock, held_after) in acquired_here {
            let annotated = file.allowed("lock", line).is_some() || file.in_test_code(line);
            for guard in &guards {
                if guard.lock == lock {
                    if !annotated {
                        report.findings.push(Finding::at(
                            "lock",
                            &file.rel,
                            line,
                            format!(
                                "lock `{lock}` acquired while already held (fn `{}`) — \
                                 self-deadlock",
                                f.name
                            ),
                        ));
                    }
                } else {
                    report.edges.push(Edge {
                        held: guard.lock.clone(),
                        acquired: lock.clone(),
                        file: file.rel.clone(),
                        line,
                    });
                }
            }
            if held_after {
                // A guard is `let`-bound only when the acquisition
                // chain ends its statement; a guard consumed by a
                // longer expression (`take(&mut *lock(&x))`,
                // `self.cache.lock().…().get(k)`) is a temporary that
                // dies at the semicolon regardless of any `let`.
                let binding = if bindable { pending_let.clone() } else { None };
                guards.push(Guard {
                    lock,
                    depth,
                    stmt_scoped: binding.is_none(),
                    binding,
                });
            }
        }
        i += 1;
    }
}

/// Index of the `)` matching the `(` at `open`, within `open..=limit`.
fn matching_paren(tokens: &[crate::lexer::Token], open: usize, limit: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().take(limit + 1).skip(open) {
        match t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether the guard produced by the acquisition call whose argument
/// list opens at `open` survives its statement (and may be bound by a
/// `let`). After the call's closing paren, `?` and the guard-preserving
/// adapters `.unwrap()` / `.expect(…)` / `.unwrap_or_else(…)` are
/// skipped; the guard survives only if the statement then ends (`;`).
/// Anything else — a continued method chain, an enclosing call's `)`,
/// an operator — consumes the guard inside the statement, making it a
/// temporary.
fn guard_outlives_expression(tokens: &[crate::lexer::Token], open: usize, limit: usize) -> bool {
    const ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];
    let Some(close) = matching_paren(tokens, open, limit) else {
        return false;
    };
    let mut j = close + 1;
    loop {
        match tokens.get(j).map(|t| &t.kind) {
            Some(TokenKind::Punct('?')) => {
                j += 1;
            }
            Some(TokenKind::Punct('.'))
                if matches!(
                    tokens.get(j + 1).map(|t| &t.kind),
                    Some(TokenKind::Ident(a)) if ADAPTERS.contains(&a.as_str())
                ) && matches!(
                    tokens.get(j + 2).map(|t| &t.kind),
                    Some(TokenKind::Punct('('))
                ) =>
            {
                match matching_paren(tokens, j + 2, limit) {
                    Some(adapter_close) => j = adapter_close + 1,
                    None => return false,
                }
            }
            _ => break,
        }
    }
    matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct(';')))
}

fn first_arg_ident(tokens: &[crate::lexer::Token], open: usize, limit: usize) -> Option<String> {
    let mut depth = 0usize;
    for t in &tokens[open..=limit] {
        match &t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return None;
                }
            }
            TokenKind::Punct(',') if depth == 1 => return None,
            TokenKind::Ident(id) if depth == 1 => return Some(id.clone()),
            _ => {}
        }
    }
    None
}

/// DFS cycle detection over the acquisition edges; each cycle becomes
/// one finding naming the full path and one witness site per edge.
fn detect_cycles(report: &mut LockReport) {
    let mut adjacency: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
    for edge in &report.edges {
        adjacency.entry(&edge.held).or_default().push(edge);
    }
    let nodes: Vec<&str> = adjacency.keys().copied().collect();
    let mut findings = Vec::new();
    for &start in &nodes {
        // Only report cycles at their lexicographically smallest node,
        // so each cycle appears once.
        let mut stack: Vec<(&str, Vec<&Edge>)> = vec![(start, Vec::new())];
        let mut seen: Vec<&str> = Vec::new();
        while let Some((node, path)) = stack.pop() {
            for edge in adjacency.get(node).into_iter().flatten() {
                let next: &str = &edge.acquired;
                if next == start {
                    let mut cycle_path = path.clone();
                    cycle_path.push(edge);
                    if cycle_path
                        .iter()
                        .all(|e| e.held.as_str() >= start && e.acquired.as_str() >= start)
                    {
                        let description = cycle_path
                            .iter()
                            .map(|e| format!("{} → {} ({}:{})", e.held, e.acquired, e.file, e.line))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let witness = cycle_path[0];
                        findings.push(Finding::at(
                            "lock",
                            &witness.file,
                            witness.line,
                            format!("lock-order cycle: {description}"),
                        ));
                    }
                } else if !seen.contains(&next) && next > start {
                    seen.push(next);
                    let mut next_path = path.clone();
                    next_path.push(edge);
                    stack.push((next, next_path));
                }
            }
        }
    }
    findings.sort_by(|a, b| a.message.cmp(&b.message));
    findings.dedup();
    report.findings.extend(findings);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> LockReport {
        check(&[SourceFile::parse("crates/serve/src/scheduler.rs", src)])
    }

    const TWO_LOCKS: &str = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
";

    #[test]
    fn clean_nesting_produces_edges_but_no_findings() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{
    let ga = self.a.lock();
    let gb = self.b.lock();
  }}
}}
"
        );
        let report = run(&src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.edges.len(), 1);
        assert_eq!(report.edges[0].held, "scheduler::a");
        assert_eq!(report.edges[0].acquired, "scheduler::b");
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{ let ga = self.a.lock(); let gb = self.b.lock(); }}
  fn g(&self) {{ let gb = self.b.lock(); let ga = self.a.lock(); }}
}}
"
        );
        let report = run(&src);
        assert!(
            report.findings.iter().any(|f| f.message.contains("cycle")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn recursive_acquisition_is_flagged() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{ let ga = self.a.lock(); let again = self.a.lock(); }}
}}
"
        );
        let report = run(&src);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("already held")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn guard_dropped_at_statement_end_creates_no_edge() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{
    self.a.lock().value;
    let gb = self.b.lock();
  }}
}}
"
        );
        let report = run(&src);
        assert!(report.edges.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn explicit_drop_releases_the_guard() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{
    let ga = self.a.lock();
    drop(ga);
    let gb = self.b.lock();
  }}
}}
"
        );
        let report = run(&src);
        assert!(report.edges.is_empty(), "{:?}", report.edges);
    }

    #[test]
    fn blocking_call_under_lock_is_flagged() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{
    let ga = self.a.lock();
    rx.recv();
  }}
}}
"
        );
        let report = run(&src);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("blocking call `recv`")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn condvar_wait_exempts_its_own_guard_only() {
        let src = "
struct S { q: Mutex<u32>, other: Mutex<u32>, cv: Condvar }
impl S {
  fn ok(&self) {
    let q = self.q.lock();
    let (q, _) = self.cv.wait_timeout(q, t);
  }
  fn bad(&self) {
    let o = self.other.lock();
    let q = self.q.lock();
    let (q, _) = self.cv.wait_timeout(q, t);
  }
}
";
        let report = run(src);
        // `ok` is clean; `bad` holds `other` across the wait.
        let blocking: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.message.contains("wait_timeout"))
            .collect();
        assert_eq!(blocking.len(), 1, "{:?}", report.findings);
        assert!(blocking[0].message.contains("scheduler::other"));
    }

    #[test]
    fn helper_lock_calls_are_acquisitions() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
fn lockit(m: &Mutex<u32>) -> MutexGuard<u32> { m.lock() }
fn f(s: &S) {
    let ga = lock(&s.a);
    let gb = lock(&s.b);
}
";
        let report = run(src);
        assert_eq!(report.edges.len(), 1, "{:?}", report.edges);
    }

    #[test]
    fn non_self_method_calls_are_not_resolved_by_name() {
        // `handle.tidy()` must not borrow the summary of the unique
        // `fn tidy` — the receiver's type is unknown at token level.
        let src = format!(
            "{TWO_LOCKS}
  fn tidy(&self) {{ let ga = self.a.lock(); }}
  fn f(&self) {{
    let ga = self.a.lock();
    handle.tidy();
  }}
}}
"
        );
        let report = run(&src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn chain_consumed_guard_is_a_statement_temporary() {
        // The guard is consumed by `.pop()` inside the statement, so it
        // does not survive to overlap with `b` on the next line.
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{
    let n = self.a.lock().unwrap_or_else(recover).pop();
    let gb = self.b.lock();
  }}
}}
"
        );
        let report = run(&src);
        assert!(report.edges.is_empty(), "{:?}", report.edges);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn guard_inside_enclosing_call_is_a_statement_temporary() {
        // `take(&mut *lock(&s.a))`: the guard dies at the semicolon, so
        // `w` is the taken value, not the guard — `w.join()` is fine.
        let src = "
struct S { a: Mutex<u32> }
fn f(s: &S) {
    let w = take(&mut *lock(&s.a));
    w.join();
}
";
        let report = run(src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn adapter_chain_ending_statement_still_binds() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{
    let ga = self.a.lock().unwrap_or_else(recover);
    rx.recv();
  }}
}}
"
        );
        let report = run(&src);
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.message.contains("blocking call `recv`")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = format!(
            "{TWO_LOCKS}
  fn f(&self) {{
    let ga = self.a.lock();
    // analyze::allow(lock, reason = \"bounded by test harness\")
    rx.recv();
  }}
}}
"
        );
        let report = run(&src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }
}
