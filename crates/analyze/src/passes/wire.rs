//! Pass 4 — wire-format drift check.
//!
//! The serving tier's cache identities and responses are *formats*:
//! the `f1.plan.v1` canonical plan key, `ResultSet::to_json`, the
//! protocol bodies (`error`/`query`/`top`/`delta`/`stats`), the
//! catalog digest, and the `f1-store` durability framing (epoch-log
//! records and catalog snapshots — data at rest that must stay
//! readable across releases). A refactor that changes any of them byte-for-byte
//! silently invalidates every cached entry, splits the dedup identity
//! of equal plans, or breaks deployed clients. This pass runs the
//! **real encoders** over a fixed corpus of inputs and compares the
//! bytes against checked-in goldens under `crates/analyze/golden/`.
//!
//! `f1-analyze --bless` regenerates the goldens after an *intentional*
//! format change — the diff then shows the reviewer exactly what moved
//! on the wire.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::sync::Arc;

use f1_components::{catalog_digest, AirframeId, BatteryId, Catalog, CatalogDelta, CatalogStore};
use f1_serve::protocol;
use f1_serve::{DurabilityStats, ErrorKind, SchedulerStats};
use f1_skyline::plan::{KeepPoints, QueryPlan, SimObjective};
use f1_skyline::query::{Constraint, Knob, KnobSweep, Objective};
use f1_skyline::session::{CacheStats, Session};
use f1_skyline::tier2::SimStats;
use f1_units::{MetersPerSecond, Watts};

use crate::diag::Finding;

/// Directory of the golden corpus, relative to the workspace root.
pub const GOLDEN_DIR: &str = "crates/analyze/golden";

/// The corpus delta: one add of each flavour, a retire and a throughput
/// upsert — shared by the delta transcript and the store framing so
/// their digests agree with each other.
const DELTA_JSON: &str = r#"{
  "add": {
    "sensors": [{"name": "Corpus Cam", "modality": "rgb", "rate_hz": 90,
                 "range_m": 6, "mass_g": 18}],
    "batteries": [{"name": "Corpus 4S", "capacity_mah": 6000,
                   "voltage_v": 14.8, "mass_g": 520}]
  },
  "retire": {"computes": ["Intel UpBoard"]},
  "throughput": [{"compute": "Nvidia TX2", "algorithm": "DroNet", "hz": 400}]
}"#;

/// The corpus: every wire format exercised through its real encoder.
/// Deterministic by construction — building it twice yields identical
/// bytes, so any golden mismatch is a source change, not noise.
///
/// # Errors
///
/// A human-readable reason when an encoder input fails to build (a
/// plan rejected by its own validation, a delta that fails to apply) —
/// that is itself a wire regression.
pub fn corpus() -> Result<Vec<(&'static str, String)>, String> {
    let mut out = Vec::new();
    out.push(("plan_keys.txt", plan_keys()?));
    let store = Arc::new(CatalogStore::new(Catalog::paper()));
    let session = Session::over(Arc::clone(&store));
    let plan = corpus_plan().map_err(|e| format!("corpus plan: {e}"))?;
    let result = session
        .run(&plan)
        .map_err(|e| format!("corpus query: {e}"))?;
    out.push((
        "result_set.json",
        result.to_json(&session.catalog()).to_string(),
    ));
    // The tier-2 wire surface: a sim-objective plan through a session
    // with the real f1-sim harness installed, so the `"sim"` block of
    // `to_json` (survivor rows + verification report) is golden-pinned.
    let tier2_session =
        Session::over(Arc::clone(&store)).with_tier2(Arc::new(f1_sim::SimHarness::default()));
    let tier2_plan = tier2_plan().map_err(|e| format!("tier-2 corpus plan: {e}"))?;
    let tier2_result = tier2_session
        .run(&tier2_plan)
        .map_err(|e| format!("tier-2 corpus query: {e}"))?;
    out.push((
        "result_set_tier2.json",
        tier2_result.to_json(&tier2_session.catalog()).to_string(),
    ));
    let snapshot = store.current();
    let mut bodies = String::new();
    for kind in [
        ErrorKind::Protocol,
        ErrorKind::PlanKey,
        ErrorKind::PlanCatalog,
        ErrorKind::UnknownEpoch,
        ErrorKind::Overloaded,
        ErrorKind::Delta,
        ErrorKind::Internal,
    ] {
        bodies.push_str(&protocol::error_body(kind, "fixed \"test\" message\u{1}"));
    }
    bodies.push_str(&protocol::query_body(&result, &snapshot, true));
    bodies.push_str(&protocol::top_body(3, &result, &snapshot, false));
    bodies.push_str(&protocol::delta_body(&snapshot, 4));
    let cache = CacheStats {
        hits: 11,
        misses: 4,
        entries: 3,
        evictions: 1,
        repairs: 2,
    };
    let sched = SchedulerStats {
        admitted: 15,
        rejected: 1,
        fast_path_hits: 11,
        batches: 3,
        batched_requests: 4,
        coalesced: 1,
        max_batch: 2,
        deltas_applied: 1,
        background_repairs: 2,
    };
    let sim = SimStats {
        evaluations: 2,
        survivors: 9,
        trials: 288,
        reused_rows: 4,
        millis: 12,
    };
    bodies.push_str(&protocol::stats_body(
        &snapshot, &cache, &sim, &sched, 5, None,
    ));
    let durability = DurabilityStats {
        replica: false,
        snapshot_epoch: Some(8),
        replayed_deltas: 2,
        warm_entries: 3,
        spill_hits: 1,
    };
    bodies.push_str(&protocol::stats_body(
        &snapshot,
        &cache,
        &sim,
        &sched,
        5,
        Some(&durability),
    ));
    out.push(("protocol_bodies.txt", bodies));
    out.push(("catalog_delta.txt", delta_transcript(&store)?));
    let (log_record, store_snapshot) = store_framing()?;
    out.push(("store_log_record.txt", log_record));
    out.push(("store_snapshot.txt", store_snapshot));
    Ok(out)
}

/// The durability formats: a framed epoch-log record and a framed
/// catalog snapshot, produced by the real `f1-store` encoders over the
/// corpus delta. These bytes live on disk across restarts — drift here
/// means an upgraded server can no longer read its own data directory.
fn store_framing() -> Result<(String, String), String> {
    let store = CatalogStore::new(Catalog::paper());
    let delta =
        CatalogDelta::from_json(DELTA_JSON).map_err(|e| format!("store delta parse: {e}"))?;
    let next = store
        .apply(&delta)
        .map_err(|e| format!("store apply: {e}"))?;
    let record = f1_store::LogRecord {
        epoch: next.epoch().get(),
        digest: next.digest(),
        ops: delta.op_count() as u64,
        delta_json: delta
            .to_json()
            .map_err(|e| format!("store delta to_json: {e}"))?,
    };
    let log_frame = String::from_utf8(f1_store::frame::encode(&record.to_payload()))
        .map_err(|e| format!("log frame utf8: {e}"))?;
    let payload =
        f1_store::snapshot::encode_snapshot(next.catalog(), next.epoch().get(), next.digest())
            .map_err(|e| format!("snapshot encode: {e}"))?;
    let snapshot_frame = String::from_utf8(f1_store::frame::encode(&payload))
        .map_err(|e| format!("snapshot frame utf8: {e}"))?;
    Ok((log_frame, snapshot_frame))
}

/// Representative plans spanning every key section: defaults, multi
/// objective + constraint + sweep + subspace + battery, awkward floats,
/// and each keep-points policy.
fn plan_keys() -> Result<String, String> {
    let plans: Vec<QueryPlan> = vec![
        QueryPlan::builder()
            .build()
            .map_err(|e| format!("default plan: {e}"))?,
        QueryPlan::builder()
            .objectives(&[
                Objective::TotalTdp,
                Objective::SafeVelocity,
                Objective::MissionEnergyWhPerKm,
            ])
            .constraint(Constraint::MaxTotalTdp(Watts::new(20.0)))
            .constraint(Constraint::FeasibleOnly)
            .sweep(KnobSweep::new(Knob::TdpScale, vec![1.0, 0.5]))
            .airframes(&[AirframeId::from_index(0), AirframeId::from_index(2)])
            .battery(BatteryId::from_index(1))
            .build()
            .map_err(|e| format!("full plan: {e}"))?,
        QueryPlan::builder()
            .constraint(Constraint::MinVelocity(MetersPerSecond::new(1e-307)))
            .sweep(KnobSweep::new(Knob::SensorRangeScale, vec![0.1, 3.5]))
            .build()
            .map_err(|e| format!("float plan: {e}"))?,
        QueryPlan::builder()
            .keep_points(KeepPoints::FrontierOnly)
            .build()
            .map_err(|e| format!("frontier plan: {e}"))?,
        QueryPlan::builder()
            .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
            .sim_objective(SimObjective::MissionRobustness { trials: 32 })
            .sim_objective(SimObjective::PipelineP99Latency)
            .survivor_budget(16)
            .build()
            .map_err(|e| format!("tier-2 plan: {e}"))?,
    ];
    let mut out = String::new();
    for plan in &plans {
        // A key must round-trip through from_key — a drifted parser is
        // as breaking as a drifted encoder.
        let replayed =
            QueryPlan::from_key(plan.key()).map_err(|e| format!("key round-trip: {e}"))?;
        if replayed.key() != plan.key() {
            return Err(format!("key round-trip drift for {:?}", plan.key()));
        }
        out.push_str(plan.key());
        out.push('\n');
    }
    Ok(out)
}

/// The evaluated corpus query: small subspace, two objectives, one
/// constraint — enough to exercise names, floats and frontier lists in
/// `to_json` without a full catalog sweep.
fn corpus_plan() -> Result<QueryPlan, f1_skyline::SkylineError> {
    QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
        .constraint(Constraint::MaxTotalTdp(Watts::new(25.0)))
        .airframes(&[AirframeId::from_index(0)])
        .build()
}

/// The corpus tier-2 plan: small trial count and survivor budget so the
/// golden stays fast to regenerate yet covers both sim objectives.
fn tier2_plan() -> Result<QueryPlan, f1_skyline::SkylineError> {
    QueryPlan::builder()
        .objectives(&[Objective::SafeVelocity, Objective::TotalTdp])
        .airframes(&[AirframeId::from_index(0)])
        .sim_objective(SimObjective::MissionRobustness { trials: 8 })
        .sim_objective(SimObjective::PipelineP99Latency)
        .survivor_budget(4)
        .build()
}

/// Applies a fixed delta to a fresh paper-catalog store and records the
/// epoch/digest trajectory plus the delta's own accounting — covering
/// `CatalogDelta::from_json`, `CatalogStore::apply` and the FNV digest
/// in one transcript.
fn delta_transcript(store: &CatalogStore) -> Result<String, String> {
    let delta = CatalogDelta::from_json(DELTA_JSON).map_err(|e| format!("delta parse: {e}"))?;
    let base = store.current();
    let next = store
        .apply(&delta)
        .map_err(|e| format!("delta apply: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "ops: {}", delta.op_count());
    let _ = writeln!(out, "base_epoch: {}", base.epoch().get());
    let _ = writeln!(out, "base_digest: {}", base.digest());
    let _ = writeln!(out, "next_epoch: {}", next.epoch().get());
    let _ = writeln!(out, "next_digest: {}", next.digest());
    let _ = writeln!(
        out,
        "paper_digest_stable: {}",
        catalog_digest(&Catalog::paper()) == base.digest()
    );
    Ok(out)
}

/// Compares the live corpus against the goldens under `root`
/// ([`GOLDEN_DIR`]); with `bless`, rewrites them instead and reports
/// what changed.
#[must_use]
pub fn check(root: &Path, bless: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let corpus = match corpus() {
        Ok(corpus) => corpus,
        Err(reason) => {
            findings.push(Finding::at(
                "wire",
                "",
                0,
                format!("corpus construction failed: {reason}"),
            ));
            return findings;
        }
    };
    let dir = root.join(GOLDEN_DIR);
    for (name, actual) in corpus {
        let path = dir.join(name);
        let rel = format!("{GOLDEN_DIR}/{name}");
        let golden = fs::read_to_string(&path);
        if bless {
            let unchanged = golden.as_deref().is_ok_and(|g| g == actual);
            if unchanged {
                continue;
            }
            if let Err(e) = fs::create_dir_all(&dir).and_then(|()| fs::write(&path, &actual)) {
                findings.push(Finding::at("wire", &rel, 0, format!("bless failed: {e}")));
            }
            continue;
        }
        match golden {
            Err(e) => findings.push(Finding::at(
                "wire",
                &rel,
                0,
                format!("golden missing ({e}) — run `f1-analyze --bless` and commit the result"),
            )),
            Ok(expected) if expected != actual => {
                findings.push(Finding::at(
                    "wire",
                    &rel,
                    first_diff_line(&expected, &actual),
                    format!(
                        "wire format drifted from golden ({}); if intentional, re-bless with \
                         `f1-analyze --bless` and call out the format change in review",
                        diff_summary(&expected, &actual)
                    ),
                ));
            }
            Ok(_) => {}
        }
    }
    findings
}

/// 1-indexed line of the first difference.
fn first_diff_line(expected: &str, actual: &str) -> usize {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return i + 1;
        }
    }
    expected.lines().count().min(actual.lines().count()) + 1
}

/// A short human-readable description of the first divergence.
fn diff_summary(expected: &str, actual: &str) -> String {
    let line = first_diff_line(expected, actual);
    let e = expected.lines().nth(line - 1).unwrap_or("<eof>");
    let a = actual.lines().nth(line - 1).unwrap_or("<eof>");
    let trim = |s: &str| {
        let mut t: String = s.chars().take(60).collect();
        if t.len() < s.len() {
            t.push('…');
        }
        t
    };
    format!("line {line}: golden {:?} vs live {:?}", trim(e), trim(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_reproducible() {
        let a = corpus().unwrap();
        let b = corpus().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn corpus_covers_every_format() {
        let names: Vec<&str> = corpus().unwrap().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "plan_keys.txt",
                "result_set.json",
                "result_set_tier2.json",
                "protocol_bodies.txt",
                "catalog_delta.txt",
                "store_log_record.txt",
                "store_snapshot.txt"
            ]
        );
    }

    #[test]
    fn plan_keys_are_canonical_v1() {
        let corpus = corpus().unwrap();
        let keys = &corpus
            .iter()
            .find(|(n, _)| *n == "plan_keys.txt")
            .unwrap()
            .1;
        for key in keys.lines() {
            assert!(key.starts_with("f1.plan.v1|"), "{key}");
            QueryPlan::from_key(key).unwrap();
        }
    }

    #[test]
    fn detects_drift_against_temp_goldens() {
        let dir = std::env::temp_dir().join(format!(
            "f1-analyze-wire-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        // Missing goldens: every entry is a finding.
        let missing = check(&dir, false);
        assert_eq!(missing.len(), 7, "{missing:?}");
        // Bless, then verify clean.
        assert!(check(&dir, true).is_empty());
        assert!(check(&dir, false).is_empty());
        // Corrupt one golden: exactly one drift finding.
        let golden = dir.join(GOLDEN_DIR).join("plan_keys.txt");
        fs::write(&golden, "f1.plan.v0|bogus\n").unwrap();
        let drift = check(&dir, false);
        assert_eq!(drift.len(), 1, "{drift:?}");
        assert!(drift[0].message.contains("drifted"));
        let _ = fs::remove_dir_all(&dir);
    }
}
