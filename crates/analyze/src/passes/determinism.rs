//! Pass 3 — determinism lint.
//!
//! The serving tier's cacheability story depends on byte-stable
//! output: canonical plan keys, `ResultSet::to_json`, the catalog
//! digest, and every wire body must not vary run-to-run. Two classes
//! of accidental nondeterminism are linted in the scoped files:
//!
//! * **Hash-order iteration** — iterating a `HashMap`/`HashSet`
//!   (declared as a field or local in a scoped file) in any
//!   non-test function. Order-insensitive chains are exempt: a chain
//!   that terminates in `min`/`max`/`sum`/`count`/`any`/`all`/`len`/
//!   `fold`-free reductions, or that collects into a `BTreeMap`/
//!   `BTreeSet`, cannot leak iteration order. `min_by_key` is **not**
//!   exempt — ties are broken by encounter order, which is the hash
//!   order.
//! * **Ad-hoc float formatting** — `{:.N}` / `{:e}` / `{:E}`
//!   placeholders in format strings. Floats on wire paths go through
//!   the canonical shortest-round-trip helpers (`fmt_float`,
//!   `json_number`), which are `{v:?}`-based and byte-stable; a
//!   precision-truncating format silently diverges from the parse
//!   round-trip check.
//!
//! Suppression: `// analyze::allow(determinism, reason = "…")` — used
//! when the surrounding code restores determinism in a way the
//! token-level lint cannot see (e.g. collect-then-sort).

use std::collections::BTreeSet;

use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// Files whose output feeds plan keys, wire bodies, or digests.
#[must_use]
pub fn is_scoped(rel: &str) -> bool {
    matches!(
        rel,
        "crates/serve/src/protocol.rs"
            | "crates/serve/src/scheduler.rs"
            | "crates/serve/src/server.rs"
            | "crates/skyline/src/session.rs"
            | "crates/skyline/src/plan.rs"
            | "crates/skyline/src/shard.rs"
            | "crates/components/src/store.rs"
    )
}

/// Chain terminators that collapse an iterator order-insensitively.
/// `min_by_key`/`max_by_key` are absent on purpose: their ties are
/// resolved by encounter order.
const ORDER_INSENSITIVE: [&str; 8] = [
    "min",
    "max",
    "sum",
    "count",
    "any",
    "all",
    "len",
    "contains_key",
];

/// Iteration-starting methods on a hash collection.
const ITERATES: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Runs the lint over one file (no-op for out-of-scope files).
#[must_use]
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !is_scoped(&file.rel) {
        return findings;
    }
    let hashes = hash_collections(file);
    let tokens = &file.tokens;
    let mut flagged: Vec<usize> = Vec::new();
    for (i, token) in tokens.iter().enumerate() {
        // Hash-order iteration: `name.iter()` / `name.keys()` / … where
        // `name` is a declared HashMap/HashSet.
        if let TokenKind::Ident(method) = &token.kind {
            let is_call = i >= 2
                && tokens[i - 1].kind == TokenKind::Punct('.')
                && matches!(tokens.get(i + 1), Some(t) if t.kind == TokenKind::Punct('('));
            if is_call && ITERATES.contains(&method.as_str()) {
                let receiver = match &tokens[i - 2].kind {
                    TokenKind::Ident(r) => Some(r.as_str()),
                    _ => None,
                };
                let dotted = i >= 3 && tokens[i - 3].kind == TokenKind::Punct('.');
                if let Some(name) = receiver.filter(|r| hashes.matches(r, dotted)) {
                    let line = token.line;
                    if !file.in_test_code(line)
                        && file.allowed("determinism", line).is_none()
                        && !chain_is_order_insensitive(file, i)
                        && !flagged.contains(&line)
                    {
                        flagged.push(line);
                        findings.push(Finding::at(
                            "determinism",
                            &file.rel,
                            line,
                            format!(
                                "iteration over hash-ordered `{name}` — order varies run-to-run \
                                 and can reach a plan key, wire body, or digest; iterate a \
                                 `BTreeMap`/sorted copy instead, or justify with \
                                 `// analyze::allow(determinism, reason = \"…\")`"
                            ),
                        ));
                    }
                }
            }
        }
        // `for pat in <expr containing a hash name> {` — a bare loop
        // without an explicit `.iter()`.
        if let TokenKind::Ident(kw) = &token.kind {
            if kw == "for" {
                if let Some(name) = for_loop_hash_source(file, i, &hashes) {
                    let line = token.line;
                    if !file.in_test_code(line)
                        && file.allowed("determinism", line).is_none()
                        && !flagged.contains(&line)
                    {
                        flagged.push(line);
                        findings.push(Finding::at(
                            "determinism",
                            &file.rel,
                            line,
                            format!(
                                "`for` loop over hash-ordered `{name}` — order varies \
                                 run-to-run; iterate a sorted copy, or justify with \
                                 `// analyze::allow(determinism, reason = \"…\")`"
                            ),
                        ));
                    }
                }
            }
        }
        // Ad-hoc float formatting in string literals.
        if let TokenKind::Literal(text) = &token.kind {
            if has_float_placeholder(text) {
                let line = token.line;
                if !file.in_test_code(line)
                    && file.allowed("determinism", line).is_none()
                    && !flagged.contains(&line)
                {
                    flagged.push(line);
                    findings.push(Finding::at(
                        "determinism",
                        &file.rel,
                        line,
                        "precision/exponent float formatting in a wire-adjacent file — floats \
                         must go through the canonical shortest-round-trip helper \
                         (`fmt_float`/`json_number`), or justify with \
                         `// analyze::allow(determinism, reason = \"…\")`"
                            .to_owned(),
                    ));
                }
            }
        }
    }
    findings
}

/// Names declared with a `HashMap<…>`/`HashSet<…>` type anywhere in the
/// file, split by declaration shape. A `name: Type` declaration (a
/// struct field, usually) is only matched behind a dot (`self.plans.…`)
/// — a bare `plans` elsewhere in the file is more likely an unrelated
/// local or parameter that happens to share the name. `let`-bound
/// locals are matched bare. (A hash-typed fn *parameter* iterated bare
/// is outside this model; the codebase passes slices, not maps.)
struct HashNames {
    /// `name : HashMap<…>` shapes — fields/params; dotted access only.
    typed: BTreeSet<String>,
    /// `let name = HashMap::new()` shapes — matched anywhere.
    locals: BTreeSet<String>,
}

impl HashNames {
    /// Whether `name` at a given access shape refers to a declared hash
    /// collection.
    fn matches(&self, name: &str, dotted: bool) -> bool {
        self.locals.contains(name) || (dotted && self.typed.contains(name))
    }
}

fn hash_collections(file: &SourceFile) -> HashNames {
    let mut typed = BTreeSet::new();
    let mut locals = BTreeSet::new();
    let tokens = &file.tokens;
    for (i, t) in tokens.iter().enumerate() {
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // Walk back over `std :: collections ::` path prefixes to the
        // `field : Type` or `let name = Type::new()` shape.
        let mut pos = i;
        while pos >= 3
            && tokens[pos - 1].kind == TokenKind::Punct(':')
            && tokens[pos - 2].kind == TokenKind::Punct(':')
            && matches!(tokens[pos - 3].kind, TokenKind::Ident(_))
        {
            pos -= 3;
        }
        if pos >= 2 && tokens[pos - 1].kind == TokenKind::Punct(':') {
            if let TokenKind::Ident(field) = &tokens[pos - 2].kind {
                // `let name: HashMap<…> = …` is still a local; only a
                // bare `name: Type` (struct field) is dotted-only.
                let mut k = pos - 2;
                if k >= 1 && matches!(&tokens[k - 1].kind, TokenKind::Ident(m) if m == "mut") {
                    k -= 1;
                }
                if k >= 1 && matches!(&tokens[k - 1].kind, TokenKind::Ident(l) if l == "let") {
                    locals.insert(field.clone());
                } else {
                    typed.insert(field.clone());
                }
                continue;
            }
        }
        if pos >= 3 && tokens[pos - 1].kind == TokenKind::Punct('=') {
            let mut j = pos - 2;
            if let TokenKind::Ident(local) = &tokens[j].kind {
                let local = local.clone();
                if j >= 1 && matches!(&tokens[j - 1].kind, TokenKind::Ident(m) if m == "mut") {
                    j -= 1;
                }
                if j >= 1 && matches!(&tokens[j - 1].kind, TokenKind::Ident(l) if l == "let") {
                    locals.insert(local);
                }
            }
        }
    }
    HashNames { typed, locals }
}

/// Whether the method chain starting at the iteration call at token `i`
/// ends in an order-insensitive reduction or a BTree collect before the
/// statement ends. The backward scan covers the
/// `let x: BTreeMap<_, _> = hash.iter().collect()` shape, where the
/// re-sorting destination is a type annotation *before* the call.
fn chain_is_order_insensitive(file: &SourceFile, i: usize) -> bool {
    let tokens = &file.tokens;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            TokenKind::Punct(';' | '{' | '}') => break,
            TokenKind::Ident(name) if name == "BTreeMap" || name == "BTreeSet" => return true,
            _ => {}
        }
    }
    let mut depth = 0usize;
    let mut j = i;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokenKind::Punct(';' | ',') if depth == 0 => break,
            TokenKind::Ident(name) if depth == 0 => {
                if ORDER_INSENSITIVE.contains(&name.as_str()) {
                    return true;
                }
                if name == "BTreeMap" || name == "BTreeSet" {
                    // `collect::<BTreeMap<_, _>>()` re-sorts.
                    return true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// For a `for` keyword at token `i`, returns the hash-collection name
/// iterated, if the `in …` expression names one directly (not through
/// an order-insensitive adapter — a bare `for` has none).
fn for_loop_hash_source(file: &SourceFile, i: usize, hashes: &HashNames) -> Option<String> {
    let tokens = &file.tokens;
    // Find the `in` keyword at pattern depth 0.
    let mut depth = 0usize;
    let mut j = i + 1;
    let in_pos = loop {
        match tokens.get(j).map(|t| &t.kind) {
            Some(TokenKind::Punct('(' | '[')) => depth += 1,
            Some(TokenKind::Punct(')' | ']')) => depth = depth.saturating_sub(1),
            Some(TokenKind::Ident(kw)) if kw == "in" && depth == 0 => break j,
            Some(TokenKind::Punct('{')) | None => return None,
            _ => {}
        }
        j += 1;
    };
    // Scan the source expression up to the loop body `{`.
    let mut depth = 0usize;
    let mut j = in_pos + 1;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth = depth.saturating_sub(1),
            TokenKind::Punct('{') if depth == 0 => break,
            TokenKind::Ident(name)
                if hashes.matches(name, j >= 1 && tokens[j - 1].kind == TokenKind::Punct('.')) =>
            {
                // `for k in plans.keys()` is caught by the method rule;
                // only flag when no iteration method call follows (the
                // `&plans` / `plans` direct borrow form).
                let via_method = matches!(
                    tokens.get(j + 1),
                    Some(n) if n.kind == TokenKind::Punct('.')
                );
                if !via_method {
                    return Some(name.clone());
                }
                return None;
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Whether a format-string literal contains a precision (`{:.…}`) or
/// exponent (`{:e}`/`{:E}`) placeholder.
fn has_float_placeholder(text: &str) -> bool {
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i + 1 < bytes.len() {
        if bytes[i] == b'{' && bytes[i + 1] == b'{' {
            i += 2; // escaped brace
            continue;
        }
        if bytes[i] == b'{' {
            // Scan the placeholder to `}`. A spec never contains
            // whitespace, quotes, or escapes — JSON-looking literals
            // like `{"pong": true}` are not placeholders.
            let mut j = i + 1;
            let mut saw_colon = false;
            while j < bytes.len() && bytes[j] != b'}' {
                if bytes[j] == b'{' {
                    // Rescan from the nested `{` as a fresh candidate.
                    j -= 1;
                    break;
                }
                if matches!(bytes[j], b' ' | b'"' | b'\\') {
                    break;
                }
                if bytes[j] == b':' {
                    saw_colon = true;
                }
                if saw_colon && (bytes[j] == b'.' || bytes[j] == b'e' || bytes[j] == b'E') {
                    // `{:e}` / `{:E}` only when terminal before `}`.
                    if bytes[j] == b'.' || (j + 1 < bytes.len() && bytes[j + 1] == b'}') {
                        return true;
                    }
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("crates/skyline/src/session.rs", src))
    }

    #[test]
    fn flags_hash_iteration() {
        let src = "
struct C { plans: HashMap<String, u32> }
impl C {
  fn keys_out(&self) -> Vec<String> { self.plans.keys().cloned().collect() }
}
";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("plans"));
    }

    #[test]
    fn min_by_key_is_not_exempt() {
        let src = "
struct C { plans: HashMap<String, u32> }
fn evict(c: &C) { c.plans.iter().min_by_key(|x| x.1); }
";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn order_insensitive_chains_are_exempt() {
        let src = "
struct C { states: HashMap<u64, u32> }
fn f(c: &C) {
  let n = c.states.keys().min();
  let total: u32 = c.states.values().sum();
  let sorted: std::collections::BTreeMap<_, _> = c.states.iter().collect();
}
";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn flags_bare_for_loop() {
        let src = "
struct C { states: HashMap<u64, u32> }
fn f(c: &C) { for (k, v) in &c.states { use_it(k, v); } }
";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("for"));
    }

    #[test]
    fn btreemap_iteration_is_clean() {
        let src = "
struct C { plans: BTreeMap<String, u32> }
fn f(c: &C) { for k in c.plans.keys() { use_it(k); } }
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn flags_precision_float_format() {
        let src = "fn f(v: f64) -> String { format!(\"{:.3}\", v) }";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("shortest-round-trip"));
    }

    #[test]
    fn flags_exponent_format_but_not_plain() {
        assert_eq!(
            run("fn f(v: f64) -> String { format!(\"{v:e}\", ) }").len(),
            1
        );
        assert!(run("fn f(v: f64) -> String { format!(\"{v:?} {}\", v) }").is_empty());
        assert!(run("fn f() -> String { format!(\"{{:.3}} literal brace\") }").is_empty());
    }

    #[test]
    fn json_literals_are_not_placeholders() {
        // `{"pong": true}` — the `e` of `true` sits right before `}`
        // after a colon, but a spec never contains spaces or quotes.
        assert!(run(r#"fn f() -> &'static str { "{\"pong\": true}\n" }"#).is_empty());
        assert!(run(r#"fn f() -> &'static str { "{\"shutting_down\": true}" }"#).is_empty());
        // A placeholder nested after JSON text is still caught.
        assert_eq!(
            run(r#"fn f(v: f64) -> String { format!("{{\"v\": {v:.3}}}") }"#).len(),
            1
        );
    }

    #[test]
    fn slice_param_sharing_a_field_name_is_not_flagged() {
        // `plans` is a HashMap *field*, but the free function's `plans`
        // is a slice parameter — bare access must not resolve to the
        // field's declaration. Dotted access still does.
        let src = "
struct C { plans: HashMap<String, u32> }
fn run(plans: &[&u32]) -> Option<&u32> { plans.iter().find(|p| true) }
fn bad(c: &C) -> Vec<String> { c.plans.keys().cloned().collect() }
";
        let found = run(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("plans"));
        // An annotated `let` local is still matched bare.
        let src = "
fn f() {
  let seen: HashMap<u64, u32> = HashMap::new();
  for k in seen.keys() { use_it(k); }
}
";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "
struct C { plans: HashMap<String, u32> }
impl C {
  fn keys_out(&self) -> Vec<String> {
    // analyze::allow(determinism, reason = \"collected then sorted by caller\")
    self.plans.keys().cloned().collect()
  }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "
#[cfg(test)]
mod tests {
  fn t() {
    let m: HashMap<u32, u32> = HashMap::new();
    for k in m.keys() { let s = format!(\"{:.2}\", k); }
  }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let file = SourceFile::parse(
            "crates/skyline/src/report.rs",
            "fn f(v: f64) -> String { format!(\"{:.2}\", v) }",
        );
        assert!(check(&file).is_empty());
    }
}
