//! The `f1-analyze` binary: runs the workspace invariant checks and
//! reports findings. See the library docs ([`f1_analyze`]) for what the
//! passes do; CI's hard gate is `f1-analyze --workspace --deny`.

use std::path::PathBuf;
use std::process::ExitCode;

use f1_analyze::{diag::Finding, Options, PASS_NAMES};

const USAGE: &str = "\
f1-analyze — workspace invariant checker

USAGE:
    f1-analyze [--workspace] [--deny] [--pass NAME]... [--bless] [--root PATH]

OPTIONS:
    --workspace     Analyze the whole workspace (the default; kept
                    explicit for CI command lines)
    --deny          Exit nonzero when any finding is reported
    --pass NAME     Run only the named pass (panic|lock|determinism|wire);
                    repeatable. Default: all passes + annotation checks
    --bless         Regenerate the wire-format golden corpus from the
                    live encoders instead of comparing against it
    --root PATH     Workspace root (default: ancestor of this binary's
                    manifest, falling back to the current directory)
    -h, --help      Show this help
";

fn parse_args() -> Result<(Options, bool), String> {
    let mut root: Option<PathBuf> = None;
    let mut passes = Vec::new();
    let mut deny = false;
    let mut bless = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--deny" => deny = true,
            "--bless" => bless = true,
            "--pass" => {
                let name = args.next().ok_or("--pass requires a pass name")?;
                if !PASS_NAMES.contains(&name.as_str()) {
                    return Err(format!("unknown pass {name:?} (expected {PASS_NAMES:?})"));
                }
                passes.push(name);
            }
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or("--root requires a path")?));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let mut options = Options::workspace(root);
    options.passes = passes;
    options.bless = bless;
    Ok((options, deny))
}

/// The workspace root: this crate's manifest dir is
/// `<root>/crates/analyze`, so two ancestors up; fall back to the
/// current directory for a relocated binary.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .nth(2)
        .filter(|p| p.join("Cargo.toml").is_file())
        .map_or_else(|| PathBuf::from("."), PathBuf::from)
}

fn main() -> ExitCode {
    let (options, deny) = match parse_args() {
        Ok(parsed) => parsed,
        Err(why) => {
            eprintln!("error: {why}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let findings: Vec<Finding> = match f1_analyze::run(&options) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("error: failed to analyze workspace: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    let which = if options.passes.is_empty() {
        "all passes".to_owned()
    } else {
        options.passes.join(", ")
    };
    if findings.is_empty() {
        println!("f1-analyze: clean ({which})");
        ExitCode::SUCCESS
    } else {
        println!(
            "f1-analyze: {} finding{} ({which})",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
